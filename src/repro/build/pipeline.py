"""Distributed crawl→index batch build pipeline.

The paper builds its inverted fragment index offline, as a MapReduce batch
job over the whole database, then serves it unchanged.  This module is that
build path at reproduction scale: a corpus source is split into partitioned
crawl jobs, map tasks stream their partition's fragments into per-reduce
posting spools, reduce tasks merge the spools into canonically sorted
per-shard posting runs, and load tasks bulk-load each run into its own
:class:`~repro.store.disk.DiskStore` shard file in parallel before a final
merge folds the shards into the serving store.  The result is attached
through ``DashEngine.open()`` / ``DashEngine.cluster()`` unchanged — and is
byte-identical to a single-process ``DashEngine.build()`` over the same
corpus (the property ``tests/test_build_pipeline.py`` pins).

Stages, in order:

1. **map** — task *j* streams the ``(identifier, term_frequencies)`` pairs
   of corpus partition *j* (the source's ``partitions(count)`` protocol —
   see :class:`~repro.core.crawler.PartitionedCrawlFrontier` and
   :class:`~repro.datasets.SyntheticCorpus`), splits each fragment's
   postings by keyword hash into one spool per reduce partition and writes
   a fragment spool (whole term vectors, for sizes and the final merge).
   Every spool write is atomic (temp file + ``os.replace``), so a retried
   task simply overwrites its own half-written output.
2. **reduce** — task *r* concatenates every map task's partition-*r* spool
   and sorts it into one canonical run: ``(keyword, occurrences DESC,
   str(identifier))`` — exactly the posting order the store's compaction
   produces, so the downstream shard build degenerates to a streaming load.
3. **load** — task *r* builds ``shard-r.building``, bulk-stages its run
   with the *global* fragment sizes (weights must not depend on the
   partitioning), finalizes, and atomically publishes ``shard-r.sqlite``
   via ``os.replace``.  A killed load attempt leaves no published shard
   behind — the ``.building`` file is removed and the retry starts clean.
   Because reduce partitions keywords by hash, shards hold **disjoint
   keyword partitions** whose posting blocks are already canonical.
4. **merge** — the serving store absorbs each shard's posting blocks as a
   straight row copy, loads the authoritative fragment rows (sizes + term
   vectors, including fragments with no postings at all) from the map
   stage's fragment spools, and commits once.

Worker failures are retried through the MapReduce substrate's
:class:`~repro.mapreduce.runtime.TaskRunner`: a raised
:class:`~repro.mapreduce.errors.TaskFailure` (a crash, a kill, an injected
fault) re-runs the task up to the :class:`~repro.mapreduce.runtime.RetryPolicy`
attempt budget, while any other exception propagates as a real bug.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.fragments import FragmentId
from repro.mapreduce.errors import TaskFailure
from repro.mapreduce.job import default_partitioner
from repro.mapreduce.runtime import RetryPolicy, TaskRunner
from repro.store.base import FragmentStore
from repro.store.disk import DiskStore


class BuildPipelineError(Exception):
    """Raised for invalid pipeline configuration or corrupt corpus sources."""


# ----------------------------------------------------------------------
# spool helpers (atomic pickle files)
# ----------------------------------------------------------------------
def _atomic_pickle(path: str, payload: Any) -> None:
    """Write a spool so a retried task can never leave a torn file behind."""
    temp_path = f"{path}.tmp"
    with open(temp_path, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(temp_path, path)


def _read_pickle(path: str) -> Any:
    with open(path, "rb") as handle:
        return pickle.load(handle)


def _run_sort_key(row: Tuple[str, FragmentId, int]) -> Tuple[str, int, str]:
    """The store's canonical posting order: occurrences DESC, identifier tie ASC."""
    keyword, identifier, occurrences = row
    return (keyword, -occurrences, str(identifier))


def _map_posting_spool(workdir: str, task: int, partition: int) -> str:
    return os.path.join(workdir, f"map-{task}-part-{partition}.postings")


def _map_fragment_spool(workdir: str, task: int) -> str:
    return os.path.join(workdir, f"map-{task}.fragments")


def _run_path(workdir: str, partition: int) -> str:
    return os.path.join(workdir, f"run-{partition}.postings")


def shard_path(workdir: str, partition: int) -> str:
    """The published (finalized, atomically renamed) shard file of a partition."""
    return os.path.join(workdir, f"shard-{partition}.sqlite")


def _building_shard_path(workdir: str, partition: int) -> str:
    return os.path.join(workdir, f"shard-{partition}.building")


# ----------------------------------------------------------------------
# the shard load task (runs inline or in a worker process)
# ----------------------------------------------------------------------
def _load_shard(
    workdir: str,
    partition: int,
    sizes: Dict[FragmentId, int],
    checkpoint: Optional[Callable[[], None]] = None,
) -> Tuple[str, int]:
    """Build and atomically publish one shard file from its sorted run.

    The ``.building`` file is the only mutable state; it is removed on any
    failure and only renamed to ``shard-<r>.sqlite`` after a successful
    ``finalize()``, so an observer never sees a partially-loaded shard.
    ``checkpoint`` (the ``load:finalize`` fault-injection seam) runs after
    staging but before the finalize, where a crash is most damaging.
    """
    building = _building_shard_path(workdir, partition)
    published = shard_path(workdir, partition)
    for stale in (building, published):
        if os.path.exists(stale):
            os.remove(stale)
    postings = _read_pickle(_run_path(workdir, partition))
    store = DiskStore(building)
    try:
        staged = store.bulk_load_run(postings, sizes, finalize=False)
        if checkpoint is not None:
            checkpoint()
        store.finalize()
    except BaseException:
        store.close()
        if os.path.exists(building):
            os.remove(building)
        raise
    store.close()
    os.replace(building, published)
    return published, staged


def _load_shard_process(payload: Tuple[str, int, Dict[FragmentId, int]]) -> Tuple[str, int]:
    """Module-level entry point for process-pool shard loads (must pickle)."""
    workdir, partition, sizes = payload
    return _load_shard(workdir, partition, sizes)


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------
@dataclass
class BuildReport:
    """Everything one distributed build measured (used by the benchmark)."""

    backend: str = ""
    map_tasks: int = 0
    reduce_tasks: int = 0
    workers: int = 0
    fragments: int = 0
    postings: int = 0
    keywords: int = 0
    map_seconds: float = 0.0
    reduce_seconds: float = 0.0
    load_seconds: float = 0.0
    merge_seconds: float = 0.0
    total_seconds: float = 0.0
    retries: Dict[str, int] = field(default_factory=dict)
    shard_files: Tuple[str, ...] = ()

    @property
    def fragments_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.fragments / self.total_seconds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "map_tasks": self.map_tasks,
            "reduce_tasks": self.reduce_tasks,
            "workers": self.workers,
            "fragments": self.fragments,
            "postings": self.postings,
            "keywords": self.keywords,
            "map_seconds": self.map_seconds,
            "reduce_seconds": self.reduce_seconds,
            "load_seconds": self.load_seconds,
            "merge_seconds": self.merge_seconds,
            "total_seconds": self.total_seconds,
            "fragments_per_second": self.fragments_per_second,
            "retries": dict(self.retries),
        }


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------
class BuildPipeline:
    """Partitioned map → sorted-run reduce → parallel shard load → merge.

    ``source`` is any object exposing ``partitions(count) -> [callable]``
    where each callable streams its partition's ``(identifier,
    term_frequencies)`` pairs (:class:`~repro.core.crawler.PartitionedCrawlFrontier`
    for a live database, :class:`~repro.datasets.SyntheticCorpus` for
    benchmarks).  ``run(store)`` loads the whole corpus into ``store``:

    * a :class:`~repro.store.disk.DiskStore` target takes the sharded path —
      per-partition shard files built in parallel (worker processes when
      ``workers > 1`` and no fault injector is installed, inline otherwise)
      and absorbed as canonical posting-block rows;
    * any other backend replays the sorted runs through the store's posting
      API (the runs are identical either way, which is what lets the parity
      suite compare memory and disk targets posting for posting).

    ``workdir`` holds the spools, runs and shard files; when omitted a
    temporary directory is created and removed with the run.
    """

    def __init__(
        self,
        source: Any,
        *,
        map_tasks: int = 4,
        reduce_tasks: int = 4,
        workers: int = 2,
        workdir: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if map_tasks < 1:
            raise BuildPipelineError("map_tasks must be at least 1")
        if reduce_tasks < 1:
            raise BuildPipelineError("reduce_tasks must be at least 1")
        if workers < 1:
            raise BuildPipelineError("workers must be at least 1")
        self.source = source
        self.map_tasks = map_tasks
        self.reduce_tasks = reduce_tasks
        self.workers = workers
        self.workdir = workdir
        self.task_runner = TaskRunner(retry_policy)

    # ------------------------------------------------------------------
    def run(self, store: FragmentStore) -> BuildReport:
        report = BuildReport(
            backend=type(store).__name__,
            map_tasks=self.map_tasks,
            reduce_tasks=self.reduce_tasks,
            workers=self.workers,
        )
        started = time.perf_counter()
        owned_dir: Optional[tempfile.TemporaryDirectory] = None
        workdir = self.workdir
        if workdir is None:
            owned_dir = tempfile.TemporaryDirectory(prefix="dash-build-")
            workdir = owned_dir.name
        else:
            os.makedirs(workdir, exist_ok=True)
        try:
            step = time.perf_counter()
            self._run_map_phase(workdir)
            report.map_seconds = time.perf_counter() - step

            sizes = self._global_sizes(workdir)
            report.fragments = len(sizes)

            step = time.perf_counter()
            run_members = self._run_reduce_phase(workdir)
            report.reduce_seconds = time.perf_counter() - step
            report.postings = sum(count for count, _members in run_members)
            keywords: Set[str] = set()
            for _count, members in run_members:
                keywords.update(members[1])
            report.keywords = len(keywords)

            step = time.perf_counter()
            if isinstance(store, DiskStore):
                shard_files = self._run_load_phase_disk(workdir, sizes, run_members)
                report.load_seconds = time.perf_counter() - step
                report.shard_files = tuple(shard_files)

                step = time.perf_counter()
                self._merge_into_disk(store, workdir, shard_files)
                report.merge_seconds = time.perf_counter() - step
            else:
                self._run_load_phase_generic(workdir, store)
                report.load_seconds = time.perf_counter() - step

                step = time.perf_counter()
                self._merge_into_generic(store, workdir)
                report.merge_seconds = time.perf_counter() - step
        finally:
            report.retries = dict(self.task_runner.retries)
            if owned_dir is not None:
                owned_dir.cleanup()
        report.total_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    # stage 1: map
    # ------------------------------------------------------------------
    def _run_map_phase(self, workdir: str) -> None:
        partitions = self.source.partitions(self.map_tasks)
        if len(partitions) != self.map_tasks:
            raise BuildPipelineError(
                f"source produced {len(partitions)} partitions for "
                f"{self.map_tasks} map tasks"
            )
        reduce_tasks = self.reduce_tasks

        def make_task(task_index: int, stream: Callable[[], Iterable]) -> Callable[[int], int]:
            def run_map(_attempt: int) -> int:
                spools: List[List[Tuple[str, FragmentId, int]]] = [
                    [] for _ in range(reduce_tasks)
                ]
                fragments: List[Tuple[FragmentId, List[Tuple[str, int]]]] = []
                for identifier, term_frequencies in stream():
                    identifier = tuple(identifier)
                    items = (
                        term_frequencies.items()
                        if hasattr(term_frequencies, "items")
                        else term_frequencies
                    )
                    vector: List[Tuple[str, int]] = []
                    for keyword, occurrences in items:
                        occurrences = int(occurrences)
                        if occurrences <= 0:
                            continue
                        vector.append((keyword, occurrences))
                        spools[default_partitioner(keyword, reduce_tasks)].append(
                            (keyword, identifier, occurrences)
                        )
                    fragments.append((identifier, vector))
                for partition, postings in enumerate(spools):
                    _atomic_pickle(
                        _map_posting_spool(workdir, task_index, partition), postings
                    )
                _atomic_pickle(_map_fragment_spool(workdir, task_index), fragments)
                return len(fragments)

            return run_map

        self._run_tasks(
            "map",
            [make_task(index, stream) for index, stream in enumerate(partitions)],
        )

    def _global_sizes(self, workdir: str) -> Dict[FragmentId, int]:
        """Authoritative identifier → size map (and the duplicate-owner guard)."""
        sizes: Dict[FragmentId, int] = {}
        for task_index in range(self.map_tasks):
            for identifier, vector in _read_pickle(_map_fragment_spool(workdir, task_index)):
                if identifier in sizes:
                    raise BuildPipelineError(
                        f"fragment {identifier!r} was produced by two map "
                        "partitions; corpus partitions must be disjoint"
                    )
                sizes[identifier] = sum(occurrences for _keyword, occurrences in vector)
        return sizes

    # ------------------------------------------------------------------
    # stage 2: reduce
    # ------------------------------------------------------------------
    def _run_reduce_phase(
        self, workdir: str
    ) -> List[Tuple[int, Tuple[Set[FragmentId], Set[str]]]]:
        map_tasks = self.map_tasks

        def make_task(partition: int) -> Callable[[int], Tuple[int, Tuple[Set, Set]]]:
            def run_reduce(_attempt: int) -> Tuple[int, Tuple[Set, Set]]:
                rows: List[Tuple[str, FragmentId, int]] = []
                for task_index in range(map_tasks):
                    rows.extend(
                        _read_pickle(_map_posting_spool(workdir, task_index, partition))
                    )
                rows.sort(key=_run_sort_key)
                _atomic_pickle(_run_path(workdir, partition), rows)
                identifiers = {row[1] for row in rows}
                keywords = {row[0] for row in rows}
                return len(rows), (identifiers, keywords)

            return run_reduce

        return self._run_tasks(
            "reduce", [make_task(partition) for partition in range(self.reduce_tasks)]
        )

    # ------------------------------------------------------------------
    # stage 3: load
    # ------------------------------------------------------------------
    def _run_load_phase_disk(
        self,
        workdir: str,
        sizes: Dict[FragmentId, int],
        run_members: Sequence[Tuple[int, Tuple[Set[FragmentId], Set[str]]]],
    ) -> List[str]:
        """Build every shard file — in worker processes when allowed."""
        # Each shard only stores the fragments its run references; the merge
        # loads the full fragment table, so shards stay proportional to
        # their keyword partition.
        subsets = [
            {identifier: sizes[identifier] for identifier in members[0]}
            for _count, members in run_members
        ]
        runner = self.task_runner
        use_processes = self.workers > 1 and runner.policy.failure_injector is None
        results: List[Optional[str]] = [None] * self.reduce_tasks

        def make_task(partition: int) -> Callable[[int], str]:
            def run_load(attempt: int) -> str:
                published, _staged = _load_shard(
                    workdir,
                    partition,
                    subsets[partition],
                    checkpoint=lambda: runner.checkpoint(
                        "load:finalize", partition, attempt
                    ),
                )
                return published

            return run_load

        if use_processes:
            pending: List[int] = []
            with ProcessPoolExecutor(max_workers=min(self.workers, self.reduce_tasks)) as pool:
                futures = {
                    partition: pool.submit(
                        _load_shard_process, (workdir, partition, subsets[partition])
                    )
                    for partition in range(self.reduce_tasks)
                }
                for partition, future in futures.items():
                    try:
                        results[partition] = future.result()[0]
                    except Exception:
                        # A crashed worker process is a transient task failure:
                        # fall back to an inline, retry-governed rebuild.
                        pending.append(partition)
            for partition in pending:
                results[partition] = self.task_runner.run(
                    "load", partition, make_task(partition)
                )
        else:
            for partition in range(self.reduce_tasks):
                results[partition] = self.task_runner.run(
                    "load", partition, make_task(partition)
                )
        return [path for path in results if path is not None]

    def _run_load_phase_generic(self, workdir: str, store: FragmentStore) -> None:
        """Replay the sorted runs through the store's posting API.

        Mutations only start after the attempt's checkpoints have passed, so
        an injected failure leaves the store untouched and the retry loads
        the identical run.
        """
        runner = self.task_runner

        def make_task(partition: int) -> Callable[[int], int]:
            def run_load(attempt: int) -> int:
                rows = _read_pickle(_run_path(workdir, partition))
                runner.checkpoint("load:finalize", partition, attempt)
                for keyword, identifier, occurrences in rows:
                    store.add_posting(keyword, identifier, occurrences)
                return len(rows)

            return run_load

        for partition in range(self.reduce_tasks):
            self.task_runner.run("load", partition, make_task(partition))

    # ------------------------------------------------------------------
    # stage 4: merge
    # ------------------------------------------------------------------
    def _iter_fragment_spools(self, workdir: str):
        for task_index in range(self.map_tasks):
            yield _read_pickle(_map_fragment_spool(workdir, task_index))

    def _merge_into_disk(
        self, store: DiskStore, workdir: str, shard_files: Sequence[str]
    ) -> None:
        for path in shard_files:
            store.absorb_index_shard(path)
        for fragments in self._iter_fragment_spools(workdir):
            store.bulk_load_fragment_vectors(fragments)
        store.finalize()

    def _merge_into_generic(self, store: FragmentStore, workdir: str) -> None:
        # Register every fragment — including ones with no postings at all,
        # which the runs never mention.
        for fragments in self._iter_fragment_spools(workdir):
            for identifier, _vector in fragments:
                store.touch_fragment(identifier)
        store.finalize()

    # ------------------------------------------------------------------
    def _run_tasks(self, phase: str, tasks: Sequence[Callable[[int], Any]]) -> List[Any]:
        """Run one phase's tasks through the retry-governed runner."""
        runner = self.task_runner
        if self.workers > 1 and len(tasks) > 1:
            with ThreadPoolExecutor(max_workers=min(self.workers, len(tasks))) as pool:
                futures = [
                    pool.submit(runner.run, phase, index, task)
                    for index, task in enumerate(tasks)
                ]
                return [future.result() for future in futures]
        return [runner.run(phase, index, task) for index, task in enumerate(tasks)]
