"""Distributed crawl→index batch build (the paper's offline MapReduce build).

:class:`BuildPipeline` turns a partitionable corpus source into a fully
loaded serving store through four retried stages — partitioned map tasks,
sorted-run reduce tasks, parallel per-shard bulk loads and a final merge —
producing output byte-identical to a single-process ``DashEngine.build()``.
See :mod:`repro.build.pipeline` for the stage-by-stage contract.
"""

from repro.build.pipeline import (
    BuildPipeline,
    BuildPipelineError,
    BuildReport,
    shard_path,
)

__all__ = [
    "BuildPipeline",
    "BuildPipelineError",
    "BuildReport",
    "shard_path",
]
