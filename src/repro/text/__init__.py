"""Text-retrieval substrate: tokenization, inverted files and TF/IDF.

This package implements the conventional machinery reviewed in Section II of
the paper.  It is used directly by the baselines (which index whole db-pages
or joined records as documents) and reused by the Dash core, whose inverted
*fragment* index shares the same posting-list structure but indexes db-page
fragment identifiers instead of page URLs.
"""

from repro.text.inverted_index import InvertedIndex, Posting
from repro.text.tfidf import TfIdfScorer, term_frequencies
from repro.text.tokenizer import tokenize

__all__ = [
    "InvertedIndex",
    "Posting",
    "TfIdfScorer",
    "term_frequencies",
    "tokenize",
]
