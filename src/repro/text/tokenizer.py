"""Keyword extraction.

The paper treats every projected attribute value of a record as contributing
keywords to a db-page (Example 6 counts ``Bond's``, ``Cafe``, ``9``, ``4.3``,
``Nice``, ``Coffee``, ``James`` and ``01/11`` as the eight keywords of a
fragment).  The tokenizer therefore keeps numbers and date-like tokens, folds
case, and splits on everything that is neither alphanumeric nor one of the
intra-token characters ``.  /  '`` that keep decimals, dates and possessives
together.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+(?:[./'][A-Za-z0-9]+)*")


def tokenize(text: str) -> List[str]:
    """Split ``text`` into lowercase keywords.

    >>> tokenize("Burger experts by David on 06/10")
    ['burger', 'experts', 'by', 'david', 'on', '06/10']
    >>> tokenize("Bond's Cafe  4.3")
    ["bond's", 'cafe', '4.3']
    """
    if not text:
        return []
    return [match.group(0).lower() for match in _TOKEN_RE.finditer(str(text))]


def tokenize_values(values: Iterable[str]) -> List[str]:
    """Tokenize every value in ``values`` and concatenate the keyword lists."""
    keywords: List[str] = []
    for value in values:
        keywords.extend(tokenize(value))
    return keywords


def count_keywords(keywords: Iterable[str]) -> Dict[str, int]:
    """Occurrence counts of each keyword."""
    counts: Dict[str, int] = {}
    for keyword in keywords:
        counts[keyword] = counts.get(keyword, 0) + 1
    return counts
