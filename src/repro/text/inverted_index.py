"""A conventional inverted file (Section II of the paper).

The index maps each keyword ``w`` to an inverted list ``L_w`` of postings
``(document_id, TF_w)`` sorted in descending term-frequency order, so that

* ``IDF_w`` can be computed as the inverse of ``len(L_w)``, and
* documents with high TF on ``w`` are found in the initial part of ``L_w``.

The same structure backs both the baseline page/document indexes and (via
:mod:`repro.core.fragment_index`) Dash's inverted fragment index, where the
"documents" are db-page fragment identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.text.tfidf import TfIdfScorer, term_frequencies
from repro.text.tokenizer import count_keywords, tokenize


@dataclass(frozen=True)
class Posting:
    """One entry of an inverted list: a document and its term frequency."""

    document_id: Hashable
    term_frequency: int

    def __iter__(self):
        return iter((self.document_id, self.term_frequency))


class InvertedIndex:
    """An inverted file over arbitrary hashable document identifiers."""

    def __init__(self) -> None:
        self._postings: Dict[str, List[Posting]] = {}
        self._document_lengths: Dict[Hashable, int] = {}
        self._sorted = True

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_document(self, document_id: Hashable, text: str) -> None:
        """Index raw ``text`` under ``document_id``."""
        self.add_term_frequencies(document_id, term_frequencies(text))

    def add_keywords(self, document_id: Hashable, keywords: Iterable[str]) -> None:
        """Index an already-tokenized keyword sequence."""
        self.add_term_frequencies(document_id, count_keywords(keywords))

    def add_term_frequencies(self, document_id: Hashable, frequencies: Mapping[str, int]) -> None:
        """Index a precomputed term-frequency map (idempotent per document id)."""
        if document_id in self._document_lengths:
            raise ValueError(f"document {document_id!r} already indexed")
        length = 0
        for keyword, frequency in frequencies.items():
            if frequency <= 0:
                continue
            self._postings.setdefault(keyword, []).append(Posting(document_id, frequency))
            length += frequency
        self._document_lengths[document_id] = length
        self._sorted = False

    def merge_term_frequencies(self, document_id: Hashable, frequencies: Mapping[str, int]) -> None:
        """Add occurrences to an existing (or new) document, merging counts.

        Used by the incremental-maintenance extension, where a database update
        changes the keyword counts of an existing fragment.
        """
        existing = self.term_frequencies(document_id)
        merged = dict(existing)
        for keyword, frequency in frequencies.items():
            merged[keyword] = merged.get(keyword, 0) + frequency
        self.remove_document(document_id)
        self.add_term_frequencies(document_id, {k: v for k, v in merged.items() if v > 0})

    def remove_document(self, document_id: Hashable) -> None:
        """Remove every posting of ``document_id`` (no-op when absent)."""
        if document_id not in self._document_lengths:
            return
        del self._document_lengths[document_id]
        empty_keywords = []
        for keyword, postings in self._postings.items():
            kept = [posting for posting in postings if posting.document_id != document_id]
            if len(kept) != len(postings):
                self._postings[keyword] = kept
            if not kept:
                empty_keywords.append(keyword)
        for keyword in empty_keywords:
            del self._postings[keyword]

    def finalize(self) -> None:
        """Sort every inverted list by descending term frequency."""
        if self._sorted:
            return
        for postings in self._postings.values():
            postings.sort(key=lambda posting: (-posting.term_frequency, str(posting.document_id)))
        self._sorted = True

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def postings(self, keyword: str) -> Tuple[Posting, ...]:
        """The inverted list of ``keyword`` (empty when unseen)."""
        self.finalize()
        return tuple(self._postings.get(keyword.lower(), ()))

    def document_frequency(self, keyword: str) -> int:
        """Number of documents containing ``keyword``."""
        return len(self._postings.get(keyword.lower(), ()))

    def document_frequencies(self) -> Dict[str, int]:
        """Document frequency of every indexed keyword."""
        return {keyword: len(postings) for keyword, postings in self._postings.items()}

    def term_frequencies(self, document_id: Hashable) -> Dict[str, int]:
        """Term-frequency map of one document (linear scan; test/maintenance use)."""
        frequencies: Dict[str, int] = {}
        for keyword, postings in self._postings.items():
            for posting in postings:
                if posting.document_id == document_id:
                    frequencies[keyword] = posting.term_frequency
                    break
        return frequencies

    def document_length(self, document_id: Hashable) -> int:
        """Total number of keyword occurrences indexed for ``document_id``."""
        return self._document_lengths.get(document_id, 0)

    @property
    def document_count(self) -> int:
        return len(self._document_lengths)

    @property
    def vocabulary(self) -> Tuple[str, ...]:
        return tuple(self._postings)

    def document_ids(self) -> Tuple[Hashable, ...]:
        return tuple(self._document_lengths)

    def __contains__(self, keyword: str) -> bool:
        return keyword.lower() in self._postings

    def __len__(self) -> int:
        return len(self._postings)

    def approximate_bytes(self) -> int:
        """Rough size of the index, for the ablation benchmarks."""
        total = 0
        for keyword, postings in self._postings.items():
            total += len(keyword) + 1
            total += 12 * len(postings)
        return total

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def scorer(self, smoothed: bool = False) -> TfIdfScorer:
        """A TF/IDF scorer whose document frequencies come from this index."""
        return TfIdfScorer(self.document_frequencies(), self.document_count, smoothed=smoothed)

    def search(self, keywords: Iterable[str], k: Optional[int] = None) -> List[Tuple[Hashable, float]]:
        """Top-``k`` documents by TF/IDF for ``keywords`` (all documents when ``k`` is None)."""
        self.finalize()
        query_terms = [keyword.lower() for keyword in keywords]
        scorer = self.scorer()
        scores: Dict[Hashable, float] = {}
        for keyword in set(query_terms):
            idf = scorer.idf(keyword)
            if idf == 0.0:
                continue
            for posting in self._postings.get(keyword, ()):
                scores[posting.document_id] = (
                    scores.get(posting.document_id, 0.0) + posting.term_frequency * idf
                )
        ranked = sorted(scores.items(), key=lambda item: (-item[1], str(item[0])))
        if k is not None:
            ranked = ranked[:k]
        return ranked

    def iter_items(self) -> Iterator[Tuple[str, Tuple[Posting, ...]]]:
        """Iterate ``(keyword, postings)`` pairs in keyword order."""
        self.finalize()
        for keyword in sorted(self._postings):
            yield keyword, tuple(self._postings[keyword])
