"""TF/IDF relevance scoring (Section II of the paper).

The relevance of a document ``p`` to a keyword set ``W`` is::

    TF-IDF_W(p) = sum_{w in W} TF_w(p) * IDF_w

where ``TF_w(p)`` is the number of occurrences of ``w`` in ``p`` and ``IDF_w``
is the inverse of the number of documents containing ``w``.  Dash reuses this
scorer with "document" meaning either a db-page fragment or an assembled
db-page; its IDF approximation (inverse of the number of *fragments*
containing ``w``) is handled by the caller simply by choosing what counts as
a document.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping

from repro.text.tokenizer import count_keywords, tokenize


def term_frequencies(text: str) -> Dict[str, int]:
    """Term-frequency map of ``text``."""
    return count_keywords(tokenize(text))


class TfIdfScorer:
    """Scores documents given per-keyword document frequencies.

    Parameters
    ----------
    document_frequencies:
        Mapping from keyword to the number of documents containing it.
    total_documents:
        Size of the collection (only used by the optional smoothed IDF).
    smoothed:
        When true, use ``log(1 + N / df)`` instead of the paper's plain
        ``1 / df``.  The paper uses the plain inverse; the smoothed variant is
        provided for the ablation benchmarks.
    """

    def __init__(
        self,
        document_frequencies: Mapping[str, int],
        total_documents: int = 0,
        smoothed: bool = False,
    ) -> None:
        self._document_frequencies = dict(document_frequencies)
        self._total_documents = max(total_documents, 1)
        self._smoothed = smoothed

    def document_frequency(self, keyword: str) -> int:
        """Number of documents containing ``keyword`` (0 when unseen)."""
        return self._document_frequencies.get(keyword, 0)

    def idf(self, keyword: str) -> float:
        """Inverse document frequency of ``keyword``.

        Unseen keywords get an IDF of 0 so they simply do not contribute.
        """
        frequency = self.document_frequency(keyword)
        if frequency <= 0:
            return 0.0
        if self._smoothed:
            return math.log(1.0 + self._total_documents / frequency)
        return 1.0 / frequency

    def score(self, term_frequency: Mapping[str, int], keywords: Iterable[str]) -> float:
        """TF-IDF score of a document (given as a TF map) for ``keywords``."""
        total = 0.0
        for keyword in set(keywords):
            frequency = term_frequency.get(keyword, 0)
            if frequency:
                total += frequency * self.idf(keyword)
        return total

    def score_text(self, text: str, keywords: Iterable[str]) -> float:
        """Convenience wrapper scoring raw ``text``."""
        return self.score(term_frequencies(text), keywords)
