"""The asynchronous write side of the serving layer.

:class:`MaintenanceService` is to mutations what
:class:`~repro.serving.SearchService` is to queries: the layer a deployment
puts between HTTP and :class:`~repro.core.incremental.IncrementalMaintainer`.
Callers enqueue database updates (:meth:`MaintenanceService.insert` /
:meth:`MaintenanceService.delete`) and immediately get a ticket
(a :class:`concurrent.futures.Future`); a dedicated writer thread drains the
queue, **coalesces** whatever accumulated into one batch (bounded by
``max_batch``, padded by a short ``max_delay_seconds`` window so bursts
arrive together), and applies it through
:meth:`~repro.core.incremental.IncrementalMaintainer.apply_updates` — one
derivation, one store mutation batch, one epoch tick per applied batch.

Consistency contract
--------------------

Search traffic keeps flowing while batches apply, and never observes a torn
state:

* batch application runs under the write side of a :class:`ReadWriteGate`;
  every search *computation* in the paired
  :class:`~repro.serving.SearchService` runs under the read side, so a
  computed result always reflects a batch boundary — the pre-batch or the
  post-batch index, never a mix (cached results revalidate against the
  epoch clock, which the batch ticks exactly once);
* on :class:`~repro.store.DiskStore` the whole batch additionally commits
  as one WAL transaction, so *other processes* reading the same file see
  batch boundaries too (see the store's single-writer mode).

One writer thread is the whole write side — the same single-writer regime
the store layer assumes — so no further locking is needed around the
maintainer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.fragments import FragmentId
from repro.core.incremental import (
    DatabaseUpdate,
    DeleteRecords,
    IncrementalMaintainer,
    InsertRecord,
)
from repro.serving.errors import ServiceClosedError, ServiceStoppedError


class ReadWriteGate:
    """A writer-preferring readers/writer lock for search-vs-maintenance.

    Many readers (search computations) share the gate; one writer (the
    maintenance batch) excludes them all while it applies.  Writer
    preference — arriving readers wait once a writer is queued — keeps a
    continuous query stream from starving the write path.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        """Hold the shared (reader) side for the duration of the block."""
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._active_readers += 1
        try:
            yield self
        finally:
            with self._condition:
                self._active_readers -= 1
                if not self._active_readers:
                    self._condition.notify_all()

    @contextmanager
    def write(self):
        """Hold the exclusive (writer) side for the duration of the block."""
        with self._condition:
            self._writers_waiting += 1
            while self._writer_active or self._active_readers:
                self._condition.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield self
        finally:
            with self._condition:
                self._writer_active = False
                self._condition.notify_all()


@dataclass(frozen=True)
class AppliedBatch:
    """What one applied maintenance batch did (every ticket resolves to one).

    ``affected`` — the union of fragment identifiers the batch re-derived;
    ``epoch`` — the store epoch after the batch (the tick serving caches
    revalidate against); ``updates`` — how many queued updates the batch
    coalesced; ``elapsed_seconds`` — wall time of the application itself.
    """

    affected: Tuple[FragmentId, ...]
    epoch: int
    updates: int
    elapsed_seconds: float


class MaintenanceService:
    """Queued, coalescing, background mutation application.

    ``maintainer`` owns the actual index/graph refresh logic; ``service``
    (optional) is the :class:`~repro.serving.SearchService` to coordinate
    with — its search computations are fenced by this service's
    :class:`ReadWriteGate` so they always observe batch boundaries.
    ``max_batch`` bounds how many queued updates one application round
    coalesces; ``max_delay_seconds`` is how long the writer waits after the
    first queued update for stragglers (latency/throughput knob: 0 applies
    immediately, larger windows batch harder).
    """

    def __init__(
        self,
        maintainer: IncrementalMaintainer,
        service: Optional[Any] = None,
        max_batch: int = 64,
        max_delay_seconds: float = 0.005,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        if max_delay_seconds < 0:
            raise ValueError(
                f"max_delay_seconds must be non-negative, got {max_delay_seconds}"
            )
        self._maintainer = maintainer
        self._service = service
        self._max_batch = max_batch
        self._max_delay = max_delay_seconds
        self.gate = ReadWriteGate()
        if service is not None:
            service.set_mutation_gate(self.gate)
        self._condition = threading.Condition()
        self._pending: Deque[Tuple[DatabaseUpdate, "Future[AppliedBatch]"]] = deque()
        self._inflight = 0  # queued + currently-applying tickets
        self._closed = False
        self._stopped: Optional[BaseException] = None  # writer-thread death cause
        self._failed_batches = 0
        self._batches_applied = 0
        self._updates_applied = 0
        self._updates_coalesced = 0
        self._apply_seconds = 0.0
        self._thread = threading.Thread(
            target=self._run, name="maintenance-writer", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # enqueueing
    # ------------------------------------------------------------------
    def insert(self, relation: str, record: Any) -> "Future[AppliedBatch]":
        """Queue one record insertion; returns the ticket of its batch."""
        return self.submit(InsertRecord(relation, record))

    def delete(
        self, relation: str, predicate: Callable[[Any], bool]
    ) -> "Future[AppliedBatch]":
        """Queue a predicate deletion; returns the ticket of its batch."""
        return self.submit(DeleteRecords(relation, predicate))

    def submit(self, update: DatabaseUpdate) -> "Future[AppliedBatch]":
        """Queue one :class:`~repro.core.incremental.DatabaseUpdate`.

        The returned future resolves to the :class:`AppliedBatch` that
        carried the update (many tickets can share one batch), or raises
        whatever the application raised.  Ordering is FIFO: updates apply in
        submission order, possibly within one coalesced round.
        """
        ticket: "Future[AppliedBatch]" = Future()
        with self._condition:
            if self._stopped is not None:
                raise ServiceStoppedError(
                    f"the maintenance writer thread died: {self._stopped!r}",
                    cause=self._stopped,
                )
            if self._closed:
                raise ServiceClosedError("this MaintenanceService has been closed")
            self._pending.append((update, ticket))
            self._inflight += 1
            self._condition.notify_all()
        return ticket

    # ------------------------------------------------------------------
    # the writer thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            self._drain_loop()
        except BaseException as error:  # writer died: fail fast, not silently
            self._abort(error)

    def _collect_batch(
        self,
    ) -> Optional[List[Tuple[DatabaseUpdate, "Future[AppliedBatch]"]]]:
        """Wait for work, run the coalescing window, pop one batch.

        Returns ``None`` when the service is closed and drained (the writer
        should exit) and a possibly-empty list otherwise (empty when
        ``close(drain=False)`` cancelled the queue mid-window).
        """
        with self._condition:
            while not self._pending and not self._closed:
                self._condition.wait()
            if not self._pending and self._closed:
                return None
            if self._max_delay and len(self._pending) < self._max_batch:
                # Coalescing window: give a burst a moment to finish
                # arriving so it lands as one batch, not many.
                deadline = time.monotonic() + self._max_delay
                while len(self._pending) < self._max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._condition.wait(remaining) is False:
                        break
            return [
                self._pending.popleft()
                for _ in range(min(len(self._pending), self._max_batch))
            ]

    def _abort(self, error: BaseException) -> None:
        """The writer thread died: fail every queued ticket, unblock waiters.

        Without this, tickets whose batch was never applied would hang
        forever and ``flush()`` would never return.  Subsequent
        :meth:`submit`/:meth:`flush` calls raise
        :class:`~repro.serving.errors.ServiceStoppedError` carrying the
        original cause.
        """
        with self._condition:
            self._stopped = error
            failed = list(self._pending)
            self._pending.clear()
            self._inflight = 0
            self._condition.notify_all()
        for _update, ticket in failed:
            ticket.set_exception(error)

    def _drain_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            if not batch:
                # close(drain=False) cancelled the queue while we sat in the
                # coalescing window — nothing to apply, nothing to count.
                continue
            updates = [update for update, _ticket in batch]
            started = time.perf_counter()
            try:
                with self.gate.write():
                    affected = self._maintainer.apply_updates(updates)
            except BaseException as error:  # resolve tickets, keep the thread alive
                with self._condition:
                    self._failed_batches += 1
                    self._inflight -= len(batch)
                    self._condition.notify_all()
                for _update, ticket in batch:
                    ticket.set_exception(error)
                continue
            elapsed = time.perf_counter() - started
            applied = AppliedBatch(
                affected=affected,
                epoch=self._maintainer.last_epoch,
                updates=len(batch),
                elapsed_seconds=elapsed,
            )
            with self._condition:
                self._batches_applied += 1
                self._updates_applied += len(batch)
                self._updates_coalesced += len(batch) - 1
                self._apply_seconds += elapsed
                self._inflight -= len(batch)
                self._condition.notify_all()
            for _update, ticket in batch:
                ticket.set_result(applied)

    # ------------------------------------------------------------------
    # synchronisation / lifecycle
    # ------------------------------------------------------------------
    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until every update submitted so far has been applied.

        Returns ``False`` when ``timeout`` (seconds) elapsed first.  Raises
        :class:`~repro.serving.errors.ServiceStoppedError` if the writer
        thread died (queued tickets were failed with its error) — the
        alternative would be hanging forever on work nobody will apply.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while self._inflight:
                if self._stopped is not None:
                    raise ServiceStoppedError(
                        f"the maintenance writer thread died: {self._stopped!r}",
                        cause=self._stopped,
                    )
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._condition.wait(remaining)
            if self._stopped is not None:
                raise ServiceStoppedError(
                    f"the maintenance writer thread died: {self._stopped!r}",
                    cause=self._stopped,
                )
        return True

    def close(self, drain: bool = True) -> None:
        """Stop accepting updates and shut the writer thread down.

        ``drain=True`` (default) applies everything still queued first;
        ``drain=False`` cancels the queue (pending tickets raise
        :class:`~repro.serving.errors.ServiceClosedError`).  Idempotent.
        """
        cancelled: List[Tuple[DatabaseUpdate, "Future[AppliedBatch]"]] = []
        with self._condition:
            already_closed = self._closed
            self._closed = True
            if not (already_closed or drain):
                cancelled = list(self._pending)
                self._pending.clear()
                self._inflight -= len(cancelled)
            self._condition.notify_all()
        for _update, ticket in cancelled:
            ticket.set_exception(
                ServiceClosedError("this MaintenanceService was closed before applying")
            )
        self._thread.join()

    def __enter__(self) -> "MaintenanceService":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Store epoch after the last applied batch."""
        return self._maintainer.last_epoch

    def statistics(self) -> Dict[str, Any]:
        """One snapshot of the write-side counters."""
        with self._condition:
            batches = self._batches_applied
            return {
                "batches_applied": batches,
                "updates_applied": self._updates_applied,
                "updates_coalesced": self._updates_coalesced,
                "failed_batches": self._failed_batches,
                "pending": len(self._pending),
                "stopped": self._stopped is not None,
                "apply_seconds": self._apply_seconds,
                "mean_batch_size": (self._updates_applied / batches) if batches else 0.0,
                "fragments_touched": self._maintainer.fragments_touched,
                "epoch": self._maintainer.last_epoch,
            }
