"""The cached, concurrent search frontend.

:class:`SearchService` is the layer a real deployment puts between HTTP and
the index — everything above :class:`~repro.core.search.TopKSearcher`:

* **query admission** — raw keyword input (a string, or any iterable of
  strings) is normalized through :func:`repro.text.tokenizer.tokenize`
  (lower-cased, split exactly like the indexed content) and de-duplicated
  preserving order; ``k`` and the size threshold ``s`` are validated.  Every
  rejection is a typed :class:`~repro.serving.errors.ServingError`.
* **versioned result cache** — an LRU of finished result lists, stamped with
  the store epoch and revalidated per lookup against the store's
  :class:`~repro.store.EpochClock` (see :mod:`repro.serving.cache`), so a
  maintenance run never serves outdated URLs while untouched hot entries
  keep hitting.
* **concurrent execution** — ``search()`` computes on the caller's thread;
  ``search_many()`` fans a batch out over a thread pool.  Identical queries
  in flight are *coalesced* (single-flight): one computation runs, the other
  callers wait for its result instead of duplicating work.
* **warm-up** — ``warm_up()`` pre-populates the cache for an expected
  workload before traffic arrives.

The service shares its searcher's :class:`~repro.core.search.SearchSession`,
so scorers and neighbour lists are also reused across requests and dropped on
epoch changes.  One service instance is safe for concurrent use from many
threads; maintenance is expected to be applied by one writer at a time
(matching :class:`~repro.core.incremental.IncrementalMaintainer`).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.search import SearchResult, SearchSession, TopKSearcher
from repro.serving.cache import CachedResult, ResultCache
from repro.serving.errors import (
    InvalidParameterError,
    InvalidQueryError,
    ServiceClosedError,
    ServiceConfigurationError,
)
from repro.text.tokenizer import tokenize

#: What ``search``/``search_many`` accept as one query's keywords.
KeywordsSpec = Union[str, Iterable[str]]


@dataclass(frozen=True)
class AdmittedQuery:
    """One validated, canonical query (the cache key is derived from it)."""

    keywords: Tuple[str, ...]
    k: int
    size_threshold: int

    @property
    def key(self) -> Hashable:
        return (self.keywords, self.k, self.size_threshold)


@dataclass(frozen=True)
class ServingResult:
    """One answered query.

    ``cached`` — served straight from the result cache;
    ``coalesced`` — computed once by a concurrent identical request and
    shared; ``epoch`` — the store epoch the results are valid against;
    ``complete`` — ``False`` for a degraded cluster answer with the
    unreachable partitions in ``missing_partitions`` (degraded answers are
    never served from or stored into the cache).
    """

    results: Tuple[SearchResult, ...]
    keywords: Tuple[str, ...]
    k: int
    size_threshold: int
    cached: bool
    coalesced: bool
    epoch: int
    elapsed_seconds: float
    complete: bool = True
    missing_partitions: Tuple[int, ...] = ()

    @property
    def urls(self) -> Tuple[str, ...]:
        return tuple(result.url for result in self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


class SearchService:
    """Query admission + versioned caching + concurrency over one searcher."""

    def __init__(
        self,
        searcher: TopKSearcher,
        session: Optional[SearchSession] = None,
        cache_size: int = 1024,
        workers: int = 4,
        default_k: int = 10,
        default_size_threshold: int = 100,
        max_dependencies: int = 4096,
        strict_freshness: bool = False,
    ) -> None:
        if workers < 1:
            raise ServiceConfigurationError(f"workers must be at least 1, got {workers}")
        if max_dependencies < 0:
            raise ServiceConfigurationError(
                f"max_dependencies must be non-negative, got {max_dependencies}"
            )
        try:
            self._check_limit("default_k", default_k)
            self._check_limit("default size threshold", default_size_threshold)
        except InvalidParameterError as error:
            # Construction-time mistakes are configuration errors, not
            # per-query admission failures.
            raise ServiceConfigurationError(str(error)) from None
        self._searcher = searcher
        self._session = session if session is not None else searcher.session()
        self._store = searcher.index.store
        self._cache = ResultCache(cache_size)
        self._workers = workers
        self._default_k = default_k
        self._default_size_threshold = default_size_threshold
        self._max_dependencies = max_dependencies
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._flight_lock = threading.Lock()
        self._inflight: Dict[Hashable, "Future[CachedResult]"] = {}
        # Store epoch observed when each in-flight leader was admitted — a
        # lower bound on the stamp its entry will carry (epochs only grow),
        # which is what lets sweep_epochs run safely alongside readers.
        self._inflight_stamps: Dict[Hashable, int] = {}
        self._counter_lock = threading.Lock()
        self._queries = 0
        self._computed = 0
        self._coalesced = 0
        self._closed = False
        # Write-side coordination (see repro.serving.maintenance): when a
        # MaintenanceService pairs with this service it installs its
        # ReadWriteGate here, fencing every search computation against
        # in-flight batch application so computed results always reflect a
        # batch boundary.  None means searches run ungated.
        self._mutation_gate = None
        #: The paired MaintenanceService, when serving was built with
        #: ``maintenance=True`` (closed together with this service).
        self.maintenance = None
        # Multi-process strictness: refresh the store's persisted epochs
        # before admission and revalidate every *computed* result before
        # serving it, recomputing on conflict.  This is what lets a
        # read-only DiskStore process serve boundary-consistent results
        # while another process owns writes; single-process deployments
        # leave it off (the gate already provides the guarantee for free).
        self._strict_freshness = strict_freshness
        self._epoch_refresher = getattr(self._store, "refresh_epochs", None)
        # Every cache comparing stamps against the store's clock must be
        # visible to epoch sweeps — including ones driven by *another*
        # service sharing the store (engine.serving() called twice).
        self._store.register_stamp_provider(self._oldest_stamp_in_use)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(
        self,
        keywords: KeywordsSpec,
        k: Optional[int] = None,
        size_threshold: Optional[int] = None,
    ) -> AdmittedQuery:
        """Normalize and validate one query, or raise a typed ServingError.

        Keyword input goes through the same tokenizer the crawl used to index
        fragment content, so ``"Bond's  Cafe"`` admits exactly the keywords
        the index knows; duplicates collapse (first occurrence wins the
        scoring order).
        """
        if keywords is None:
            raise InvalidQueryError("query keywords must not be None")
        if isinstance(keywords, str):
            parts: List[str] = tokenize(keywords)
        else:
            parts = []
            for value in keywords:
                parts.extend(tokenize(str(value)))
        canonical = tuple(dict.fromkeys(parts))
        if not canonical:
            raise InvalidQueryError(f"no keywords admitted from {keywords!r}")
        k = self._default_k if k is None else k
        size_threshold = (
            self._default_size_threshold if size_threshold is None else size_threshold
        )
        self._check_limit("k", k)
        self._check_limit("size threshold s", size_threshold)
        return AdmittedQuery(keywords=canonical, k=k, size_threshold=size_threshold)

    @staticmethod
    def _check_limit(name: str, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise InvalidParameterError(f"{name} must be an integer, got {value!r}")
        if value < 1:
            raise InvalidParameterError(f"{name} must be at least 1, got {value}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def search(
        self,
        keywords: KeywordsSpec,
        k: Optional[int] = None,
        size_threshold: Optional[int] = None,
    ) -> ServingResult:
        """Answer one keyword query (cache → coalesce → compute)."""
        return self._execute(self.admit(keywords, k, size_threshold))

    def search_many(
        self,
        requests: Sequence[Any],
        k: Optional[int] = None,
        size_threshold: Optional[int] = None,
    ) -> List[ServingResult]:
        """Answer a batch of queries concurrently, preserving request order.

        Each request is a keywords spec (a string or an iterable of strings)
        or a mapping with ``keywords`` and optional ``k``/``size_threshold``
        overriding the batch-level defaults.  The whole batch is admitted
        up front, so an invalid request rejects before any work starts.

        Duplicate queries within one batch are answered by a single
        execution (its ServingResult is shared): a follower parked on an
        in-flight future would otherwise hold a worker slot doing nothing,
        serializing the distinct queries queued behind it — and Zipf-shaped
        traffic is duplicate-heavy by construction.
        """
        if isinstance(requests, str):
            # A bare string would fan out one query per character.
            raise InvalidParameterError(
                "search_many expects a sequence of queries; use search() for a single query"
            )
        admitted = [self._admit_request(request, k, size_threshold) for request in requests]
        if not admitted:
            return []
        unique: Dict[Hashable, AdmittedQuery] = {}
        for query in admitted:
            unique.setdefault(query.key, query)
        if self._workers == 1 or len(unique) == 1:
            by_key = {key: self._execute(query) for key, query in unique.items()}
        else:
            executor = self._ensure_executor()
            futures = {
                key: executor.submit(self._execute, query) for key, query in unique.items()
            }
            by_key = {key: future.result() for key, future in futures.items()}
        duplicates = len(admitted) - len(unique)
        if duplicates:
            # Keep statistics consistent with the search() path: every
            # answered request counts as a query, and a deduped duplicate is
            # a coalesced one.
            with self._counter_lock:
                self._queries += duplicates
                self._coalesced += duplicates
        return [by_key[query.key] for query in admitted]

    def warm_up(
        self,
        requests: Sequence[Any],
        k: Optional[int] = None,
        size_threshold: Optional[int] = None,
    ) -> int:
        """Pre-populate the cache for an expected workload.

        Runs the batch like :meth:`search_many` (concurrently, coalesced) and
        returns the number of entries resident in the cache afterwards.
        """
        self.search_many(requests, k=k, size_threshold=size_threshold)
        return len(self._cache)

    def _admit_request(
        self, request: Any, k: Optional[int], size_threshold: Optional[int]
    ) -> AdmittedQuery:
        if isinstance(request, Mapping):
            unknown = set(request) - {"keywords", "k", "size_threshold"}
            if unknown:
                raise InvalidParameterError(f"unknown query fields {sorted(unknown)}")
            if "keywords" not in request:
                raise InvalidQueryError(f"query mapping {request!r} is missing 'keywords'")
            return self.admit(
                request["keywords"],
                request.get("k", k),
                request.get("size_threshold", size_threshold),
            )
        return self.admit(request, k, size_threshold)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, query: AdmittedQuery) -> ServingResult:
        if self._closed:
            raise ServiceClosedError("this SearchService has been closed")
        started = time.perf_counter()
        with self._counter_lock:
            self._queries += 1
        key = query.key

        while True:
            if self._strict_freshness and self._epoch_refresher is not None:
                # Pull epochs another process committed before consulting the
                # cache, so entries invalidate exactly like they would in the
                # writer's own process.
                self._epoch_refresher()
            entry = self._cache.get(key, self._store)
            if entry is not None:
                return self._serve(query, entry, started, cached=True, coalesced=False)

            # Single-flight: the first miss for a key computes; concurrent
            # identical requests wait for that computation instead of
            # repeating it.
            with self._flight_lock:
                future = self._inflight.get(key)
                leader = future is None
                if leader:
                    future = Future()
                    self._inflight[key] = future
                    self._inflight_stamps[key] = self._store.epoch
            if not leader:
                entry = future.result()
                with self._counter_lock:
                    self._coalesced += 1
                if ResultCache.is_fresh(entry, self._store):
                    return self._serve(query, entry, started, cached=False, coalesced=True)
                # The leader's entry is stamped with its pre-search epoch; a
                # follower admitted *after* a maintenance run that raced the
                # leader's computation must not serve those results — apply
                # the same freshness rule a cache lookup would, retrying
                # (bounded by the store actually mutating between rounds).
                continue

            try:
                gate = self._mutation_gate
                if gate is None:
                    detailed = self._searcher.search_detailed(
                        query.keywords,
                        k=query.k,
                        size_threshold=query.size_threshold,
                        session=self._session,
                    )
                else:
                    # The read side of the maintenance gate: a background
                    # batch can never apply halfway through this computation,
                    # so the result always reflects a batch boundary.
                    with gate.read():
                        detailed = self._searcher.search_detailed(
                            query.keywords,
                            k=query.k,
                            size_threshold=query.size_threshold,
                            session=self._session,
                        )
                dependencies = detailed.dependencies
                # Single-store searchers have no notion of partial answers;
                # the cluster router stamps these on its statistics.
                complete = getattr(detailed.statistics, "complete", True)
                missing = tuple(getattr(detailed.statistics, "missing_partitions", ()))
                entry = CachedResult(
                    results=detailed.results,
                    keywords=detailed.keywords,
                    dependencies=(
                        dependencies if len(dependencies) <= self._max_dependencies else None
                    ),
                    epoch=detailed.epoch,
                    complete=complete,
                    missing_partitions=missing,
                )
                # The cache refuses partial entries too (defense in depth).
                if complete:
                    self._cache.put(key, entry)
                with self._counter_lock:
                    self._computed += 1
                future.set_result(entry)
            except BaseException as error:
                future.set_exception(error)
                raise
            finally:
                with self._flight_lock:
                    self._inflight.pop(key, None)
                    self._inflight_stamps.pop(key, None)
            if self._strict_freshness:
                # Cross-process regime: another process's batch may have
                # committed mid-computation (no in-process gate can fence
                # it).  Refresh the persisted epochs and apply the same
                # freshness rule a cache lookup would — recompute on
                # conflict instead of serving a possibly-torn read.  Bounded
                # by the writer actually committing between rounds.
                if self._epoch_refresher is not None:
                    self._epoch_refresher()
                if not ResultCache.is_fresh(entry, self._store):
                    continue
            return self._serve(query, entry, started, cached=False, coalesced=False)

    def _serve(
        self,
        query: AdmittedQuery,
        entry: CachedResult,
        started: float,
        cached: bool,
        coalesced: bool,
    ) -> ServingResult:
        return ServingResult(
            results=entry.results,
            keywords=query.keywords,
            k=query.k,
            size_threshold=query.size_threshold,
            cached=cached,
            coalesced=coalesced,
            epoch=entry.epoch,
            elapsed_seconds=time.perf_counter() - started,
            complete=getattr(entry, "complete", True),
            missing_partitions=tuple(getattr(entry, "missing_partitions", ())),
        )

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._closed:
                raise ServiceClosedError("this SearchService has been closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._workers, thread_name_prefix="search-service"
                )
            return self._executor

    def set_mutation_gate(self, gate) -> None:
        """Install (or clear) the maintenance gate fencing computations.

        Called by :class:`~repro.serving.maintenance.MaintenanceService` on
        construction; every subsequent search computation runs under the
        gate's read side so batch application is atomic with respect to it.
        """
        self._mutation_gate = gate

    # ------------------------------------------------------------------
    # lifecycle / inspection
    # ------------------------------------------------------------------
    def invalidate_cache(self) -> int:
        """Drop every cached result (returns how many were resident)."""
        return self._cache.invalidate()

    def sweep_epochs(self) -> int:
        """Prune the store clock's tombstones no live cache entry can see.

        The :class:`~repro.store.EpochClock` keeps a final epoch for every
        fragment and keyword ever mutated — removed fragments stay behind as
        tombstones so stale entries keep failing revalidation, which is
        O(fragments ever seen) memory under continuous maintenance churn.
        This sweep bounds that: it computes the oldest stamp still in use —
        over the resident cache entries and every in-flight computation's
        admission epoch (a lower bound on the stamp its entry will carry) —
        and drops every clock entry at or below it, which provably cannot
        change any surviving revalidation verdict (see
        :meth:`repro.store.EpochClock.sweep`).

        The store clamps the bound by every registered consumer — this
        service's own :meth:`_oldest_stamp_in_use` and any other service
        sharing the store — so a sweep driven here can never strand someone
        else's older entries.  Safe to call while readers are searching;
        call it from the maintenance writer after applying updates (the
        same single-writer regime the rest of the store layer assumes).
        One bounded race is accepted, same class as the clock's permitted
        write-window race: an entry that left the cache (eviction,
        ``invalidate_cache``) while a reader was mid-revalidation is
        invisible to the bound and may be served stale once; it is gone
        from the cache, so it cannot be served again.  Returns the number
        of clock entries pruned.
        """
        # The service's own bound arrives through its registered provider;
        # with nothing cached and nothing in flight anywhere, every stamp
        # handed out from now on is >= the current epoch.
        return self._store.sweep_epochs(self._store.epoch)

    def _oldest_stamp_in_use(self) -> Optional[int]:
        """The oldest epoch stamp this service still compares against.

        ``None`` when nothing is cached or in flight.  Registered with the
        store as a stamp provider so sweeps from any consumer respect it.
        """
        with self._flight_lock:
            bounds = list(self._inflight_stamps.values())
        oldest_cached = self._cache.oldest_stamp()
        if oldest_cached is not None:
            bounds.append(oldest_cached)
        return min(bounds) if bounds else None

    @property
    def epoch(self) -> int:
        """The backing store's current mutation epoch."""
        return self._store.epoch

    @property
    def cache(self) -> ResultCache:
        return self._cache

    @property
    def workers(self) -> int:
        return self._workers

    def statistics(self) -> Dict[str, Any]:
        """One snapshot of every service counter (queries, cache, session)."""
        with self._counter_lock:
            counters = {
                "queries": self._queries,
                "computed": self._computed,
                "coalesced": self._coalesced,
            }
        statistics = {
            **counters,
            "cache": {
                **self._cache.statistics.as_dict(),
                "entries": len(self._cache),
                "capacity": self._cache.capacity,
            },
            "session": self._session.statistics(),
            # Running totals from the searcher's bounded read path —
            # seeds_scored vs pruned_dequeues is how much seed scoring (and
            # batched size reading) the admissible bounds saved this service's
            # computed queries; see repro.core.search.SearchStatistics.
            "search": self._searcher.lifetime_statistics(),
            "epoch": self._store.epoch,
            "workers": self._workers,
        }
        if self.maintenance is not None:
            statistics["maintenance"] = self.maintenance.statistics()
        return statistics

    def close(self) -> None:
        """Stop accepting queries and shut the worker pool down.

        A paired :class:`~repro.serving.maintenance.MaintenanceService`
        (``serving(maintenance=True)``) is closed first, draining its queue.
        """
        maintenance, self.maintenance = self.maintenance, None
        if maintenance is not None:
            maintenance.close()
        with self._executor_lock:
            self._closed = True
            executor, self._executor = self._executor, None
        self._store.unregister_stamp_provider(self._oldest_stamp_in_use)
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "SearchService":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()
