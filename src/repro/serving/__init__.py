"""The serving layer: everything between HTTP and the fragment index.

* :mod:`repro.serving.service` — :class:`SearchService`: query admission,
  a versioned LRU result cache, thread-pooled ``search_many`` with
  single-flight coalescing, warm-up.
* :mod:`repro.serving.cache` — :class:`ResultCache`: LRU entries stamped with
  the store epoch and revalidated against per-keyword / per-fragment mutation
  epochs (see :mod:`repro.store.epochs`).
* :mod:`repro.serving.gateway` — :class:`SearchGateway`: the search (and
  mutation) endpoint deployable on the simulated
  :class:`~repro.webapp.server.WebServer`.
* :mod:`repro.serving.maintenance` — :class:`MaintenanceService`: the write
  side — queued mutations coalesced into background batches on a dedicated
  writer thread, fenced against search computations by a
  :class:`ReadWriteGate`.
* :mod:`repro.serving.errors` — the typed :class:`ServingError` hierarchy.

The blessed construction path is
:meth:`repro.core.engine.DashEngine.serving`, which shares the engine's
epoch-invalidated search session with the service (and, with
``maintenance=True``, wires the write side to the same engine).
"""

from repro.serving.cache import CachedResult, CacheStatistics, ResultCache
from repro.serving.errors import (
    InvalidParameterError,
    InvalidQueryError,
    PartialResultError,
    PartitionUnavailableError,
    ServiceClosedError,
    ServiceConfigurationError,
    ServiceStoppedError,
    ServingError,
)
from repro.serving.gateway import SearchGateway
from repro.serving.maintenance import AppliedBatch, MaintenanceService, ReadWriteGate
from repro.serving.service import AdmittedQuery, SearchService, ServingResult

__all__ = [
    "AdmittedQuery",
    "AppliedBatch",
    "CachedResult",
    "CacheStatistics",
    "InvalidParameterError",
    "InvalidQueryError",
    "MaintenanceService",
    "PartialResultError",
    "PartitionUnavailableError",
    "ReadWriteGate",
    "ResultCache",
    "SearchGateway",
    "SearchService",
    "ServiceClosedError",
    "ServiceConfigurationError",
    "ServiceStoppedError",
    "ServingError",
    "ServingResult",
]
