"""The web search endpoint: a SearchService deployable on the WebServer.

:class:`SearchGateway` quacks like a :class:`~repro.webapp.WebApplication`
(it has a ``uri`` and a ``generate_page``), so the simulated
:class:`~repro.webapp.server.WebServer` can host it next to the db-page
applications it indexes.  One host then serves the whole story end to end:

    GET www.example.com/dbsearch?q=thai+burger&k=5   → ranked db-page URLs
    GET www.example.com/Search?c=Thai&l=10&u=10      → the suggested db-page

Query-string fields: ``q`` — the keyword query (percent-encoded, ``+`` for
spaces, required); ``k`` — result count; ``s`` — the size threshold.  Invalid
input raises the service's typed
:class:`~repro.serving.errors.ServingError`\\ s, exactly like a malformed
query string raises on a regular application.
"""

from __future__ import annotations

import html
from typing import Any, Optional

from repro.serving.errors import InvalidParameterError
from repro.serving.service import SearchService, ServingResult
from repro.webapp.rendering import DbPage
from repro.webapp.request import QueryString


class SearchGateway:
    """Serves keyword search over a :class:`SearchService` as db-pages."""

    def __init__(
        self,
        service: SearchService,
        uri: str = "www.example.com/dbsearch",
        name: str = "DbSearch",
    ) -> None:
        self.service = service
        self.uri = uri
        self.name = name
        self.requests_served = 0

    # ------------------------------------------------------------------
    # the WebApplication execution contract
    # ------------------------------------------------------------------
    def generate_page(self, database: Any, query_string: Any) -> DbPage:
        """Answer ``?q=...&k=...&s=...`` with a page of ranked db-page URLs.

        ``database`` is part of the hosting contract but unused: the gateway
        answers from the fragment index, never by running the application
        queries — that is the entire point of the paper's architecture.
        """
        del database
        text = str(query_string).lstrip("?")
        fields = QueryString.parse(text)
        served = self.service.search(
            fields.get("q") or "",
            k=self._int_field(fields.get("k"), "k"),
            size_threshold=self._int_field(fields.get("s"), "s"),
        )
        self.requests_served += 1
        return self._render(text, served)

    @staticmethod
    def _int_field(value: Optional[str], name: str) -> Optional[int]:
        if value is None:
            return None
        try:
            return int(value)
        except ValueError:
            raise InvalidParameterError(f"field {name!r} must be an integer, got {value!r}") from None

    # ------------------------------------------------------------------
    def _render(self, query_string: str, served: ServingResult) -> DbPage:
        """Render one result page (rank, URL, score per suggested db-page)."""
        title = f"{self.name}: {' '.join(served.keywords)}"
        text_lines = []
        html_rows = []
        for rank, result in enumerate(served.results, start=1):
            text_lines.append(f"{rank} {result.url} {result.score:.6f}")
            html_rows.append(
                f'<li><a href="{html.escape(result.url)}">{html.escape(result.url)}</a>'
                f" <small>score={result.score:.6f} size={result.size}</small></li>"
            )
        page_html = (
            f"<html><head><title>{html.escape(title)}</title></head><body>\n"
            f"<h1>{html.escape(title)}</h1>\n"
            f"<ol>\n" + "\n".join(html_rows) + "\n</ol>\n"
            f"</body></html>"
        )
        return DbPage(
            url=f"{self.uri}?{query_string}",
            title=title,
            text="\n".join(text_lines),
            html=page_html,
            record_count=len(served.results),
        )
