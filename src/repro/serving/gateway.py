"""The web search endpoint: a SearchService deployable on the WebServer.

:class:`SearchGateway` quacks like a :class:`~repro.webapp.WebApplication`
(it has a ``uri`` and a ``generate_page``), so the simulated
:class:`~repro.webapp.server.WebServer` can host it next to the db-page
applications it indexes.  One host then serves the whole story end to end:

    GET www.example.com/dbsearch?q=thai+burger&k=5   → ranked db-page URLs
    GET www.example.com/Search?c=Thai&l=10&u=10      → the suggested db-page

Query-string fields: ``q`` — the keyword query (percent-encoded, ``+`` for
spaces, required); ``k`` — result count; ``s`` — the size threshold.  Invalid
input raises the service's typed
:class:`~repro.serving.errors.ServingError`\\ s, exactly like a malformed
query string raises on a regular application.

When the gateway's service carries a
:class:`~repro.serving.MaintenanceService` (``serving(maintenance=True)``),
the endpoint also accepts **mutation routes** — the write path over the same
wire format:

    GET .../dbsearch?op=insert&relation=comment&values=["207","001",...]
    GET .../dbsearch?op=delete&relation=comment&attr=cid&value=203

``values`` is a percent-encoded JSON array matching the relation's attribute
order; a delete removes every record whose ``attr`` stringifies to
``value``.  Mutations queue behind the maintenance writer and the response
reports the applied batch (``wait=0`` returns as soon as the update is
queued).  A gateway whose service has no maintenance side rejects mutation
routes with :class:`~repro.serving.errors.InvalidParameterError`.
"""

from __future__ import annotations

import html
import json
from typing import Any, Optional

from repro.serving.errors import InvalidParameterError
from repro.serving.service import SearchService, ServingResult
from repro.webapp.rendering import DbPage
from repro.webapp.request import QueryString


class SearchGateway:
    """Serves keyword search over a :class:`SearchService` as db-pages."""

    def __init__(
        self,
        service: SearchService,
        uri: str = "www.example.com/dbsearch",
        name: str = "DbSearch",
    ) -> None:
        self.service = service
        self.uri = uri
        self.name = name
        self.requests_served = 0

    # ------------------------------------------------------------------
    # the WebApplication execution contract
    # ------------------------------------------------------------------
    def generate_page(self, database: Any, query_string: Any) -> DbPage:
        """Answer search (``?q=...``) and mutation (``?op=...``) routes.

        ``database`` is part of the hosting contract but unused: the gateway
        answers from the fragment index (and mutates through the maintenance
        queue), never by running the application queries — that is the
        entire point of the paper's architecture.
        """
        del database
        text = str(query_string).lstrip("?")
        fields = QueryString.parse(text)
        operation = fields.get("op") or "search"
        if operation != "search":
            page = self._mutate(text, operation, fields)
            self.requests_served += 1
            return page
        served = self.service.search(
            fields.get("q") or "",
            k=self._int_field(fields.get("k"), "k"),
            size_threshold=self._int_field(fields.get("s"), "s"),
        )
        self.requests_served += 1
        return self._render(text, served)

    # ------------------------------------------------------------------
    # mutation routes
    # ------------------------------------------------------------------
    def _mutate(self, query_string: str, operation: str, fields: QueryString) -> DbPage:
        maintenance = self.service.maintenance
        if maintenance is None:
            raise InvalidParameterError(
                "this gateway serves a read-only SearchService; build it with "
                "serving(maintenance=True) to accept mutations"
            )
        relation = fields.get("relation")
        if not relation:
            raise InvalidParameterError("mutation routes require a 'relation' field")
        if operation == "insert":
            raw = fields.get("values")
            if raw is None:
                raise InvalidParameterError("op=insert requires a 'values' JSON array")
            try:
                values = json.loads(raw)
            except json.JSONDecodeError as error:
                raise InvalidParameterError(
                    f"field 'values' is not valid JSON: {error}"
                ) from None
            if not isinstance(values, list):
                raise InvalidParameterError(
                    f"field 'values' must be a JSON array, got {type(values).__name__}"
                )
            ticket = maintenance.insert(relation, tuple(values))
        elif operation == "delete":
            attribute = fields.get("attr")
            value = fields.get("value")
            if attribute is None or value is None:
                raise InvalidParameterError(
                    "op=delete requires 'attr' and 'value' fields"
                )
            ticket = maintenance.delete(
                relation,
                lambda record, attribute=attribute, value=value: (
                    str(record[attribute]) == value
                ),
            )
        else:
            raise InvalidParameterError(
                f"unknown op {operation!r}; expected 'search', 'insert' or 'delete'"
            )
        wait = (fields.get("wait") or "1") not in ("0", "false", "no")
        if not wait:
            return self._render_mutation(query_string, operation, relation, None)
        applied = ticket.result()
        return self._render_mutation(query_string, operation, relation, applied)

    def _render_mutation(
        self, query_string: str, operation: str, relation: str, applied
    ) -> DbPage:
        title = f"{self.name}: {operation} {relation}"
        if applied is None:
            lines = ["queued"]
        else:
            lines = [
                f"updates {applied.updates}",
                f"epoch {applied.epoch}",
                f"affected {' '.join(str(identifier) for identifier in applied.affected)}",
            ]
        body = "\n".join(lines)
        page_html = (
            f"<html><head><title>{html.escape(title)}</title></head><body>\n"
            f"<h1>{html.escape(title)}</h1>\n<pre>{html.escape(body)}</pre>\n"
            f"</body></html>"
        )
        return DbPage(
            url=f"{self.uri}?{query_string}",
            title=title,
            text=body,
            html=page_html,
            record_count=0 if applied is None else len(applied.affected),
        )

    @staticmethod
    def _int_field(value: Optional[str], name: str) -> Optional[int]:
        if value is None:
            return None
        try:
            return int(value)
        except ValueError:
            raise InvalidParameterError(f"field {name!r} must be an integer, got {value!r}") from None

    # ------------------------------------------------------------------
    def _render(self, query_string: str, served: ServingResult) -> DbPage:
        """Render one result page (rank, URL, score per suggested db-page)."""
        title = f"{self.name}: {' '.join(served.keywords)}"
        text_lines = []
        html_rows = []
        banner = ""
        if not getattr(served, "complete", True):
            missing = " ".join(str(partition) for partition in served.missing_partitions)
            incomplete = f"INCOMPLETE missing partitions {missing}"
            text_lines.append(incomplete)
            banner = f"<p><strong>{html.escape(incomplete)}</strong></p>\n"
        for rank, result in enumerate(served.results, start=1):
            text_lines.append(f"{rank} {result.url} {result.score:.6f}")
            html_rows.append(
                f'<li><a href="{html.escape(result.url)}">{html.escape(result.url)}</a>'
                f" <small>score={result.score:.6f} size={result.size}</small></li>"
            )
        page_html = (
            f"<html><head><title>{html.escape(title)}</title></head><body>\n"
            f"<h1>{html.escape(title)}</h1>\n" + banner +
            f"<ol>\n" + "\n".join(html_rows) + "\n</ol>\n"
            f"</body></html>"
        )
        return DbPage(
            url=f"{self.uri}?{query_string}",
            title=title,
            text="\n".join(text_lines),
            html=page_html,
            record_count=len(served.results),
        )
