"""The versioned LRU result cache.

Entries are stamped with the store epoch observed when their search ran and
carry the search's *dependency set* — the query keywords plus every fragment
the search consulted (see :class:`~repro.core.search.DetailedSearch`).  A hit
is served only after revalidation against the store's
:class:`~repro.store.EpochClock`:

* fast path — the store epoch equals the entry's stamp: nothing anywhere has
  changed, serve immediately;
* slow path — the store moved: the entry is still fresh iff none of its query
  keywords' postings and none of its consulted fragments were touched after
  the stamp.  A fresh entry is re-stamped to the current epoch (the check just
  proved nothing relevant happened in between) so later hits take the fast
  path again; a stale entry is dropped and the caller recomputes.

This is what makes maintenance surgical: an
:class:`~repro.core.incremental.IncrementalMaintainer` run bumps exactly the
keywords and fragments it rewrote, so the queries it could have changed stop
hitting while every untouched hot entry keeps being served from cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Optional, Tuple

from repro.core.fragments import FragmentId
from repro.core.search import SearchResult
from repro.serving.errors import ServiceConfigurationError
from repro.store.base import FragmentStore


class CachedResult:
    """One cached search outcome (mutable stamp for revalidation)."""

    __slots__ = ("results", "keywords", "dependencies", "epoch", "complete", "missing_partitions")

    def __init__(
        self,
        results: Tuple[SearchResult, ...],
        keywords: Tuple[str, ...],
        dependencies: Optional[FrozenSet[FragmentId]],
        epoch: int,
        complete: bool = True,
        missing_partitions: Tuple[int, ...] = (),
    ) -> None:
        self.results = results
        self.keywords = keywords
        #: ``None`` means the dependency set was too large to track — the
        #: entry then goes stale on *any* store mutation.
        self.dependencies = dependencies
        self.epoch = epoch
        #: ``False`` marks a degraded (partial) answer — some cluster
        #: partitions were unreachable.  Partial entries are never stored
        #: (:meth:`ResultCache.put` refuses them); the flag exists so
        #: single-flight followers of a degraded leader see it.
        self.complete = complete
        self.missing_partitions = missing_partitions


@dataclass
class CacheStatistics:
    """Counters of one :class:`ResultCache` (all monotonically increasing)."""

    hits: int = 0
    misses: int = 0
    stale_drops: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale_drops": self.stale_drops,
            "evictions": self.evictions,
        }


class ResultCache:
    """A thread-safe LRU of :class:`CachedResult`, revalidated per lookup.

    ``capacity`` of 0 disables caching entirely (every ``get`` misses and
    ``put`` is a no-op) — useful as the uncached baseline in benchmarks.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ServiceConfigurationError(
                f"cache capacity must be non-negative, got {capacity}"
            )
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, CachedResult]" = OrderedDict()
        self._lock = threading.RLock()
        self.statistics = CacheStatistics()

    # ------------------------------------------------------------------
    def get(self, key: Hashable, store: FragmentStore) -> Optional[CachedResult]:
        """The fresh entry under ``key``, or ``None`` (stale entries drop)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.statistics.misses += 1
                return None
        # Revalidation happens outside the lock: a slow-path check can touch
        # thousands of store epochs (round-trips on remote backends), and
        # holding the lock through it would serialize every concurrent
        # lookup.  Concurrent revalidation of the same entry is benign (both
        # re-stamp to a verified epoch), and a racing put is respected by
        # re-checking identity before the LRU move / stale delete.
        if self._fresh(entry, store):
            with self._lock:
                if self._entries.get(key) is entry:
                    self._entries.move_to_end(key)
                self.statistics.hits += 1
            return entry
        with self._lock:
            if self._entries.get(key) is entry:
                del self._entries[key]
                self.statistics.stale_drops += 1
            self.statistics.misses += 1
        return None

    def put(self, key: Hashable, entry: CachedResult) -> None:
        if self.capacity == 0:
            return
        if not entry.complete:
            # A degraded answer reflects an outage, not the corpus: caching
            # it would keep serving partial results after the cluster heals.
            return
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.statistics.evictions += 1

    def invalidate(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def oldest_stamp(self) -> Optional[int]:
        """The oldest epoch stamp any resident entry carries (None when empty).

        This is the generation boundary the epoch-tombstone sweep prunes up
        to: every clock entry at or below it can no longer flip any resident
        entry's revalidation verdict (see
        :meth:`repro.store.EpochClock.sweep`).
        """
        with self._lock:
            if not self._entries:
                return None
            return min(entry.epoch for entry in self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------
    @classmethod
    def is_fresh(cls, entry: CachedResult, store: FragmentStore) -> bool:
        """Revalidate ``entry`` against ``store`` (re-stamps when fresh).

        Public for callers holding an entry outside the cache — e.g. the
        single-flight path of :class:`~repro.serving.service.SearchService`,
        where a follower receives the leader's entry directly and must apply
        the same freshness rule a cache lookup would.
        """
        return cls._fresh(entry, store)

    @staticmethod
    def _fresh(entry: CachedResult, store: FragmentStore) -> bool:
        current = store.epoch
        if current == entry.epoch:
            return True
        if entry.dependencies is None:
            return False
        stamp = entry.epoch
        for keyword in entry.keywords:
            if store.keyword_epoch(keyword) > stamp:
                return False
        for identifier in entry.dependencies:
            if store.fragment_epoch(identifier) > stamp:
                return False
        # Nothing the entry depends on moved between the stamp and ``current``
        # (epochs only grow), so the entry is also valid *at* ``current``:
        # re-stamp to keep subsequent lookups on the fast path.
        entry.epoch = current
        return True
