"""Typed serving-layer errors.

Everything the query frontend can reject is a :class:`ServingError` subclass,
so callers (the web gateway, benchmark drivers, tests) can tell admission
failures apart from engine bugs and map each to the right response.  The
fault-tolerance errors (:class:`PartitionUnavailableError`,
:class:`PartialResultError`, :class:`ServiceStoppedError`) carry enough
structure — partition ids, tried nodes, the killing error — for a caller to
decide between retrying, degrading and alerting.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


class ServingError(Exception):
    """Base class of every serving-layer failure."""


class InvalidQueryError(ServingError):
    """The query admitted no keywords (empty, or nothing tokenizable)."""


class InvalidParameterError(ServingError):
    """A per-query parameter (``k``, the size threshold ``s``) is invalid."""


class ServiceConfigurationError(ServingError):
    """The service itself was configured with invalid settings."""


class ServiceClosedError(ServingError):
    """The service was asked to search after :meth:`SearchService.close`."""


class ServiceStoppedError(ServingError):
    """The maintenance writer thread died; the queue no longer drains.

    Carries the error that killed the thread as :attr:`cause` so callers
    (and every already-queued ticket, which is failed with that same error)
    can see what actually went wrong instead of hanging on ``flush()``.
    """

    def __init__(self, message: str, cause: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.cause = cause


class PartitionUnavailableError(ServingError):
    """No reachable fresh copy of one partition exists right now.

    Raised by :meth:`~repro.cluster.SearchCluster.select_serving` when the
    primary's circuit is open and no fresh replica is available — the
    router's per-copy failover raises it per partition, and a query that
    cannot be degraded surfaces it wrapped in :class:`PartialResultError`.
    """

    def __init__(
        self,
        partition: int,
        tried: Sequence[str] = (),
        reason: str = "no reachable fresh copy",
    ) -> None:
        nodes = ", ".join(tried) if tried else "none"
        super().__init__(
            f"partition {partition} is unavailable ({reason}; copies tried: {nodes})"
        )
        self.partition = partition
        self.tried: Tuple[str, ...] = tuple(tried)
        self.reason = reason


class PartialResultError(ServingError):
    """A routed query could not cover every partition within its deadline.

    Raised when ``degraded_ok`` is off; under ``degraded_ok=True`` the
    router returns flagged partial results instead (``complete=False`` with
    the same :attr:`missing_partitions` in the search statistics).
    """

    def __init__(self, missing_partitions: Sequence[int], detail: str = "") -> None:
        missing = tuple(sorted(missing_partitions))
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"no reachable copy of partition(s) {list(missing)} within the "
            f"query deadline{suffix}; pass degraded_ok=True to accept partial results"
        )
        self.missing_partitions: Tuple[int, ...] = missing
