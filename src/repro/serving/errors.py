"""Typed serving-layer errors.

Everything the query frontend can reject is a :class:`ServingError` subclass,
so callers (the web gateway, benchmark drivers, tests) can tell admission
failures apart from engine bugs and map each to the right response.
"""

from __future__ import annotations


class ServingError(Exception):
    """Base class of every serving-layer failure."""


class InvalidQueryError(ServingError):
    """The query admitted no keywords (empty, or nothing tokenizable)."""


class InvalidParameterError(ServingError):
    """A per-query parameter (``k``, the size threshold ``s``) is invalid."""


class ServiceConfigurationError(ServingError):
    """The service itself was configured with invalid settings."""


class ServiceClosedError(ServingError):
    """The service was asked to search after :meth:`SearchService.close`."""
