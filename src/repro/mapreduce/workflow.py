"""Multi-job MapReduce workflows.

The stepwise and integrated crawling algorithms are both *workflows* of
several MapReduce jobs (Figures 7 and 8 of the paper).  A :class:`Workflow`
runs a list of job steps in order, wiring each step's output file into later
steps, and aggregates per-step metrics so the benchmarks can show the phase
breakdown (SW-Jn / SW-Grp / SW-Idx vs. INT-Jn / INT-Ext / INT-Cnsd) that
Figure 10 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.mapreduce.errors import JobError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import JobMetrics, MapReduceRuntime


@dataclass
class WorkflowStep:
    """One step of a workflow: a job, its inputs and its output path.

    ``stage`` is a coarse label grouping several jobs into one logical phase
    for reporting (for example the two join jobs of the stepwise algorithm are
    both stage ``"join"``).
    """

    job: MapReduceJob
    inputs: Tuple[str, ...]
    output: str
    stage: str = "default"


@dataclass
class WorkflowMetrics:
    """Aggregated metrics of a completed workflow run."""

    name: str
    job_metrics: List[JobMetrics] = field(default_factory=list)
    stage_of_job: Dict[str, str] = field(default_factory=dict)

    @property
    def simulated_seconds(self) -> float:
        return sum(metrics.simulated_seconds for metrics in self.job_metrics)

    @property
    def wall_clock_seconds(self) -> float:
        return sum(metrics.wall_clock_seconds for metrics in self.job_metrics)

    @property
    def total_shuffle_bytes(self) -> int:
        return sum(metrics.shuffle.bytes_in for metrics in self.job_metrics)

    @property
    def total_map_output_bytes(self) -> int:
        return sum(metrics.map.bytes_out for metrics in self.job_metrics)

    def stage_simulated_seconds(self) -> Dict[str, float]:
        """Simulated seconds per reporting stage (SW-Jn, SW-Grp, ...)."""
        totals: Dict[str, float] = {}
        for metrics in self.job_metrics:
            stage = self.stage_of_job.get(metrics.job_name, "default")
            totals[stage] = totals.get(stage, 0.0) + metrics.simulated_seconds
        return totals

    def stage_shuffle_bytes(self) -> Dict[str, int]:
        """Shuffled bytes per reporting stage."""
        totals: Dict[str, int] = {}
        for metrics in self.job_metrics:
            stage = self.stage_of_job.get(metrics.job_name, "default")
            totals[stage] = totals.get(stage, 0) + metrics.shuffle.bytes_in
        return totals

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "simulated_seconds": self.simulated_seconds,
            "wall_clock_seconds": self.wall_clock_seconds,
            "total_shuffle_bytes": self.total_shuffle_bytes,
            "stages": self.stage_simulated_seconds(),
            "jobs": [metrics.as_dict() for metrics in self.job_metrics],
        }


class Workflow:
    """An ordered list of MapReduce steps executed on one runtime."""

    def __init__(self, name: str, runtime: MapReduceRuntime) -> None:
        self.name = name
        self.runtime = runtime
        self.steps: List[WorkflowStep] = []

    def add_step(
        self,
        job: MapReduceJob,
        inputs: Sequence[str],
        output: str,
        stage: str = "default",
    ) -> WorkflowStep:
        """Append a step.  Inputs must exist by the time the step runs."""
        if not inputs:
            raise JobError(f"workflow step {job.name!r} needs at least one input path")
        step = WorkflowStep(job=job, inputs=tuple(inputs), output=output, stage=stage)
        self.steps.append(step)
        return step

    def run(self) -> WorkflowMetrics:
        """Run every step in order and return aggregated metrics."""
        if not self.steps:
            raise JobError(f"workflow {self.name!r} has no steps")
        metrics = WorkflowMetrics(name=self.name)
        for step in self.steps:
            job_metrics = self.runtime.run(step.job, list(step.inputs), step.output)
            metrics.job_metrics.append(job_metrics)
            metrics.stage_of_job[step.job.name] = step.stage
        return metrics
