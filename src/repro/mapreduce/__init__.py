"""Simulated MapReduce substrate (the paper's Hadoop cluster).

The paper runs its database-crawling and fragment-indexing algorithms as
MapReduce workflows on a 4-node Hadoop cluster.  This package provides a
deterministic, single-process reproduction of that execution environment:

* :mod:`repro.mapreduce.serialization` — byte-size estimation of keys/values
  (the currency of the cost model).
* :mod:`repro.mapreduce.cluster` — nodes with disk/network/CPU characteristics
  and a cluster.
* :mod:`repro.mapreduce.hdfs` — an HDFS-like block store with replication and
  block-to-node placement.
* :mod:`repro.mapreduce.job` — job specifications (mapper, combiner, reducer,
  partitioner, number of reduce tasks).
* :mod:`repro.mapreduce.cost` — a cost model translating per-phase byte and
  record counts into simulated elapsed seconds.
* :mod:`repro.mapreduce.runtime` — the execution engine (map -> shuffle ->
  reduce) that produces output files plus :class:`JobMetrics`.
* :mod:`repro.mapreduce.workflow` — multi-job workflows with aggregated
  metrics, mirroring the job DAGs of Figures 7 and 8.
* :mod:`repro.mapreduce.joins` — repartition-join job builders used by both
  crawling algorithms.

Every map/shuffle/reduce decision (block placement, partitioning, ordering) is
deterministic, so crawling results are reproducible run to run.
"""

from repro.mapreduce.cluster import Cluster, Node
from repro.mapreduce.cost import CostModel
from repro.mapreduce.hdfs import DistributedFileSystem, HdfsFile
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.joins import repartition_join_job
from repro.mapreduce.errors import TaskFailure
from repro.mapreduce.runtime import (
    JobMetrics,
    MapReduceRuntime,
    PhaseMetrics,
    RetryPolicy,
    TaskRunner,
)
from repro.mapreduce.serialization import estimate_size
from repro.mapreduce.workflow import Workflow, WorkflowMetrics

__all__ = [
    "Cluster",
    "CostModel",
    "DistributedFileSystem",
    "HdfsFile",
    "JobMetrics",
    "MapReduceJob",
    "MapReduceRuntime",
    "Node",
    "PhaseMetrics",
    "RetryPolicy",
    "TaskFailure",
    "TaskRunner",
    "Workflow",
    "WorkflowMetrics",
    "estimate_size",
    "repartition_join_job",
]
