"""Exception hierarchy for the simulated MapReduce substrate."""


class MapReduceError(Exception):
    """Base class for all MapReduce simulation errors."""


class ClusterError(MapReduceError):
    """Raised for malformed cluster or node configurations."""


class HdfsError(MapReduceError):
    """Raised for missing files or invalid block-store operations."""


class JobError(MapReduceError):
    """Raised for invalid job specifications or failures during execution."""
