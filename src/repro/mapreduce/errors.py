"""Exception hierarchy for the simulated MapReduce substrate."""


class MapReduceError(Exception):
    """Base class for all MapReduce simulation errors."""


class ClusterError(MapReduceError):
    """Raised for malformed cluster or node configurations."""


class HdfsError(MapReduceError):
    """Raised for missing files or invalid block-store operations."""


class JobError(MapReduceError):
    """Raised for invalid job specifications or failures during execution."""


class TaskFailure(MapReduceError):
    """A transient worker failure while executing one task attempt.

    This is the retryable class: a :class:`~repro.mapreduce.runtime.TaskRunner`
    re-runs the task on ``TaskFailure`` (a crashed or killed worker, an
    injected fault) up to its policy's attempt budget, while any other
    exception — a bug in the task function — propagates immediately.
    """
