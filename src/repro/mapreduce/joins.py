"""MapReduce join builders.

Both crawling algorithms join operand relations inside the cluster.  The
standard technique (and the one the paper's Figures 7 and 8 imply, keying map
output on the join attribute) is the reduce-side *repartition join*: mappers
tag each record with the relation it came from and emit it keyed by the join
key; reducers receive all records sharing a key and emit their combinations.

The builders below produce :class:`~repro.mapreduce.job.MapReduceJob`
instances that operate on files whose record values are ``{attribute: value}``
dictionaries (the format :meth:`DistributedFileSystem.write_relation`
produces and every crawler job preserves).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.mapreduce.job import KeyValue, MapReduceJob

RecordDict = Dict[str, Any]


def tag_mapper(tag: str, key_attributes: Sequence[str]):
    """A mapper factory that keys records by ``key_attributes`` and tags them."""

    attributes = tuple(key_attributes)
    null_counter = [0]

    def mapper(_key: Any, record: RecordDict) -> Iterator[KeyValue]:
        join_key = tuple(record.get(attribute) for attribute in attributes)
        if any(component is None for component in join_key):
            # NULL join keys never match any other record (SQL semantics), so
            # give each such record its own reduce group; a left-outer reducer
            # will still emit the lone left record, an inner join drops it.
            null_counter[0] += 1
            yield ("__null__", tag, null_counter[0]), (tag, record)
            return
        yield join_key, (tag, record)

    return mapper


def join_reducer(
    left_tag: str,
    right_tag: str,
    kind: str = "inner",
    drop_right_attributes: Sequence[str] = (),
):
    """A reducer factory that joins the two tagged record streams.

    ``kind`` is ``"inner"`` or ``"left"``.  ``drop_right_attributes`` lists the
    right-hand attributes to drop from the merged record (normally the join
    keys, so they appear only once — as the relational operators do).
    """

    dropped = set(drop_right_attributes)

    def reducer(key: Any, values: List[Tuple[str, RecordDict]]) -> Iterator[KeyValue]:
        left_records = [record for tag, record in values if tag == left_tag]
        right_records = [record for tag, record in values if tag == right_tag]
        if right_records:
            for left_record in left_records:
                for right_record in right_records:
                    merged = dict(left_record)
                    for attribute, value in right_record.items():
                        if attribute in dropped:
                            continue
                        if attribute in merged:
                            merged[f"{right_tag}.{attribute}"] = value
                        else:
                            merged[attribute] = value
                    yield key, merged
        elif kind == "left":
            for left_record in left_records:
                yield key, dict(left_record)

    return reducer


def repartition_join_job(
    name: str,
    left_tag: str,
    right_tag: str,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    kind: str = "inner",
    num_reduce_tasks: int = 4,
) -> Tuple[MapReduceJob, MapReduceJob, MapReduceJob]:
    """Jobs for a repartition join of two already-loaded relation files.

    Returns ``(left_prepare, right_prepare, join)`` where the two prepare jobs
    are map-only retagging/rekeying passes (one per input relation) and the
    third is the actual shuffle join.  The crawler composes them in a
    :class:`~repro.mapreduce.workflow.Workflow`; keeping the prepare passes as
    separate map-only jobs mirrors how multi-input joins are staged in Hadoop
    and lets the cost model account their I/O separately.
    """

    left_prepare = MapReduceJob(
        name=f"{name}-prepare-{left_tag}",
        mapper=tag_mapper(left_tag, left_keys),
        reducer=None,
    )
    right_prepare = MapReduceJob(
        name=f"{name}-prepare-{right_tag}",
        mapper=tag_mapper(right_tag, right_keys),
        reducer=None,
    )

    def forward_mapper(key: Any, value: Any) -> Iterator[KeyValue]:
        yield key, value

    join = MapReduceJob(
        name=f"{name}-join",
        mapper=forward_mapper,
        reducer=join_reducer(left_tag, right_tag, kind=kind, drop_right_attributes=right_keys),
        num_reduce_tasks=num_reduce_tasks,
    )
    return left_prepare, right_prepare, join


def single_pass_join_job(
    name: str,
    left_tag: str,
    right_tag: str,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    kind: str = "inner",
    num_reduce_tasks: int = 4,
) -> MapReduceJob:
    """A one-job repartition join for inputs that are still raw relation files.

    The mapper inspects each record dictionary to decide which relation it
    belongs to (records of the left input carry a ``"__tag__"`` marker added by
    the caller); used by tests and by the integrated crawler's compact join.
    """

    left_mapper = tag_mapper(left_tag, left_keys)
    right_mapper = tag_mapper(right_tag, right_keys)

    def mapper(key: Any, record: RecordDict) -> Iterator[KeyValue]:
        tag = record.get("__tag__")
        payload = {k: v for k, v in record.items() if k != "__tag__"}
        if tag == left_tag:
            yield from left_mapper(key, payload)
        elif tag == right_tag:
            yield from right_mapper(key, payload)
        else:
            raise ValueError(f"record without a recognised __tag__: {record!r}")

    return MapReduceJob(
        name=name,
        mapper=mapper,
        reducer=join_reducer(left_tag, right_tag, kind=kind, drop_right_attributes=right_keys),
        num_reduce_tasks=num_reduce_tasks,
    )
