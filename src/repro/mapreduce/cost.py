"""Cost model: per-phase byte/record counts -> simulated elapsed seconds.

The paper's Figure 10 measures wall-clock elapsed time of MapReduce workflows
on a real 4-node cluster and observes that (i) time grows steeply with dataset
size, (ii) most jobs are I/O bound so adding reduce nodes changes little, and
(iii) the integrated algorithm wins because it moves fewer bytes through the
join pipeline.  The cost model below reproduces exactly those mechanics:

* map time  = read input from local disk + per-record CPU + write spill,
  divided over the map slots of the nodes holding the blocks;
* shuffle time = all-to-all transfer of the partitioned map output over the
  shared network (minus the fraction that stays node-local);
* reduce time = merge/read + per-record CPU + write output to HDFS,
  divided over the configured reduce slots;
* a fixed per-job and per-task scheduling overhead (Hadoop job/task startup).

Absolute constants are calibrated so that the laptop-scale datasets land in a
seconds-to-minutes range; the claims we reproduce are the *relative* shapes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the simulated-time model.

    ``data_time_scale`` multiplies every *data-dependent* phase duration (map,
    shuffle, reduce) but not the fixed per-job startup.  The reproduction's
    datasets are roughly three orders of magnitude smaller than the paper's
    multi-GB TPC-H dumps; scaling the data-dependent time back up by a
    calibration factor puts the simulated elapsed times in the paper's regime
    (minutes to hours), where per-job startup overhead is negligible — exactly
    the regime Figure 10 was measured in.  The default of 1.0 reports
    uncalibrated times.
    """

    job_startup_s: float = 3.0
    task_startup_s: float = 0.1
    spill_factor: float = 2.0           # map output is written and re-read once
    reduce_merge_factor: float = 2.0    # reduce input is merged from sorted runs
    local_shuffle_fraction: float = None  # type: ignore[assignment]
    data_time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.local_shuffle_fraction is not None and not 0.0 <= self.local_shuffle_fraction <= 1.0:
            raise ValueError("local_shuffle_fraction must be within [0, 1]")
        if self.data_time_scale <= 0:
            raise ValueError("data_time_scale must be positive")

    # ------------------------------------------------------------------
    def map_phase_seconds(
        self,
        input_bytes: int,
        input_records: int,
        output_bytes: int,
        num_map_tasks: int,
        disk_bandwidth_mb_s: float,
        cpu_records_per_s: float,
        parallel_map_slots: int,
    ) -> float:
        """Simulated duration of the map phase."""
        read_s = _bytes_to_seconds(input_bytes, disk_bandwidth_mb_s)
        cpu_s = input_records / cpu_records_per_s
        spill_s = _bytes_to_seconds(output_bytes * self.spill_factor, disk_bandwidth_mb_s)
        total_work = (read_s + cpu_s + spill_s) * self.data_time_scale
        total_work += num_map_tasks * self.task_startup_s
        return total_work / max(parallel_map_slots, 1)

    def shuffle_phase_seconds(
        self,
        shuffle_bytes: int,
        network_bandwidth_mb_s: float,
        num_nodes: int,
    ) -> float:
        """Simulated duration of the shuffle (all-to-all copy) phase."""
        local_fraction = self.local_shuffle_fraction
        if local_fraction is None:
            local_fraction = 1.0 / max(num_nodes, 1)
        remote_bytes = shuffle_bytes * (1.0 - local_fraction)
        seconds = _bytes_to_seconds(remote_bytes, network_bandwidth_mb_s * max(num_nodes, 1))
        return seconds * self.data_time_scale

    def reduce_phase_seconds(
        self,
        shuffle_bytes: int,
        reduce_input_records: int,
        output_bytes: int,
        num_reduce_tasks: int,
        disk_bandwidth_mb_s: float,
        cpu_records_per_s: float,
        parallel_reduce_slots: int,
    ) -> float:
        """Simulated duration of the reduce phase."""
        merge_s = _bytes_to_seconds(shuffle_bytes * self.reduce_merge_factor, disk_bandwidth_mb_s)
        cpu_s = reduce_input_records / cpu_records_per_s
        write_s = _bytes_to_seconds(output_bytes, disk_bandwidth_mb_s)
        total_work = (merge_s + cpu_s + write_s) * self.data_time_scale
        total_work += num_reduce_tasks * self.task_startup_s
        return total_work / max(parallel_reduce_slots, 1)

    def job_overhead_seconds(self) -> float:
        """Fixed per-job scheduling/startup time."""
        return self.job_startup_s


def _bytes_to_seconds(num_bytes: float, bandwidth_mb_s: float) -> float:
    if bandwidth_mb_s <= 0:
        return 0.0
    return num_bytes / (bandwidth_mb_s * 1024.0 * 1024.0)
