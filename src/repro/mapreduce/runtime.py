"""The MapReduce execution engine.

Runs a :class:`~repro.mapreduce.job.MapReduceJob` against an HDFS input file:
one map task per input block (executed on the node holding the block's primary
replica), optional combining, deterministic hash partitioning into reduce
tasks, key-sorted reduce, and an output file written back to HDFS.  While it
executes, the runtime accounts bytes and records per phase and asks the
:class:`~repro.mapreduce.cost.CostModel` for the simulated elapsed time — the
quantity the Figure 10 reproduction reports alongside real wall-clock time.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, TypeVar

from repro.mapreduce.cluster import Cluster
from repro.mapreduce.cost import CostModel
from repro.mapreduce.errors import JobError, TaskFailure
from repro.mapreduce.hdfs import DistributedFileSystem, HdfsFile
from repro.mapreduce.job import KeyValue, MapReduceJob
from repro.mapreduce.serialization import estimate_pair_size

T = TypeVar("T")

#: ``(phase, task_index, attempt)`` — raise :class:`TaskFailure` to fault the
#: attempt.  ``attempt`` starts at 1.  This is the chaos vocabulary shared
#: with the serving side: :meth:`repro.faults.FaultPlane.failure_injector`
#: adapts a seeded serving fault plane to this contract, so one rule set
#: can fault a distributed build and the cluster serving its output.
FailureInjector = Callable[[str, int, int], None]


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`TaskRunner` responds to transient task failures.

    ``max_attempts`` bounds the total tries per task (first run included).
    ``failure_injector`` is the test seam the fault-injection suite uses: it
    is invoked at the start of every attempt — and again at any named
    checkpoint the task body declares via :meth:`TaskRunner.checkpoint` —
    and faults the attempt by raising :class:`TaskFailure`.
    """

    max_attempts: int = 3
    failure_injector: Optional[FailureInjector] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise JobError("RetryPolicy.max_attempts must be >= 1")


class TaskRunner:
    """Runs task attempts under a :class:`RetryPolicy` (the failing-task wrapper).

    Shared by the MapReduce runtime's map/reduce phases and the build
    pipeline's stages: the task callable must be free of external side
    effects until it returns (or publish its output atomically), so that a
    faulted attempt can simply be re-run.  Only :class:`TaskFailure` is
    retried; any other exception is a task bug and propagates.  Retry counts
    are tallied per phase in :attr:`retries`.
    """

    def __init__(self, policy: Optional[RetryPolicy] = None) -> None:
        self.policy = policy or RetryPolicy()
        self.retries: Dict[str, int] = {}
        self._lock = threading.Lock()

    def checkpoint(self, phase: str, task_index: int, attempt: int) -> None:
        """Give the injector a mid-task fault point (no-op without one)."""
        if self.policy.failure_injector is not None:
            self.policy.failure_injector(phase, task_index, attempt)

    def run(self, phase: str, task_index: int, task: Callable[[int], T]) -> T:
        """Run ``task(attempt)`` until it succeeds or attempts are exhausted."""
        last_failure: Optional[TaskFailure] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            try:
                self.checkpoint(phase, task_index, attempt)
                return task(attempt)
            except TaskFailure as failure:
                last_failure = failure
                with self._lock:
                    self.retries[phase] = self.retries.get(phase, 0) + 1
        raise JobError(
            f"{phase} task {task_index} failed {self.policy.max_attempts} attempts"
        ) from last_failure

    def retry_count(self, phase: Optional[str] = None) -> int:
        with self._lock:
            if phase is not None:
                return self.retries.get(phase, 0)
            return sum(self.retries.values())


@dataclass
class PhaseMetrics:
    """Byte/record counters and simulated time of one phase of one job."""

    name: str
    records_in: int = 0
    bytes_in: int = 0
    records_out: int = 0
    bytes_out: int = 0
    tasks: int = 0
    retries: int = 0
    simulated_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "records_in": self.records_in,
            "bytes_in": self.bytes_in,
            "records_out": self.records_out,
            "bytes_out": self.bytes_out,
            "tasks": self.tasks,
            "retries": self.retries,
            "simulated_seconds": self.simulated_seconds,
        }


@dataclass
class JobMetrics:
    """Metrics of one complete MapReduce job."""

    job_name: str
    map: PhaseMetrics = field(default_factory=lambda: PhaseMetrics("map"))
    shuffle: PhaseMetrics = field(default_factory=lambda: PhaseMetrics("shuffle"))
    reduce: PhaseMetrics = field(default_factory=lambda: PhaseMetrics("reduce"))
    simulated_seconds: float = 0.0
    wall_clock_seconds: float = 0.0
    output_path: Optional[str] = None
    output_records: int = 0
    output_bytes: int = 0

    @property
    def shuffle_bytes(self) -> int:
        return self.shuffle.bytes_in

    def as_dict(self) -> Dict[str, Any]:
        return {
            "job_name": self.job_name,
            "map": self.map.as_dict(),
            "shuffle": self.shuffle.as_dict(),
            "reduce": self.reduce.as_dict(),
            "simulated_seconds": self.simulated_seconds,
            "wall_clock_seconds": self.wall_clock_seconds,
            "output_path": self.output_path,
            "output_records": self.output_records,
            "output_bytes": self.output_bytes,
        }


class MapReduceRuntime:
    """Executes jobs on a simulated cluster backed by a block store."""

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        filesystem: Optional[DistributedFileSystem] = None,
        cost_model: Optional[CostModel] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.cluster = cluster or Cluster.default()
        self.filesystem = filesystem or DistributedFileSystem(self.cluster)
        if self.filesystem.cluster is not self.cluster:
            raise JobError("filesystem and runtime must share the same cluster")
        self.cost_model = cost_model or CostModel()
        self.task_runner = TaskRunner(retry_policy)
        self.history: List[JobMetrics] = []

    # ------------------------------------------------------------------
    def run(
        self,
        job: MapReduceJob,
        input_paths: Any,
        output_path: str,
        overwrite: bool = True,
    ) -> JobMetrics:
        """Run ``job`` over one or more input files and write ``output_path``.

        ``input_paths`` is a path, a list of paths, or a list of
        ``(path, mapper)`` pairs — the latter mirrors Hadoop's
        ``MultipleInputs`` and lets a single job (e.g. a repartition join)
        apply a different map function to each input file; plain paths fall
        back to ``job.mapper``.

        Returns the :class:`JobMetrics` of the execution; the output file is
        available through the runtime's filesystem afterwards.
        """
        if isinstance(input_paths, str):
            input_paths = [input_paths]
        input_files = []
        for entry in input_paths:
            if isinstance(entry, tuple):
                path, mapper = entry
            else:
                path, mapper = entry, job.mapper
            input_files.append((self.filesystem.open(path), mapper))
        metrics = JobMetrics(job_name=job.name)
        started = time.perf_counter()

        map_output_per_partition = self._run_map_phase(job, input_files, metrics)
        if job.is_map_only:
            output_records: List[KeyValue] = []
            for partition in sorted(map_output_per_partition):
                output_records.extend(map_output_per_partition[partition])
        else:
            self._account_shuffle(job, map_output_per_partition, metrics)
            output_records = self._run_reduce_phase(job, map_output_per_partition, metrics)

        output_file = self.filesystem.write(output_path, output_records, overwrite=overwrite)
        metrics.output_path = output_path
        metrics.output_records = output_file.num_records
        metrics.output_bytes = output_file.size_bytes
        metrics.wall_clock_seconds = time.perf_counter() - started
        metrics.simulated_seconds = (
            self.cost_model.job_overhead_seconds()
            + metrics.map.simulated_seconds
            + metrics.shuffle.simulated_seconds
            + metrics.reduce.simulated_seconds
        )
        self.history.append(metrics)
        return metrics

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def _run_map_phase(
        self,
        job: MapReduceJob,
        input_files: List[Tuple[HdfsFile, Any]],
        metrics: JobMetrics,
    ) -> Dict[int, List[KeyValue]]:
        partitions: Dict[int, List[KeyValue]] = defaultdict(list)
        num_partitions = job.num_reduce_tasks if not job.is_map_only else 1
        node_input_bytes: Dict[str, int] = defaultdict(int)
        node_input_records: Dict[str, int] = defaultdict(int)
        node_output_bytes: Dict[str, int] = defaultdict(int)
        num_map_tasks = 0
        retries_before = self.task_runner.retry_count("map")

        for input_file, mapper in input_files:
            for block in input_file.blocks:
                task_index = num_map_tasks
                num_map_tasks += 1
                node_id = block.primary_node
                node_input_bytes[node_id] += block.size_bytes
                node_input_records[node_id] += len(block.records)

                # The map task is the pure computation over one block; it has
                # no side effects, so a faulted attempt just re-runs.  The
                # partition/accounting pass below happens once, on the output
                # of the successful attempt.
                def run_block(_attempt: int, mapper=mapper, block=block) -> List[KeyValue]:
                    task_output: List[KeyValue] = []
                    for key, value in block.records:
                        for out_key, out_value in mapper(key, value):
                            task_output.append((out_key, out_value))
                    if job.combiner is not None and not job.is_map_only:
                        task_output = _apply_combiner(job, task_output)
                    return task_output

                task_output = self.task_runner.run("map", task_index, run_block)
                for out_key, out_value in task_output:
                    pair_bytes = estimate_pair_size(out_key, out_value)
                    node_output_bytes[node_id] += pair_bytes
                    metrics.map.records_out += 1
                    metrics.map.bytes_out += pair_bytes
                    partition = job.partitioner(out_key, num_partitions) if not job.is_map_only else 0
                    partitions[partition].append((out_key, out_value))

        metrics.map.tasks = num_map_tasks
        metrics.map.retries = self.task_runner.retry_count("map") - retries_before
        metrics.map.records_in = sum(node_input_records.values())
        metrics.map.bytes_in = sum(node_input_bytes.values())
        # Charge per-record CPU for records consumed and records emitted; a
        # map task that fans one input record out into many intermediate pairs
        # pays for each of them.
        node_cpu_records: Dict[str, int] = defaultdict(int)
        total_in = max(1, metrics.map.records_in)
        for node_id, records in node_input_records.items():
            share = records / total_in
            node_cpu_records[node_id] = records + int(metrics.map.records_out * share)
        metrics.map.simulated_seconds = self._simulate_map_time(
            node_input_bytes, node_cpu_records, node_output_bytes, num_map_tasks
        )
        return partitions

    def _simulate_map_time(
        self,
        node_input_bytes: Dict[str, int],
        node_input_records: Dict[str, int],
        node_output_bytes: Dict[str, int],
        num_map_tasks: int,
    ) -> float:
        if num_map_tasks == 0:
            return 0.0
        slowest = 0.0
        involved_nodes = set(node_input_bytes) | set(node_output_bytes)
        for node_id in involved_nodes:
            node = self.cluster.node(node_id)
            node_tasks = max(1, round(num_map_tasks * node_input_bytes.get(node_id, 0) /
                                      max(1, sum(node_input_bytes.values()))))
            seconds = self.cost_model.map_phase_seconds(
                input_bytes=node_input_bytes.get(node_id, 0),
                input_records=node_input_records.get(node_id, 0),
                output_bytes=node_output_bytes.get(node_id, 0),
                num_map_tasks=node_tasks,
                disk_bandwidth_mb_s=node.disk_bandwidth_mb_s,
                cpu_records_per_s=node.cpu_records_per_s,
                parallel_map_slots=node.map_slots,
            )
            slowest = max(slowest, seconds)
        return slowest

    def _account_shuffle(
        self,
        job: MapReduceJob,
        partitions: Dict[int, List[KeyValue]],
        metrics: JobMetrics,
    ) -> None:
        shuffle_bytes = 0
        shuffle_records = 0
        for records in partitions.values():
            for key, value in records:
                shuffle_bytes += estimate_pair_size(key, value)
                shuffle_records += 1
        metrics.shuffle.records_in = shuffle_records
        metrics.shuffle.bytes_in = shuffle_bytes
        metrics.shuffle.records_out = shuffle_records
        metrics.shuffle.bytes_out = shuffle_bytes
        metrics.shuffle.tasks = len(partitions)
        metrics.shuffle.simulated_seconds = self.cost_model.shuffle_phase_seconds(
            shuffle_bytes=shuffle_bytes,
            network_bandwidth_mb_s=self.cluster.network_bandwidth_mb_s,
            num_nodes=len(self.cluster),
        )

    def _run_reduce_phase(
        self,
        job: MapReduceJob,
        partitions: Dict[int, List[KeyValue]],
        metrics: JobMetrics,
    ) -> List[KeyValue]:
        output: List[KeyValue] = []
        reduce_input_records = 0
        reduce_output_bytes = 0
        active_partitions = max(len([p for p in partitions.values() if p]), 1)
        retries_before = self.task_runner.retry_count("reduce")

        for partition_index in range(job.num_reduce_tasks):
            records = partitions.get(partition_index, [])
            if not records:
                continue
            reduce_input_records += len(records)

            # Like the map tasks: the reduce computation is pure, so the
            # retry wrapper can re-run a faulted attempt; accounting happens
            # once on the successful output.
            def run_partition(_attempt: int, records=records) -> List[KeyValue]:
                grouped: Dict[Any, List[Any]] = defaultdict(list)
                key_order: List[Any] = []
                for key, value in records:
                    if key not in grouped:
                        key_order.append(key)
                    grouped[key].append(value)
                keys = sorted(grouped, key=_sort_token) if job.sort_keys else key_order
                task_output: List[KeyValue] = []
                for key in keys:
                    task_output.extend(job.reducer(key, grouped[key]))
                return task_output

            for out_key, out_value in self.task_runner.run(
                "reduce", partition_index, run_partition
            ):
                output.append((out_key, out_value))
                pair_bytes = estimate_pair_size(out_key, out_value)
                reduce_output_bytes += pair_bytes
                metrics.reduce.records_out += 1
                metrics.reduce.bytes_out += pair_bytes

        metrics.reduce.tasks = min(job.num_reduce_tasks, active_partitions)
        metrics.reduce.retries = self.task_runner.retry_count("reduce") - retries_before
        metrics.reduce.records_in = reduce_input_records
        metrics.reduce.bytes_in = metrics.shuffle.bytes_in
        parallel_reduce_slots = min(self.cluster.total_reduce_slots, metrics.reduce.tasks)
        metrics.reduce.simulated_seconds = self.cost_model.reduce_phase_seconds(
            shuffle_bytes=metrics.shuffle.bytes_in,
            reduce_input_records=reduce_input_records + metrics.reduce.records_out,
            output_bytes=reduce_output_bytes,
            num_reduce_tasks=metrics.reduce.tasks,
            disk_bandwidth_mb_s=min(node.disk_bandwidth_mb_s for node in self.cluster),
            cpu_records_per_s=min(node.cpu_records_per_s for node in self.cluster),
            parallel_reduce_slots=max(parallel_reduce_slots, 1),
        )
        return output


def _apply_combiner(job: MapReduceJob, task_output: List[KeyValue]) -> List[KeyValue]:
    grouped: Dict[Any, List[Any]] = defaultdict(list)
    order: List[Any] = []
    for key, value in task_output:
        if key not in grouped:
            order.append(key)
        grouped[key].append(value)
    combined: List[KeyValue] = []
    for key in order:
        combined.extend(job.combiner(key, grouped[key]))
    return combined


def _sort_token(key: Any) -> Tuple:
    """A total ordering over heterogeneous reduce keys."""
    if isinstance(key, tuple):
        return tuple(_sort_token(element) for element in key)
    if key is None:
        return (0, "")
    if isinstance(key, bool):
        return (1, str(int(key)))
    if isinstance(key, (int, float)):
        return (1, float(key))
    return (2, str(key))
