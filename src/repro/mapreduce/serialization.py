"""Approximate serialized sizes of keys and values.

The cost model charges disk and network time per byte moved, so every key and
value flowing through the simulated runtime needs a size.  The estimate is a
simple recursive model: strings cost their length, numbers a fixed width,
containers the sum of their elements plus a small framing overhead — close
enough to Hadoop's Writable encodings for the *relative* comparisons the
paper's Figure 10 makes (stepwise vs. integrated data volume).
"""

from __future__ import annotations

from typing import Any

# Numbers are costed like Hadoop's variable-length (zig-zag) encodings rather
# than a fixed 8-byte slot: typical keys/quantities/prices fit in ~4 bytes
# plus a tag byte.
_NUMBER_BYTES = 5
_NULL_BYTES = 1
_CONTAINER_OVERHEAD = 2


def estimate_size(value: Any) -> int:
    """Approximate number of bytes needed to serialize ``value``."""
    if value is None:
        return _NULL_BYTES
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return _NUMBER_BYTES
    if isinstance(value, str):
        return len(value) + 1
    if isinstance(value, bytes):
        return len(value) + 1
    if isinstance(value, dict):
        total = _CONTAINER_OVERHEAD
        for key, item in value.items():
            total += estimate_size(key) + estimate_size(item)
        return total
    if isinstance(value, (list, tuple, set, frozenset)):
        total = _CONTAINER_OVERHEAD
        for item in value:
            total += estimate_size(item)
        return total
    if hasattr(value, "values") and hasattr(value, "schema"):
        # repro.db.relation.Record
        return estimate_size(tuple(value.values))
    return len(repr(value)) + 1


def estimate_pair_size(key: Any, value: Any) -> int:
    """Size of one ``(key, value)`` pair."""
    return estimate_size(key) + estimate_size(value)
