"""An HDFS-like block store.

Files are ordered sequences of ``(key, value)`` records split into fixed-size
blocks.  Each block has a primary replica placed round-robin across the
cluster's nodes (plus optional additional replicas), because the number of
blocks determines the number of map tasks and their placement determines which
node pays the read cost — the paper explicitly notes that "Hadoop assigns
nodes for map tasks according to the number of file blocks".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.mapreduce.cluster import Cluster
from repro.mapreduce.errors import HdfsError
from repro.mapreduce.serialization import estimate_pair_size

KeyValue = Tuple[Any, Any]

DEFAULT_BLOCK_SIZE_BYTES = 64 * 1024  # a laptop-scale stand-in for HDFS's 64 MB


@dataclass
class Block:
    """One block of a file: a slice of records plus placement metadata."""

    index: int
    records: List[KeyValue]
    size_bytes: int
    primary_node: str
    replica_nodes: Tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.records)


class HdfsFile:
    """An immutable, block-structured file of key/value records."""

    def __init__(self, path: str, blocks: Sequence[Block]) -> None:
        self.path = path
        self.blocks: Tuple[Block, ...] = tuple(blocks)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def num_records(self) -> int:
        return sum(len(block) for block in self.blocks)

    @property
    def size_bytes(self) -> int:
        return sum(block.size_bytes for block in self.blocks)

    def records(self) -> Iterator[KeyValue]:
        """Iterate every record of the file in order."""
        for block in self.blocks:
            yield from block.records

    def __len__(self) -> int:
        return self.num_records

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HdfsFile({self.path!r}, blocks={self.num_blocks}, records={self.num_records})"


class DistributedFileSystem:
    """The namespace of :class:`HdfsFile` objects for one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        block_size_bytes: int = DEFAULT_BLOCK_SIZE_BYTES,
        replication: int = 1,
    ) -> None:
        if block_size_bytes <= 0:
            raise HdfsError("block size must be positive")
        if replication < 1:
            raise HdfsError("replication factor must be at least 1")
        self.cluster = cluster
        self.block_size_bytes = block_size_bytes
        self.replication = min(replication, len(cluster))
        self._files: Dict[str, HdfsFile] = {}

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def open(self, path: str) -> HdfsFile:
        try:
            return self._files[path]
        except KeyError:
            raise HdfsError(f"no such file: {path!r}") from None

    def delete(self, path: str) -> None:
        self._files.pop(path, None)

    def list_files(self) -> Tuple[str, ...]:
        return tuple(sorted(self._files))

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write(self, path: str, records: Iterable[KeyValue], overwrite: bool = False) -> HdfsFile:
        """Write ``records`` to ``path``, splitting them into placed blocks."""
        if self.exists(path) and not overwrite:
            raise HdfsError(f"file already exists: {path!r}")
        blocks: List[Block] = []
        current: List[KeyValue] = []
        current_bytes = 0
        block_index = 0

        def flush() -> None:
            nonlocal current, current_bytes, block_index
            if not current:
                return
            primary = self.cluster.node_for_block(block_index)
            replicas = self._replica_nodes(block_index)
            blocks.append(
                Block(
                    index=block_index,
                    records=current,
                    size_bytes=current_bytes,
                    primary_node=primary.node_id,
                    replica_nodes=replicas,
                )
            )
            block_index += 1
            current = []
            current_bytes = 0

        for key, value in records:
            pair_size = estimate_pair_size(key, value)
            if current and current_bytes + pair_size > self.block_size_bytes:
                flush()
            current.append((key, value))
            current_bytes += pair_size
        flush()

        if not blocks:
            primary = self.cluster.node_for_block(0)
            blocks.append(
                Block(index=0, records=[], size_bytes=0, primary_node=primary.node_id,
                      replica_nodes=self._replica_nodes(0))
            )
        hdfs_file = HdfsFile(path, blocks)
        self._files[path] = hdfs_file
        return hdfs_file

    def write_relation(self, path: str, relation, key_attribute: Optional[str] = None,
                       overwrite: bool = False) -> HdfsFile:
        """Export a :class:`repro.db.relation.Relation` as a file of records.

        Each record becomes ``(key, {attribute: value, ...})`` where the key is
        the value of ``key_attribute`` (or the record position when omitted) —
        exactly how the crawler ships operand relations into the cluster.
        """
        def pairs() -> Iterator[KeyValue]:
            for position, record in enumerate(relation):
                key = record[key_attribute] if key_attribute else position
                yield key, record.as_dict()

        return self.write(path, pairs(), overwrite=overwrite)

    def _replica_nodes(self, block_index: int) -> Tuple[str, ...]:
        if self.replication <= 1:
            return ()
        nodes = self.cluster.nodes
        extras = []
        for offset in range(1, self.replication):
            extras.append(nodes[(block_index + offset) % len(nodes)].node_id)
        return tuple(extras)

    # ------------------------------------------------------------------
    # convenience reads
    # ------------------------------------------------------------------
    def read_all(self, path: str) -> List[KeyValue]:
        """All records of ``path`` as a list."""
        return list(self.open(path).records())

    def read_values(self, path: str) -> List[Any]:
        """Only the values of ``path``'s records."""
        return [value for _key, value in self.open(path).records()]

    def total_bytes(self) -> int:
        """Total stored bytes across all files (primary replicas only)."""
        return sum(hdfs_file.size_bytes for hdfs_file in self._files.values())
