"""Simulated cluster nodes.

The paper's testbed is four Intel Xeon 2.8 GHz machines with 4 GB RAM on a
gigabit Ethernet.  A :class:`Node` carries the per-machine characteristics the
cost model needs (sequential disk bandwidth, record-processing rate) and a
:class:`Cluster` groups nodes behind a shared network bandwidth, matching that
setup by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from repro.mapreduce.errors import ClusterError


@dataclass(frozen=True)
class Node:
    """One worker machine of the simulated cluster.

    Parameters
    ----------
    node_id:
        Stable identifier (``node0`` ... ).
    disk_bandwidth_mb_s:
        Sequential read/write bandwidth of the local disk in MB/s.
    cpu_records_per_s:
        How many input records a map or reduce function application can chew
        through per second (a coarse stand-in for per-record CPU cost).
    map_slots / reduce_slots:
        How many map / reduce tasks the node runs concurrently — Hadoop's
        classic slot model.
    """

    node_id: str
    disk_bandwidth_mb_s: float = 80.0
    cpu_records_per_s: float = 1_000_000.0
    map_slots: int = 2
    reduce_slots: int = 2

    def __post_init__(self) -> None:
        if self.disk_bandwidth_mb_s <= 0 or self.cpu_records_per_s <= 0:
            raise ClusterError(f"node {self.node_id!r} has non-positive hardware parameters")
        if self.map_slots < 1 or self.reduce_slots < 1:
            raise ClusterError(f"node {self.node_id!r} must have at least one slot of each kind")


class Cluster:
    """A named set of nodes sharing a network.

    ``network_bandwidth_mb_s`` is the per-link bandwidth (gigabit Ethernet
    ~ 110 MB/s effective by default).  The shuffle cost model charges the
    all-to-all transfer against this figure.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        network_bandwidth_mb_s: float = 110.0,
        name: str = "cluster",
    ) -> None:
        if not nodes:
            raise ClusterError("a cluster needs at least one node")
        identifiers = [node.node_id for node in nodes]
        if len(set(identifiers)) != len(identifiers):
            raise ClusterError("node identifiers must be unique")
        if network_bandwidth_mb_s <= 0:
            raise ClusterError("network bandwidth must be positive")
        self.name = name
        self.nodes: List[Node] = list(nodes)
        self.network_bandwidth_mb_s = network_bandwidth_mb_s
        self._by_id: Dict[str, Node] = {node.node_id: node for node in self.nodes}

    # ------------------------------------------------------------------
    @classmethod
    def default(cls, num_nodes: int = 4, name: str = "paper-cluster") -> "Cluster":
        """A cluster shaped like the paper's testbed (4 Xeon nodes, GbE)."""
        nodes = [Node(node_id=f"node{i}") for i in range(num_nodes)]
        return cls(nodes, network_bandwidth_mb_s=110.0, name=name)

    @classmethod
    def single_node(cls, name: str = "local") -> "Cluster":
        """A one-node cluster (used by the fragment-graph experiments, which
        the paper runs on a single computer)."""
        return cls([Node(node_id="node0")], name=name)

    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        try:
            return self._by_id[node_id]
        except KeyError:
            raise ClusterError(f"cluster {self.name!r} has no node {node_id!r}") from None

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    @property
    def total_map_slots(self) -> int:
        return sum(node.map_slots for node in self.nodes)

    @property
    def total_reduce_slots(self) -> int:
        return sum(node.reduce_slots for node in self.nodes)

    def node_for_block(self, block_index: int) -> Node:
        """Deterministic round-robin placement of block replicas' primary copy."""
        return self.nodes[block_index % len(self.nodes)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cluster({self.name!r}, nodes={len(self.nodes)})"
