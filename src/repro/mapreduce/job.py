"""MapReduce job specifications.

A job is described by a mapper, an optional combiner, a reducer, an optional
partitioner and the number of reduce tasks — the same vocabulary as Hadoop's
classic (pre-YARN) API the paper's implementation used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional, Tuple

from repro.mapreduce.errors import JobError

KeyValue = Tuple[Any, Any]
Mapper = Callable[[Any, Any], Iterable[KeyValue]]
Reducer = Callable[[Any, list], Iterable[KeyValue]]
Combiner = Callable[[Any, list], Iterable[KeyValue]]
Partitioner = Callable[[Any, int], int]


def identity_mapper(key: Any, value: Any) -> Iterator[KeyValue]:
    """A mapper that forwards its input pair unchanged."""
    yield key, value


def identity_reducer(key: Any, values: list) -> Iterator[KeyValue]:
    """A reducer that emits one pair per gathered value."""
    for value in values:
        yield key, value


def default_partitioner(key: Any, num_partitions: int) -> int:
    """Deterministic hash partitioning (stable across runs and processes)."""
    return _stable_hash(key) % num_partitions


def _stable_hash(key: Any) -> int:
    """A process-independent hash (Python's builtin ``hash`` is salted for strings)."""
    if isinstance(key, tuple):
        value = 1469598103934665603
        for element in key:
            value = (value ^ _stable_hash(element)) * 1099511628211
            value &= 0xFFFFFFFFFFFFFFFF
        return value
    text = repr(key) if not isinstance(key, str) else key
    value = 1469598103934665603
    for character in text.encode("utf-8", errors="replace"):
        value = (value ^ character) * 1099511628211
        value &= 0xFFFFFFFFFFFFFFFF
    return value


@dataclass
class MapReduceJob:
    """A single MapReduce job.

    Parameters
    ----------
    name:
        Human-readable job name (appears in metrics and workflow reports).
    mapper:
        ``mapper(key, value) -> iterable[(key, value)]``.
    reducer:
        ``reducer(key, [values...]) -> iterable[(key, value)]``.  When ``None``
        the job is map-only (no shuffle, no reduce phase) — Hadoop's
        ``numReduceTasks=0`` mode.
    combiner:
        Optional map-side pre-aggregation with reducer semantics.
    partitioner:
        Maps a key and the number of reduce tasks to a partition index.
    num_reduce_tasks:
        How many reduce partitions to create.
    sort_keys:
        Whether reduce input keys are processed in sorted order (Hadoop always
        sorts; disabling is only useful for tests).
    """

    name: str
    mapper: Mapper
    reducer: Optional[Reducer] = None
    combiner: Optional[Combiner] = None
    partitioner: Partitioner = default_partitioner
    num_reduce_tasks: int = 4
    sort_keys: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise JobError("job name must be non-empty")
        if not callable(self.mapper):
            raise JobError(f"job {self.name!r}: mapper must be callable")
        if self.reducer is not None and not callable(self.reducer):
            raise JobError(f"job {self.name!r}: reducer must be callable")
        if self.combiner is not None and not callable(self.combiner):
            raise JobError(f"job {self.name!r}: combiner must be callable")
        if self.num_reduce_tasks < 1:
            raise JobError(f"job {self.name!r}: num_reduce_tasks must be >= 1")

    @property
    def is_map_only(self) -> bool:
        return self.reducer is None
