"""The deterministic, seedable chaos plane for serving-side fault injection.

A :class:`FaultPlane` is one registry of :class:`FaultRule`\\ s plus the
set of permanently dead nodes.  Cluster stores are wrapped with
:meth:`FaultPlane.wrap_store`, which intercepts exactly the query-time read
surface (block directories, posting/size/term batches, graph adjacency,
snapshot cuts) and consults the plane before delegating; a matching rule
then injects a latency spike (sleep), a transient error burst
(:class:`NodeFault`), or permanent node death (:class:`NodeDown` from that
call on, until :meth:`FaultPlane.revive_node`).

The chaos vocabulary is shared with the build pipeline on purpose: every
injected error is a :class:`~repro.mapreduce.errors.TaskFailure` subclass —
the one exception class the PR 8 :class:`~repro.mapreduce.runtime.TaskRunner`
retries — and :meth:`FaultPlane.failure_injector` adapts the plane to the
``(phase, task_index, attempt)`` injector contract of
:class:`~repro.mapreduce.runtime.RetryPolicy`, so one seeded plane can
fault a distributed build *and* the cluster serving it.

Determinism: rule counters are keyed per ``(rule, node, operation)`` and
``probability`` rules draw from one seeded :class:`random.Random` under the
plane lock.  Counter-triggered rules (``nth``/``every``) fire at exactly
the same per-copy call numbers on every run; probability rules are
reproducible for a fixed call *order*, which concurrent fan-out does not
guarantee — chaos suites that assert byte-parity should therefore use
counter rules and :meth:`FaultPlane.kill_node`, and keep probability rules
for availability-style measurements.
"""

from __future__ import annotations

import random
import threading
import time
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.mapreduce.errors import TaskFailure

#: Store methods the wrapper routes through the plane: the whole query-time
#: read surface plus ``snapshot`` (so replica catch-up and rebalancing from
#: a dead copy fail like any other read of it).
INTERCEPTED_OPERATIONS: Tuple[str, ...] = (
    "postings",
    "postings_for_many",
    "posting_blocks_for_many",
    "fragment_frequency",
    "document_frequencies",
    "term_frequency",
    "fragment_term_frequencies",
    "fragment_term_frequencies_for",
    "fragment_size",
    "fragment_sizes_for",
    "neighbors",
    "snapshot",
)


class FaultError(TaskFailure):
    """Base class of every injected fault (a retryable TaskFailure)."""


class NodeFault(FaultError):
    """A transient injected failure of one node operation (crash, burst)."""


class NodeDown(FaultError):
    """The node is permanently dead (until revived); every read fails."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *where* it applies and *when* it fires.

    ``kind`` — ``"error"`` (raise :class:`NodeFault`), ``"latency"`` (sleep
    ``latency_seconds``) or ``"kill"`` (mark the node dead and raise
    :class:`NodeDown`).  ``node``/``operation`` scope the rule (``None``
    matches any).  Exactly one trigger may be set: ``nth`` fires on the
    n-th matching call of each ``(node, operation)`` pair (1-based, once
    per pair), ``every`` on every n-th, ``probability`` per call with the
    plane's seeded RNG; with no trigger the rule fires on every matching
    call.  ``times`` caps total firings across the whole plane (``None``
    is unlimited; an ``nth`` rule without ``times`` still fires at most
    once per pair by construction).
    """

    kind: str
    node: Optional[str] = None
    operation: Optional[str] = None
    nth: Optional[int] = None
    every: Optional[int] = None
    probability: Optional[float] = None
    times: Optional[int] = None
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("error", "latency", "kill"):
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected 'error', 'latency' or 'kill'"
            )
        triggers = [value is not None for value in (self.nth, self.every, self.probability)]
        if sum(triggers) > 1:
            raise ValueError("a FaultRule takes at most one of nth/every/probability")
        if self.nth is not None and self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.kind == "latency" and self.latency_seconds <= 0.0:
            raise ValueError("latency rules need latency_seconds > 0")


class _RuleState:
    """One registered rule plus its per-``(node, operation)`` call counters."""

    __slots__ = ("rule", "calls", "fired")

    def __init__(self, rule: FaultRule) -> None:
        self.rule = rule
        self.calls: Dict[Tuple[str, str], int] = {}
        self.fired = 0

    def matches(self, node_id: str, operation: str) -> bool:
        rule = self.rule
        if rule.node is not None and rule.node != node_id:
            return False
        return rule.operation is None or rule.operation == operation

    def triggered(self, node_id: str, operation: str, rng: random.Random) -> bool:
        rule = self.rule
        if rule.times is not None and self.fired >= rule.times:
            return False
        key = (node_id, operation)
        count = self.calls.get(key, 0) + 1
        self.calls[key] = count
        if rule.nth is not None:
            fire = count == rule.nth
        elif rule.every is not None:
            fire = count % rule.every == 0
        elif rule.probability is not None:
            fire = rng.random() < rule.probability
        else:
            fire = True
        if fire:
            self.fired += 1
        return fire


class FaultPlane:
    """One seeded chaos plane shared by every wrapped store (thread-safe)."""

    def __init__(self, seed: int = 0, rules: Iterable[FaultRule] = ()) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._rules: List[_RuleState] = []
        self._dead: Dict[str, bool] = {}
        self._injected: Dict[str, int] = {"error": 0, "latency": 0, "kill": 0, "dead_read": 0}
        self._operations = 0
        self._armed = False
        self._proxies: "weakref.WeakSet[FaultInjectedStore]" = weakref.WeakSet()
        self.enabled = True
        for rule in rules:
            self.add_rule(rule)

    # ------------------------------------------------------------------
    # rule and death management
    # ------------------------------------------------------------------
    def add_rule(self, rule: FaultRule) -> FaultRule:
        """Register one rule (evaluation order = registration order)."""
        with self._lock:
            self._rules.append(_RuleState(rule))
            self._set_armed_locked(True)
        return rule

    def kill_node(self, node_id: str) -> None:
        """Mark ``node_id`` permanently dead: every wrapped read raises
        :class:`NodeDown` until :meth:`revive_node`."""
        with self._lock:
            self._dead[node_id] = True
            self._set_armed_locked(True)

    def revive_node(self, node_id: str) -> None:
        """Bring a dead node back (its store was never touched, only fenced)."""
        with self._lock:
            self._dead.pop(node_id, None)
            self._set_armed_locked(bool(self._rules or self._dead))

    def _set_armed_locked(self, armed: bool) -> None:
        """Flip the armed flag and re-point every proxy's read surface.

        While disarmed (no rules, no dead nodes) each proxy exposes the
        inner store's bound methods *directly*, so a chaos-wired but
        quiescent cluster pays nothing per read; arming swaps in the
        intercepting closures.  Caller must hold the plane lock.
        """
        if armed == self._armed:
            return
        self._armed = armed
        for proxy in self._proxies:
            proxy._apply_interception(armed)

    def _register_proxy(self, proxy: "FaultInjectedStore") -> None:
        with self._lock:
            self._proxies.add(proxy)
            proxy._apply_interception(self._armed)

    def is_dead(self, node_id: str) -> bool:
        """Whether ``node_id`` is currently marked dead."""
        with self._lock:
            return node_id in self._dead

    # ------------------------------------------------------------------
    # the injection point
    # ------------------------------------------------------------------
    def operation(self, node_id: str, operation: str) -> None:
        """Consult the plane before one store operation on ``node_id``.

        Raises :class:`NodeDown`/:class:`NodeFault` or sleeps out a latency
        spike per the registered rules; returns normally otherwise.  Rule
        bookkeeping happens under the plane lock; the sleep itself runs
        outside it so one spiking node never stalls the others.

        A quiescent plane (no rules, no dead nodes) returns without taking
        the lock so zero-fault serving pays next to nothing per read; the
        ``operations`` counter therefore counts only calls consulted while
        the plane was armed.  Arm the plane (``add_rule`` / ``kill_node``)
        before the traffic it should fault — in-flight reads racing the
        very first rule registration may slip through unfaulted.
        """
        if not self.enabled or not self._armed:
            return
        delay = 0.0
        error: Optional[FaultError] = None
        with self._lock:
            self._operations += 1
            if node_id in self._dead:
                self._injected["dead_read"] += 1
                raise NodeDown(f"node {node_id!r} is down (operation {operation!r})")
            for state in self._rules:
                if not state.matches(node_id, operation):
                    continue
                if not state.triggered(node_id, operation, self._rng):
                    continue
                kind = state.rule.kind
                self._injected[kind] += 1
                if kind == "kill":
                    self._dead[node_id] = True
                    raise NodeDown(
                        f"node {node_id!r} killed by fault rule (operation {operation!r})"
                    )
                if kind == "latency":
                    delay += state.rule.latency_seconds
                elif error is None:
                    error = NodeFault(
                        f"injected fault on node {node_id!r} (operation {operation!r})"
                    )
        if delay:
            time.sleep(delay)
        if error is not None:
            raise error

    def wrap_store(self, node_id: str, store: Any) -> "FaultInjectedStore":
        """A store proxy whose read surface consults this plane first."""
        return FaultInjectedStore(self, node_id, store)

    def failure_injector(self) -> Callable[[str, int, int], None]:
        """This plane as a PR 8 build-side failure injector.

        The returned callable satisfies the
        :data:`~repro.mapreduce.runtime.FailureInjector` contract: each
        attempt maps to one plane operation on the pseudo-node
        ``"{phase}[{task_index}]"`` with the phase as the operation name,
        so the same rule grammar (nth-call, probability, per-node) drives
        build-task faults — and every injected error is a
        :class:`~repro.mapreduce.errors.TaskFailure` the runner retries.
        """

        def inject(phase: str, task_index: int, attempt: int) -> None:
            del attempt  # each attempt is simply the next matching call
            self.operation(f"{phase}[{task_index}]", phase)

        return inject

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, Any]:
        """Injection counters, dead nodes and per-rule firing counts."""
        with self._lock:
            return {
                "seed": self.seed,
                "enabled": self.enabled,
                "armed": self._armed,
                "operations": self._operations,
                "injected": dict(self._injected),
                "dead_nodes": sorted(self._dead),
                "rules": [
                    {
                        "kind": state.rule.kind,
                        "node": state.rule.node,
                        "operation": state.rule.operation,
                        "fired": state.fired,
                    }
                    for state in self._rules
                ],
            }


def _intercept(plane: FaultPlane, node_id: str, operation: str, inner_method: Any):
    # Bind everything once at wrap time: the graph expansion loop reads
    # `neighbors` hundreds of times per query, so the per-call cost of this
    # closure (one plane consult + the delegated call) is the whole
    # zero-fault overhead of chaos-wiring a cluster.
    plane_operation = plane.operation

    def method(*args: Any, **kwargs: Any) -> Any:
        plane_operation(node_id, operation)
        return inner_method(*args, **kwargs)

    method.__name__ = operation
    method.__qualname__ = f"FaultInjectedStore.{operation}"
    method.__doc__ = f"``{operation}`` routed through the fault plane, then delegated."
    return method


class FaultInjectedStore:
    """A delegating store proxy with the plane in front of its read surface.

    Only the operations in :data:`INTERCEPTED_OPERATIONS` consult the
    plane; everything else — writes, epoch metadata, lifecycle — delegates
    untouched via ``__getattr__``, so building, populating and closing a
    wrapped store behave exactly like the bare backend.  Interception is
    itself armed lazily: while the plane has no rules and no dead nodes the
    proxy's read methods *are* the inner store's bound methods (zero
    per-call cost), and the plane re-points them at the consulting closures
    the moment it arms.  The proxy is not a
    :class:`~repro.store.FragmentStore` subclass on purpose: it must never
    be handed to code that *creates* stores (snapshot restore targets are
    restored bare and wrapped afterwards).
    """

    def __init__(self, plane: FaultPlane, node_id: str, inner: Any) -> None:
        self._plane = plane
        self._node_id = node_id
        self._inner = inner
        self._raw_methods: Dict[str, Any] = {}
        self._intercepted_methods: Dict[str, Any] = {}
        for operation in INTERCEPTED_OPERATIONS:
            inner_method = getattr(inner, operation, None)
            if inner_method is not None:
                self._raw_methods[operation] = inner_method
                self._intercepted_methods[operation] = _intercept(
                    plane, node_id, operation, inner_method
                )
        plane._register_proxy(self)

    def _apply_interception(self, armed: bool) -> None:
        """Point the read surface at the intercepting closures or, while the
        plane is quiescent, at the inner store's bound methods directly."""
        methods = self._intercepted_methods if armed else self._raw_methods
        for operation, method in methods.items():
            object.__setattr__(self, operation, method)

    @property
    def fault_node_id(self) -> str:
        """Which node's chaos rules this copy is subject to."""
        return self._node_id

    @property
    def inner_store(self) -> Any:
        """The wrapped backend (escape hatch for lifecycle bookkeeping)."""
        return self._inner

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjectedStore({self._node_id!r}, {self._inner!r})"
