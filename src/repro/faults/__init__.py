"""Serving-side chaos engineering: deterministic, seedable fault injection.

One :class:`FaultPlane` wraps cluster partition stores
(:meth:`FaultPlane.wrap_store`) and injects crashes, latency spikes, error
bursts and permanent node death by :class:`FaultRule` (nth-call,
probability, per-node) — reusing the build pipeline's injector contract
(:mod:`repro.mapreduce.runtime`) so build and serving share one chaos
vocabulary.  See :mod:`repro.faults.plane` for determinism notes and
:meth:`repro.core.engine.DashEngine.cluster` (``fault_plane=``) for the
blessed wiring into a cluster.
"""

from repro.faults.plane import (
    INTERCEPTED_OPERATIONS,
    FaultError,
    FaultInjectedStore,
    FaultPlane,
    FaultRule,
    NodeDown,
    NodeFault,
)

__all__ = [
    "FaultError",
    "FaultInjectedStore",
    "FaultPlane",
    "FaultRule",
    "INTERCEPTED_OPERATIONS",
    "NodeDown",
    "NodeFault",
]
