"""Parameterized project-select-join (PSJ) queries — Definition 1 of the paper.

A PSJ query is

    pi_{a1..al} sigma_{c1 op1 v1 and ... cm opm vm} (R1 join R2 join ... Rn)

where each ``vi`` is a *query parameter*.  Web applications analysed by Dash
issue exactly one such query; its selection attributes define the db-page
fragment identifiers (Definition 2) and its parameters are what the reverse
query-string parsing step maps back to URL fields.

The model here stores the join tree as a left-deep sequence of
:class:`JoinClause` objects (the paper's queries are all linear join chains —
parenthesised groups such as ``(L JOIN P)`` in Q3 flatten to an equivalent
left-deep plan because every join is a foreign-key equi join).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.db import algebra
from repro.db.errors import QueryError
from repro.db.relation import Record, Relation
from repro.db.schema import Schema


@dataclass(frozen=True)
class Parameter:
    """A named query parameter (``$r``, ``$min``, ``$max`` ... in the paper)."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class Comparison:
    """A single selection condition ``attribute <op> parameter-or-literal``.

    ``operator`` is one of ``"="``, ``"<="`` or ``">="`` (the operators the
    paper's Definition 1 admits).  ``operand`` is either a :class:`Parameter`
    or a literal value.
    """

    attribute: str
    operator: str
    operand: Any
    relation: Optional[str] = None

    def __post_init__(self) -> None:
        if self.operator not in ("=", "<=", ">="):
            raise QueryError(f"unsupported comparison operator {self.operator!r}")

    @property
    def is_parameterized(self) -> bool:
        return isinstance(self.operand, Parameter)

    def parameters(self) -> List[str]:
        """Names of parameters referenced by this condition."""
        return [self.operand.name] if self.is_parameterized else []

    def evaluate(self, value: Any, bindings: Mapping[str, Any]) -> bool:
        """Whether an attribute ``value`` satisfies this condition under ``bindings``."""
        operand = self._resolve(bindings)
        if value is None or operand is None:
            return False
        if self.operator == "=":
            return value == operand
        if self.operator == "<=":
            return value <= operand
        return value >= operand

    def _resolve(self, bindings: Mapping[str, Any]) -> Any:
        if not self.is_parameterized:
            return self.operand
        name = self.operand.name
        if name not in bindings:
            raise QueryError(f"missing binding for parameter ${name}")
        return bindings[name]


@dataclass(frozen=True)
class BetweenCondition:
    """``attribute BETWEEN low AND high`` — the range shape used by every
    application query in the paper (budget / ACCBAL / QTY ranges)."""

    attribute: str
    low: Any
    high: Any
    relation: Optional[str] = None

    def parameters(self) -> List[str]:
        names: List[str] = []
        for operand in (self.low, self.high):
            if isinstance(operand, Parameter):
                names.append(operand.name)
        return names

    def evaluate(self, value: Any, bindings: Mapping[str, Any]) -> bool:
        if value is None:
            return False
        low = self._resolve(self.low, bindings)
        high = self._resolve(self.high, bindings)
        if low is None or high is None:
            return False
        return low <= value <= high

    @staticmethod
    def _resolve(operand: Any, bindings: Mapping[str, Any]) -> Any:
        if isinstance(operand, Parameter):
            if operand.name not in bindings:
                raise QueryError(f"missing binding for parameter ${operand.name}")
            return bindings[operand.name]
        return operand


Condition = Any  # Comparison | BetweenCondition


@dataclass(frozen=True)
class JoinClause:
    """One step of the left-deep join chain.

    ``relation`` joins into the accumulated left-hand result using the key
    pairs ``on`` (``left_attribute`` refers to an attribute already present in
    the accumulated result, ``right_attribute`` to one of ``relation``).
    ``kind`` is ``"inner"`` or ``"left"``.
    """

    relation: str
    on: Tuple[Tuple[str, str], ...]
    kind: str = "inner"

    def __post_init__(self) -> None:
        if self.kind not in ("inner", "left"):
            raise QueryError(f"unsupported join kind {self.kind!r}")
        if not self.on:
            raise QueryError(f"join with {self.relation!r} has no key pairs")


class QueryResult:
    """The result of evaluating a bound PSJ query: a relation plus lineage."""

    def __init__(self, relation: Relation, query: "ParameterizedPSJQuery", bindings: Mapping[str, Any]):
        self.relation = relation
        self.query = query
        self.bindings = dict(bindings)

    def __len__(self) -> int:
        return len(self.relation)

    def __iter__(self):
        return iter(self.relation)

    @property
    def schema(self) -> Schema:
        return self.relation.schema

    def keywords(self) -> List[str]:
        """All keywords of the result's projected content (page text)."""
        from repro.text.tokenizer import tokenize

        words: List[str] = []
        for record in self.relation:
            for value in record.text_values():
                words.extend(tokenize(value))
        return words


class ParameterizedPSJQuery:
    """Definition 1: a parameterized project-select-join query."""

    def __init__(
        self,
        name: str,
        base_relation: str,
        joins: Sequence[JoinClause],
        conditions: Sequence[Condition],
        projections: Optional[Sequence[str]] = None,
    ) -> None:
        self.name = name
        self.base_relation = base_relation
        self.joins: Tuple[JoinClause, ...] = tuple(joins)
        self.conditions: Tuple[Condition, ...] = tuple(conditions)
        self.projections: Optional[Tuple[str, ...]] = (
            tuple(projections) if projections is not None else None
        )
        if not self.conditions:
            raise QueryError(f"PSJ query {name!r} has no selection conditions")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def operand_relations(self) -> Tuple[str, ...]:
        """Names of all operand relations, base first."""
        return (self.base_relation,) + tuple(join.relation for join in self.joins)

    @property
    def selection_attributes(self) -> Tuple[str, ...]:
        """The attributes c1..cm whose values identify db-page fragments."""
        return tuple(condition.attribute for condition in self.conditions)

    def parameters(self) -> Tuple[str, ...]:
        """All parameter names, in condition order (duplicates removed)."""
        seen: List[str] = []
        for condition in self.conditions:
            for parameter in condition.parameters():
                if parameter not in seen:
                    seen.append(parameter)
        return tuple(seen)

    def condition_for_attribute(self, attribute: str) -> Condition:
        """The condition constraining ``attribute``."""
        for condition in self.conditions:
            if condition.attribute == attribute:
                return condition
        raise QueryError(f"no condition on attribute {attribute!r} in query {self.name!r}")

    def range_attributes(self) -> Tuple[str, ...]:
        """Selection attributes constrained by a BETWEEN (range) condition."""
        return tuple(
            condition.attribute
            for condition in self.conditions
            if isinstance(condition, BetweenCondition)
        )

    def equality_attributes(self) -> Tuple[str, ...]:
        """Selection attributes constrained by an equality condition."""
        return tuple(
            condition.attribute
            for condition in self.conditions
            if isinstance(condition, Comparison) and condition.operator == "="
        )

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def join_operands(self, database: "Database") -> Relation:
        """Evaluate only the join chain (no selection, no projection).

        This is the relational core of the *crawling query* of Section V-A:
        the stepwise crawler materialises exactly this relation through a
        sequence of MapReduce jobs.
        """
        current = database.relation(self.base_relation)
        for join in self.joins:
            right = database.relation(join.relation)
            if join.kind == "left":
                current = algebra.left_outer_join(current, right, join.on)
            else:
                current = algebra.inner_join(current, right, join.on)
        return current

    def output_attributes(self, joined_schema: Schema) -> Tuple[str, ...]:
        """The projection attribute list a1..al resolved against ``joined_schema``.

        ``SELECT *`` (``projections is None``) projects every attribute of the
        joined result.
        """
        if self.projections is None:
            return joined_schema.attribute_names
        resolved = []
        for attribute in self.projections:
            resolved.append(self.resolve_attribute(joined_schema, attribute))
        return tuple(resolved)

    def resolve_attribute(self, joined_schema: Schema, attribute: str) -> str:
        """Resolve ``attribute`` (optionally ``relation.attr``) in the joined schema."""
        if joined_schema.has_attribute(attribute):
            return attribute
        for candidate in joined_schema.attribute_names:
            if candidate.endswith(f".{attribute}"):
                return candidate
        raise QueryError(
            f"attribute {attribute!r} of query {self.name!r} not found in joined schema"
        )

    def crawling_attributes(self, joined_schema: Schema) -> Tuple[str, ...]:
        """Projection attributes plus selection attributes (the crawling query)."""
        output = list(self.output_attributes(joined_schema))
        for attribute in self.selection_attributes:
            resolved = self.resolve_attribute(joined_schema, attribute)
            if resolved not in output:
                output.append(resolved)
        return tuple(output)

    def record_satisfies(self, record: Record, bindings: Mapping[str, Any]) -> bool:
        """Whether a joined record satisfies every (bound) selection condition."""
        for condition in self.conditions:
            attribute = self.resolve_attribute(record.schema, condition.attribute)
            if not condition.evaluate(record[attribute], bindings):
                return False
        return True

    def evaluate(self, database: "Database", bindings: Mapping[str, Any]) -> QueryResult:
        """Evaluate the query under ``bindings`` and return its result.

        This is what the web application does at page-generation time; Dash
        itself never calls it during crawling (it derives fragments instead),
        but the simulated web server and the correctness tests do.
        """
        missing = [name for name in self.parameters() if name not in bindings]
        if missing:
            raise QueryError(f"missing bindings for parameters {missing} of query {self.name!r}")
        joined = self.join_operands(database)
        selected = algebra.select(joined, lambda record: self.record_satisfies(record, bindings))
        projected = algebra.project(
            selected, list(self.output_attributes(joined.schema)), name=f"{self.name}_result"
        )
        return QueryResult(projected, self, bindings)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParameterizedPSJQuery({self.name!r}, relations={self.operand_relations}, "
            f"conditions={len(self.conditions)})"
        )


# Imported late to avoid a cycle (Database needs Relation, not the query model).
from repro.db.database import Database  # noqa: E402  (re-exported for typing)
