"""Exception hierarchy for the relational engine."""


class DatabaseError(Exception):
    """Base class for every error raised by :mod:`repro.db`."""


class SchemaError(DatabaseError):
    """Raised when a schema is malformed or an attribute is unknown."""


class IntegrityError(DatabaseError):
    """Raised when a key or referential-integrity constraint is violated."""


class QueryError(DatabaseError):
    """Raised when a query references unknown relations/attributes or is
    evaluated with missing or ill-typed parameter bindings."""


class SQLParseError(DatabaseError):
    """Raised when the SQL text cannot be parsed into a PSJ query."""
