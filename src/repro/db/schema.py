"""Schemas: attributes, relation schemas, keys and foreign keys."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.errors import SchemaError
from repro.db.types import AttributeType


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation."""

    name: str
    type: AttributeType = AttributeType.STRING

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")

    def coerce(self, value):
        """Coerce ``value`` into this attribute's domain."""
        return self.type.coerce(value)


@dataclass(frozen=True)
class ForeignKey:
    """A referential constraint ``attribute -> referenced_relation.referenced_attribute``."""

    attribute: str
    referenced_relation: str
    referenced_attribute: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.attribute} -> {self.referenced_relation}({self.referenced_attribute})"


class Schema:
    """An ordered collection of attributes describing one relation.

    The schema knows its primary key and foreign keys so that
    :class:`repro.db.database.Database` can enforce uniqueness and referential
    integrity, and so that baselines such as the DISCOVER-style keyword search
    can discover join paths automatically.
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute],
        primary_key: Optional[Sequence[str]] = None,
        foreign_keys: Optional[Iterable[ForeignKey]] = None,
    ) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        self.name = name
        self.attributes: Tuple[Attribute, ...] = tuple(attributes)
        if not self.attributes:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        self._index: Dict[str, int] = {}
        for position, attribute in enumerate(self.attributes):
            if attribute.name in self._index:
                raise SchemaError(f"duplicate attribute {attribute.name!r} in relation {name!r}")
            self._index[attribute.name] = position
        self.primary_key: Tuple[str, ...] = tuple(primary_key or ())
        for key_attr in self.primary_key:
            if key_attr not in self._index:
                raise SchemaError(f"primary key attribute {key_attr!r} not in relation {name!r}")
        self.foreign_keys: Tuple[ForeignKey, ...] = tuple(foreign_keys or ())
        for foreign_key in self.foreign_keys:
            if foreign_key.attribute not in self._index:
                raise SchemaError(
                    f"foreign key attribute {foreign_key.attribute!r} not in relation {name!r}"
                )

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """Names of all attributes, in schema order."""
        return tuple(attribute.name for attribute in self.attributes)

    def has_attribute(self, name: str) -> bool:
        """Whether ``name`` is an attribute of this schema."""
        return name in self._index

    def position_of(self, name: str) -> int:
        """Position of attribute ``name`` within a record tuple."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"relation {self.name!r} has no attribute {name!r}") from None

    def attribute(self, name: str) -> Attribute:
        """The :class:`Attribute` named ``name``."""
        return self.attributes[self.position_of(name)]

    def __len__(self) -> int:
        return len(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.primary_key == other.primary_key
            and self.foreign_keys == other.foreign_keys
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes, self.primary_key, self.foreign_keys))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        attrs = ", ".join(f"{a.name}:{a.type.value}" for a in self.attributes)
        return f"Schema({self.name!r}, [{attrs}])"

    # ------------------------------------------------------------------
    # derivation helpers
    # ------------------------------------------------------------------
    def renamed(self, new_name: str) -> "Schema":
        """A copy of this schema under a different relation name."""
        return Schema(new_name, self.attributes, self.primary_key, self.foreign_keys)

    def subset(self, names: Sequence[str], new_name: Optional[str] = None) -> "Schema":
        """A schema keeping only ``names`` (used by projection)."""
        attributes = [self.attribute(name) for name in names]
        return Schema(new_name or self.name, attributes)

    def concat(self, other: "Schema", new_name: Optional[str] = None) -> "Schema":
        """Concatenate two schemas, disambiguating colliding attribute names.

        When an attribute of ``other`` collides with one of ``self`` the right
        hand copy is renamed to ``"<other.name>.<attr>"`` — the convention the
        join operators rely on.
        """
        merged: List[Attribute] = list(self.attributes)
        taken = set(self.attribute_names)
        for attribute in other.attributes:
            name = attribute.name
            if name in taken:
                name = f"{other.name}.{attribute.name}"
            if name in taken:
                raise SchemaError(f"cannot disambiguate attribute {attribute.name!r}")
            taken.add(name)
            merged.append(Attribute(name, attribute.type))
        return Schema(new_name or f"{self.name}_{other.name}", merged)
