"""A named catalog of relations with key and referential-integrity checks."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.db.errors import IntegrityError, SchemaError
from repro.db.relation import Record, Relation
from repro.db.schema import ForeignKey, Schema


class Database:
    """An in-memory relational database.

    The catalog maps relation names to :class:`~repro.db.relation.Relation`
    instances.  ``enforce_integrity`` turns on primary-key uniqueness and
    foreign-key existence checks on insert — useful for the hand-written
    ``fooddb`` example; the bulk TPC-H generator constructs data that is
    consistent by construction and keeps checks off for speed.
    """

    def __init__(self, name: str, enforce_integrity: bool = False) -> None:
        self.name = name
        self.enforce_integrity = enforce_integrity
        self._relations: Dict[str, Relation] = {}
        self._primary_index: Dict[str, Dict[Tuple[Any, ...], Record]] = {}

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------
    def create_relation(self, schema: Schema) -> Relation:
        """Create an empty relation for ``schema`` and register it."""
        if schema.name in self._relations:
            raise SchemaError(f"relation {schema.name!r} already exists in database {self.name!r}")
        relation = Relation(schema)
        self._relations[schema.name] = relation
        self._primary_index[schema.name] = {}
        return relation

    def add_relation(self, relation: Relation) -> Relation:
        """Register an already-populated relation."""
        if relation.schema.name in self._relations:
            raise SchemaError(
                f"relation {relation.schema.name!r} already exists in database {self.name!r}"
            )
        self._relations[relation.schema.name] = relation
        self._primary_index[relation.schema.name] = {}
        if self.enforce_integrity:
            for record in relation:
                self._check_integrity(relation.schema, record)
                self._index_primary_key(relation.schema, record)
        return relation

    def relation(self, name: str) -> Relation:
        """The relation named ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"database {self.name!r} has no relation {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def schemas(self) -> List[Schema]:
        return [relation.schema for relation in self._relations.values()]

    # ------------------------------------------------------------------
    # data manipulation
    # ------------------------------------------------------------------
    def insert(self, relation_name: str, record: Any) -> Record:
        """Insert ``record`` into ``relation_name`` honouring integrity checks."""
        relation = self.relation(relation_name)
        adapted = relation._adapt(record)
        if self.enforce_integrity:
            self._check_integrity(relation.schema, adapted)
        relation.insert(adapted)
        self._index_primary_key(relation.schema, adapted)
        return adapted

    def insert_many(self, relation_name: str, records: Iterable[Any]) -> int:
        """Insert many records; returns how many were inserted."""
        count = 0
        for record in records:
            self.insert(relation_name, record)
            count += 1
        return count

    def delete(self, relation_name: str, predicate) -> int:
        """Delete records of ``relation_name`` matching ``predicate``."""
        relation = self.relation(relation_name)
        removed = relation.delete(predicate)
        self._primary_index[relation_name] = {}
        if self.enforce_integrity:
            for record in relation:
                self._index_primary_key(relation.schema, record)
        return removed

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def _check_integrity(self, schema: Schema, record: Record) -> None:
        if schema.primary_key:
            key = record.key(schema.primary_key)
            if key in self._primary_index.get(schema.name, {}):
                raise IntegrityError(
                    f"duplicate primary key {key!r} in relation {schema.name!r}"
                )
        for foreign_key in schema.foreign_keys:
            value = record[foreign_key.attribute]
            if value is None:
                continue
            if not self._foreign_key_exists(foreign_key, value):
                raise IntegrityError(
                    f"foreign key violation: {schema.name}.{foreign_key.attribute}={value!r} "
                    f"has no match in {foreign_key.referenced_relation}"
                )

    def _foreign_key_exists(self, foreign_key: ForeignKey, value: Any) -> bool:
        if not self.has_relation(foreign_key.referenced_relation):
            return False
        referenced = self.relation(foreign_key.referenced_relation)
        index = self._primary_index.get(foreign_key.referenced_relation)
        if index and referenced.schema.primary_key == (foreign_key.referenced_attribute,):
            return (value,) in index
        return any(record[foreign_key.referenced_attribute] == value for record in referenced)

    def _index_primary_key(self, schema: Schema, record: Record) -> None:
        if schema.primary_key:
            key = record.key(schema.primary_key)
            self._primary_index.setdefault(schema.name, {})[key] = record

    # ------------------------------------------------------------------
    # statistics / introspection
    # ------------------------------------------------------------------
    def size_report(self) -> Dict[str, Dict[str, int]]:
        """Per-relation record counts and approximate byte sizes."""
        report: Dict[str, Dict[str, int]] = {}
        for name, relation in self._relations.items():
            report[name] = {
                "records": len(relation),
                "approx_bytes": relation.approximate_bytes(),
            }
        return report

    def total_records(self) -> int:
        return sum(len(relation) for relation in self._relations.values())

    def foreign_key_graph(self) -> Dict[str, List[ForeignKey]]:
        """Foreign keys grouped by owning relation (used by the DISCOVER baseline)."""
        return {name: list(relation.schema.foreign_keys) for name, relation in self._relations.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Database({self.name!r}, relations={list(self._relations)})"
