"""A parser for the paper's SQL dialect into :class:`ParameterizedPSJQuery`.

The application queries Dash analyses (Figure 3 and Table III) all have the
shape::

    SELECT <* | a1, a2, ...>
    FROM (R1 [LEFT] JOIN R2) [LEFT] JOIN R3 ...
    WHERE c1 = $p1 AND c2 BETWEEN $lo AND $hi ...

Join predicates are implicit foreign-key equi joins, exactly as in the paper's
Table III, so the parser consults the :class:`~repro.db.database.Database`
catalog to infer the join keys from declared foreign keys.  Conditions may
compare against ``$parameters`` (producing a parameterized query) or literal
values (producing a bound condition, used when the analyzer has not yet
replaced concrete servlet inputs with symbols).
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.db.database import Database
from repro.db.errors import SQLParseError
from repro.db.query import (
    BetweenCondition,
    Comparison,
    JoinClause,
    Parameter,
    ParameterizedPSJQuery,
)

_TOKEN_PATTERN = re.compile(
    r"""
    \s*(
        \$[A-Za-z_][A-Za-z_0-9]*      # parameter
      | [A-Za-z_][A-Za-z_0-9]*(\.[A-Za-z_][A-Za-z_0-9]*)?   # identifier / qualified identifier
      | '(?:[^']*)'                   # single-quoted string literal
      | "(?:[^"]*)"                   # double-quoted string literal
      | -?\d+\.\d+                    # float literal
      | -?\d+                         # int literal
      | <=|>=|=|\(|\)|,|\*           # punctuation / operators
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "join", "left", "inner", "outer", "and", "between", "on"}


def _tokenize(sql: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    text = sql.strip()
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if not match:
            raise SQLParseError(f"cannot tokenize SQL near: {text[position:position + 30]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _TokenStream:
    """A tiny cursor over the token list with keyword-aware helpers."""

    def __init__(self, tokens: Sequence[str]) -> None:
        self._tokens = list(tokens)
        self._position = 0

    def peek(self) -> Optional[str]:
        if self._position >= len(self._tokens):
            return None
        return self._tokens[self._position]

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SQLParseError("unexpected end of SQL text")
        self._position += 1
        return token

    def accept_keyword(self, keyword: str) -> bool:
        token = self.peek()
        if token is not None and token.lower() == keyword:
            self._position += 1
            return True
        return False

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise SQLParseError(f"expected {keyword.upper()!r}, found {self.peek()!r}")

    def expect(self, literal: str) -> None:
        token = self.next()
        if token != literal:
            raise SQLParseError(f"expected {literal!r}, found {token!r}")

    def exhausted(self) -> bool:
        return self._position >= len(self._tokens)


# ----------------------------------------------------------------------
# FROM clause: join-tree parsing and flattening
# ----------------------------------------------------------------------
_JoinTree = Union[str, Tuple["_JoinTree", "_JoinTree", str]]


def _parse_from(stream: _TokenStream) -> _JoinTree:
    tree = _parse_join_term(stream)
    while True:
        kind = _peek_join_kind(stream)
        if kind is None:
            break
        right = _parse_join_term(stream)
        tree = (tree, right, kind)
    return tree


def _parse_join_term(stream: _TokenStream) -> _JoinTree:
    token = stream.peek()
    if token == "(":
        stream.next()
        tree = _parse_from(stream)
        stream.expect(")")
        return tree
    identifier = stream.next()
    if identifier.lower() in _KEYWORDS or not re.match(r"^[A-Za-z_]", identifier):
        raise SQLParseError(f"expected relation name, found {identifier!r}")
    return identifier


def _peek_join_kind(stream: _TokenStream) -> Optional[str]:
    token = stream.peek()
    if token is None:
        return None
    lowered = token.lower()
    if lowered == "join":
        stream.next()
        return "inner"
    if lowered == "inner":
        stream.next()
        stream.expect_keyword("join")
        return "inner"
    if lowered == "left":
        stream.next()
        stream.accept_keyword("outer")
        stream.expect_keyword("join")
        return "left"
    return None


def _flatten_join_tree(tree: _JoinTree) -> List[Tuple[str, Optional[str]]]:
    """Flatten the join tree into [(relation, kind_connecting_it), ...]."""
    if isinstance(tree, str):
        return [(tree, None)]
    left, right, kind = tree
    flat_left = _flatten_join_tree(left)
    flat_right = _flatten_join_tree(right)
    head_relation, _ = flat_right[0]
    return flat_left + [(head_relation, kind)] + flat_right[1:]


# ----------------------------------------------------------------------
# WHERE clause
# ----------------------------------------------------------------------
def _parse_operand(stream: _TokenStream) -> Any:
    token = stream.next()
    if token.startswith("$"):
        return Parameter(token[1:])
    if token.startswith("'") or token.startswith('"'):
        return token[1:-1]
    if re.match(r"^-?\d+\.\d+$", token):
        return float(token)
    if re.match(r"^-?\d+$", token):
        return int(token)
    raise SQLParseError(f"expected literal or $parameter, found {token!r}")


def _split_qualified(identifier: str) -> Tuple[Optional[str], str]:
    if "." in identifier:
        relation, attribute = identifier.split(".", 1)
        return relation, attribute
    return None, identifier


def _parse_condition(stream: _TokenStream) -> Any:
    if stream.peek() == "(":
        stream.next()
        condition = _parse_condition(stream)
        stream.expect(")")
        return condition
    identifier = stream.next()
    relation, attribute = _split_qualified(identifier)
    token = stream.peek()
    if token is not None and token.lower() == "between":
        stream.next()
        low = _parse_operand(stream)
        stream.expect_keyword("and")
        high = _parse_operand(stream)
        return BetweenCondition(attribute=attribute, low=low, high=high, relation=relation)
    operator = stream.next()
    if operator not in ("=", "<=", ">="):
        raise SQLParseError(f"unsupported operator {operator!r} on attribute {attribute!r}")
    operand = _parse_operand(stream)
    return Comparison(attribute=attribute, operator=operator, operand=operand, relation=relation)


def _parse_where(stream: _TokenStream) -> List[Any]:
    conditions = [_parse_condition(stream)]
    while stream.accept_keyword("and"):
        conditions.append(_parse_condition(stream))
    return conditions


# ----------------------------------------------------------------------
# join-key inference from foreign keys
# ----------------------------------------------------------------------
def _infer_join_keys(
    database: Database, accumulated: Sequence[str], new_relation: str
) -> Tuple[Tuple[str, str], ...]:
    """Foreign-key join keys between ``new_relation`` and the relations joined so far."""
    pairs: List[Tuple[str, str]] = []
    new_schema = database.relation(new_relation).schema
    accumulated_set = set(accumulated)
    for foreign_key in new_schema.foreign_keys:
        if foreign_key.referenced_relation in accumulated_set:
            pairs.append((foreign_key.referenced_attribute, foreign_key.attribute))
    for existing in accumulated:
        existing_schema = database.relation(existing).schema
        for foreign_key in existing_schema.foreign_keys:
            if foreign_key.referenced_relation == new_relation:
                pairs.append((foreign_key.attribute, foreign_key.referenced_attribute))
    deduplicated = tuple(dict.fromkeys(pairs))
    if not deduplicated:
        raise SQLParseError(
            f"cannot infer join keys between {new_relation!r} and {sorted(accumulated_set)} "
            "(no foreign keys declared)"
        )
    return deduplicated


def _owning_relation(database: Database, relations: Sequence[str], attribute: str) -> Optional[str]:
    """The first relation among ``relations`` whose schema declares ``attribute``."""
    for relation_name in relations:
        if database.relation(relation_name).schema.has_attribute(attribute):
            return relation_name
    return None


def _resolve_condition_attribute(database: Database, relations: Sequence[str], condition: Any) -> Any:
    """Verify the condition attribute exists in one of the operand relations."""
    candidates = []
    for relation_name in relations:
        schema = database.relation(relation_name).schema
        if schema.has_attribute(condition.attribute):
            candidates.append(relation_name)
    if condition.relation is not None:
        if condition.relation not in relations:
            raise SQLParseError(
                f"condition references relation {condition.relation!r} not in FROM clause"
            )
        schema = database.relation(condition.relation).schema
        if not schema.has_attribute(condition.attribute):
            raise SQLParseError(
                f"relation {condition.relation!r} has no attribute {condition.attribute!r}"
            )
        return condition
    if not candidates:
        raise SQLParseError(
            f"condition attribute {condition.attribute!r} not found in any operand relation"
        )
    return condition


def parse_psj_query(sql: str, database: Database, name: str = "query") -> ParameterizedPSJQuery:
    """Parse ``sql`` into a :class:`ParameterizedPSJQuery` against ``database``.

    Raises :class:`~repro.db.errors.SQLParseError` when the text is not a
    PSJ query of the supported shape, or when it references unknown relations
    or attributes.
    """
    stream = _TokenStream(_tokenize(sql))
    stream.expect_keyword("select")

    projections: Optional[List[str]] = None
    if stream.peek() == "*":
        stream.next()
    else:
        projections = []
        while True:
            identifier = stream.next()
            _, attribute = _split_qualified(identifier)
            projections.append(attribute)
            if stream.peek() == ",":
                stream.next()
                continue
            break

    stream.expect_keyword("from")
    join_tree = _parse_from(stream)
    stream.expect_keyword("where")
    conditions = _parse_where(stream)
    if not stream.exhausted():
        raise SQLParseError(f"unexpected trailing tokens starting at {stream.peek()!r}")

    flattened = _flatten_join_tree(join_tree)
    relation_names = [relation for relation, _kind in flattened]
    for relation_name in relation_names:
        if not database.has_relation(relation_name):
            raise SQLParseError(f"unknown relation {relation_name!r} in FROM clause")
    if len(set(relation_names)) != len(relation_names):
        raise SQLParseError("the same relation appears twice in the FROM clause")

    joins: List[JoinClause] = []
    accumulated = [relation_names[0]]
    outer_introduced: set = set()
    for relation_name, kind in flattened[1:]:
        on = _infer_join_keys(database, accumulated, relation_name)
        effective_kind = kind or "inner"
        if effective_kind != "left":
            # Null-preserving promotion: if this join's key comes from a
            # relation that was itself introduced through a LEFT JOIN, its key
            # can be NULL for padded rows.  The paper's db-pages (Figures 1
            # and 5) keep such rows — e.g. restaurants without comments still
            # appear even though ``customer`` is inner-joined via the
            # comment's uid — so the join is promoted to a left outer join.
            for left_attr, _right_attr in on:
                owner = _owning_relation(database, accumulated, left_attr)
                if owner in outer_introduced:
                    effective_kind = "left"
                    break
        if effective_kind == "left":
            outer_introduced.add(relation_name)
        joins.append(JoinClause(relation=relation_name, on=on, kind=effective_kind))
        accumulated.append(relation_name)

    conditions = [
        _resolve_condition_attribute(database, relation_names, condition) for condition in conditions
    ]
    return ParameterizedPSJQuery(
        name=name,
        base_relation=relation_names[0],
        joins=joins,
        conditions=conditions,
        projections=projections,
    )
