"""Attribute domains and value coercion.

The engine supports a deliberately small set of scalar domains — the ones that
appear in the paper's running example (``fooddb``) and in the TPC-H schema:
integers, floats, strings and calendar dates.  Dates are stored as ISO strings
(``YYYY-MM-DD``) so that records stay plain tuples of hashable scalars, which
keeps them cheap to shuffle through the simulated MapReduce runtime.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.db.errors import SchemaError


class AttributeType(enum.Enum):
    """Domain of an attribute value."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"

    def coerce(self, value: Any) -> Optional[Any]:
        """Coerce ``value`` into this domain.

        ``None`` always passes through unchanged (it represents a SQL NULL,
        which the left outer joins in the paper's application queries can
        produce).  A :class:`~repro.db.errors.SchemaError` is raised when the
        value cannot be represented in the domain.
        """
        if value is None:
            return None
        try:
            if self is AttributeType.INT:
                if isinstance(value, bool):
                    raise SchemaError(f"boolean {value!r} is not an integer")
                return int(value)
            if self is AttributeType.FLOAT:
                return float(value)
            if self is AttributeType.STRING:
                return str(value)
            if self is AttributeType.DATE:
                return _coerce_date(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"cannot coerce {value!r} to {self.value}") from exc
        raise SchemaError(f"unknown attribute type {self!r}")

    def is_numeric(self) -> bool:
        """Whether values of this type support arithmetic comparison."""
        return self in (AttributeType.INT, AttributeType.FLOAT)


def _coerce_date(value: Any) -> str:
    """Normalise a date-like value into an ISO ``YYYY-MM-DD`` string."""
    if hasattr(value, "isoformat"):
        return value.isoformat()[:10]
    text = str(value).strip()
    if not text:
        raise ValueError("empty date")
    return text


def compare_values(left: Any, right: Any) -> int:
    """Three-way comparison used by range predicates and sorting.

    ``None`` (NULL) sorts before every non-NULL value, mirroring the behaviour
    most SQL engines exhibit under ``ORDER BY ... NULLS FIRST``.  Mixed
    numeric/string comparisons fall back to string comparison so that the
    function is total (the fragment graph sorts fragment identifiers that can
    mix domains).
    """
    if left is None and right is None:
        return 0
    if left is None:
        return -1
    if right is None:
        return 1
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    left_s, right_s = str(left), str(right)
    if left_s < right_s:
        return -1
    if left_s > right_s:
        return 1
    return 0
