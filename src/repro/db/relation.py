"""Records and relations.

A :class:`Record` is an immutable tuple of scalar values interpreted through a
:class:`~repro.db.schema.Schema`.  A :class:`Relation` is an ordered bag of
records sharing one schema.  Relations are the unit of storage in the
database catalog, the unit of input to the relational-algebra operators and —
serialised record by record — the unit of input to the simulated MapReduce
runtime.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.db.errors import SchemaError
from repro.db.schema import Schema


class Record:
    """One tuple of a relation, addressable by attribute name or position."""

    __slots__ = ("schema", "values")

    def __init__(self, schema: Schema, values: Sequence[Any], coerce: bool = True) -> None:
        if len(values) != len(schema):
            raise SchemaError(
                f"record arity {len(values)} does not match schema "
                f"{schema.name!r} arity {len(schema)}"
            )
        self.schema = schema
        if coerce:
            self.values: Tuple[Any, ...] = tuple(
                attribute.coerce(value) for attribute, value in zip(schema.attributes, values)
            )
        else:
            self.values = tuple(values)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __getitem__(self, key: Any) -> Any:
        if isinstance(key, int):
            return self.values[key]
        return self.values[self.schema.position_of(key)]

    def get(self, name: str, default: Any = None) -> Any:
        """Value of attribute ``name`` or ``default`` when absent."""
        if not self.schema.has_attribute(name):
            return default
        return self.values[self.schema.position_of(name)]

    def as_dict(self) -> Dict[str, Any]:
        """The record as an ``{attribute: value}`` mapping."""
        return dict(zip(self.schema.attribute_names, self.values))

    def key(self, names: Sequence[str]) -> Tuple[Any, ...]:
        """The tuple of values for ``names`` (grouping / join keys)."""
        return tuple(self[name] for name in names)

    def text_values(self) -> List[str]:
        """Non-null values rendered as text, in schema order.

        This is how db-page content is derived from records throughout the
        reproduction: every projected attribute value contributes its textual
        rendering to the page.
        """
        rendered: List[str] = []
        for value in self.values:
            if value is None:
                continue
            if isinstance(value, float) and value.is_integer():
                rendered.append(str(int(value)))
            else:
                rendered.append(str(value))
        return rendered

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self.values == other.values and self.schema.attribute_names == other.schema.attribute_names

    def __hash__(self) -> int:
        return hash((self.schema.attribute_names, self.values))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(f"{n}={v!r}" for n, v in zip(self.schema.attribute_names, self.values))
        return f"Record({self.schema.name}: {pairs})"


class Relation:
    """An ordered bag of :class:`Record` objects sharing one schema."""

    def __init__(self, schema: Schema, records: Optional[Iterable[Any]] = None) -> None:
        self.schema = schema
        self._records: List[Record] = []
        if records is not None:
            for record in records:
                self.insert(record)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, record: Any) -> Record:
        """Insert ``record`` (a :class:`Record`, mapping or sequence) and return it."""
        self._records.append(self._adapt(record))
        return self._records[-1]

    def extend(self, records: Iterable[Any]) -> None:
        """Insert many records."""
        for record in records:
            self.insert(record)

    def delete(self, predicate: Callable[[Record], bool]) -> int:
        """Delete records matching ``predicate``; return how many were removed."""
        before = len(self._records)
        self._records = [record for record in self._records if not predicate(record)]
        return before - len(self._records)

    def _adapt(self, record: Any) -> Record:
        if isinstance(record, Record):
            if record.schema.attribute_names != self.schema.attribute_names:
                raise SchemaError(
                    f"record schema {record.schema.name!r} incompatible with "
                    f"relation {self.schema.name!r}"
                )
            return record
        if isinstance(record, dict):
            missing = [name for name in self.schema.attribute_names if name not in record]
            if missing:
                raise SchemaError(
                    f"record for {self.schema.name!r} missing attributes {missing}"
                )
            values = [record[name] for name in self.schema.attribute_names]
            return Record(self.schema, values)
        return Record(self.schema, list(record))

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def records(self) -> Tuple[Record, ...]:
        """All records, in insertion order."""
        return tuple(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.schema.name!r}, {len(self)} records)"

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def distinct_values(self, attribute: str) -> List[Any]:
        """Sorted distinct non-null values of ``attribute``."""
        seen = {record[attribute] for record in self._records}
        seen.discard(None)
        try:
            return sorted(seen)
        except TypeError:
            return sorted(seen, key=str)

    def filter(self, predicate: Callable[[Record], bool], name: Optional[str] = None) -> "Relation":
        """A new relation containing only records matching ``predicate``."""
        result = Relation(self.schema.renamed(name) if name else self.schema)
        for record in self._records:
            if predicate(record):
                result.insert(record)
        return result

    def approximate_bytes(self) -> int:
        """A rough serialized size, used by the MapReduce cost model."""
        total = 0
        for record in self._records:
            for value in record.values:
                if value is None:
                    total += 1
                elif isinstance(value, str):
                    total += len(value) + 1
                else:
                    total += 9
        return total

    def to_rows(self) -> List[Tuple[Any, ...]]:
        """Raw value tuples, in insertion order."""
        return [record.values for record in self._records]
