"""Relational database substrate used by the Dash reproduction.

The package provides a small but complete in-memory relational engine:

* :mod:`repro.db.types` — attribute domains and value coercion.
* :mod:`repro.db.schema` — attributes, relation schemas, keys and foreign keys.
* :mod:`repro.db.relation` — records and relations (bags of typed records).
* :mod:`repro.db.algebra` — relational-algebra operators (select, project,
  inner/left-outer join, grouping and aggregation).
* :mod:`repro.db.query` — the parameterized project-select-join (PSJ) query
  model of Definition 1 in the paper, with binding and evaluation.
* :mod:`repro.db.sqlparse` — a parser for the paper's SQL dialect
  (``SELECT ... FROM (R JOIN S) JOIN T WHERE c = $p AND a BETWEEN $l AND $u``).
* :mod:`repro.db.database` — a named catalog of relations with referential
  integrity checking.

Everything in here is deterministic and dependency free so that the MapReduce
crawler, the web-application model and the baselines can all share it.
"""

from repro.db.algebra import (
    aggregate,
    cross_join,
    group_by,
    inner_join,
    left_outer_join,
    project,
    select,
)
from repro.db.database import Database
from repro.db.errors import (
    DatabaseError,
    IntegrityError,
    QueryError,
    SchemaError,
    SQLParseError,
)
from repro.db.query import (
    BetweenCondition,
    Comparison,
    JoinClause,
    Parameter,
    ParameterizedPSJQuery,
    QueryResult,
)
from repro.db.relation import Record, Relation
from repro.db.schema import Attribute, ForeignKey, Schema
from repro.db.sqlparse import parse_psj_query
from repro.db.types import AttributeType

__all__ = [
    "Attribute",
    "AttributeType",
    "BetweenCondition",
    "Comparison",
    "Database",
    "DatabaseError",
    "ForeignKey",
    "IntegrityError",
    "JoinClause",
    "Parameter",
    "ParameterizedPSJQuery",
    "QueryError",
    "QueryResult",
    "Record",
    "Relation",
    "SQLParseError",
    "Schema",
    "SchemaError",
    "aggregate",
    "cross_join",
    "group_by",
    "inner_join",
    "left_outer_join",
    "parse_psj_query",
    "project",
    "select",
]
