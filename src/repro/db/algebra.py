"""Relational-algebra operators.

Only the operators the paper's application queries need are provided:
selection, projection, inner join, left outer join, cross join and grouping
with simple aggregates.  Joins are hash joins on explicit equality key pairs;
the output schema concatenates both input schemas, dropping the right-hand
copy of every join key (so joining ``restaurant`` with ``comment`` on ``rid``
yields one ``rid`` column, as in the paper's Figure 7).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.errors import QueryError
from repro.db.relation import Record, Relation
from repro.db.schema import Attribute, Schema
from repro.db.types import AttributeType


JoinKeys = Sequence[Tuple[str, str]]


def select(relation: Relation, predicate: Callable[[Record], bool], name: Optional[str] = None) -> Relation:
    """``sigma_predicate(relation)``."""
    return relation.filter(predicate, name=name)


def project(relation: Relation, attributes: Sequence[str], name: Optional[str] = None) -> Relation:
    """``pi_attributes(relation)`` (bag semantics: duplicates are kept)."""
    for attribute in attributes:
        if not relation.schema.has_attribute(attribute):
            raise QueryError(
                f"cannot project unknown attribute {attribute!r} from {relation.schema.name!r}"
            )
    schema = relation.schema.subset(attributes, new_name=name or relation.schema.name)
    result = Relation(schema)
    for record in relation:
        result.insert(Record(schema, [record[a] for a in attributes], coerce=False))
    return result


def _joined_schema(left: Schema, right: Schema, right_drop: Sequence[str], name: Optional[str]) -> Tuple[Schema, List[str]]:
    """Schema of a join output plus the kept right-hand attribute names."""
    kept_right = [a for a in right.attribute_names if a not in set(right_drop)]
    attributes: List[Attribute] = list(left.attributes)
    taken = set(left.attribute_names)
    output_right_names: List[str] = []
    for attr_name in kept_right:
        attribute = right.attribute(attr_name)
        out_name = attr_name
        if out_name in taken:
            out_name = f"{right.name}.{attr_name}"
        taken.add(out_name)
        attributes.append(Attribute(out_name, attribute.type))
        output_right_names.append(attr_name)
    schema = Schema(name or f"{left.name}_{right.name}", attributes)
    return schema, output_right_names


def _validate_join_keys(left: Relation, right: Relation, on: JoinKeys) -> None:
    if not on:
        raise QueryError("join requires at least one key pair")
    for left_key, right_key in on:
        if not left.schema.has_attribute(left_key):
            raise QueryError(f"join key {left_key!r} not in {left.schema.name!r}")
        if not right.schema.has_attribute(right_key):
            raise QueryError(f"join key {right_key!r} not in {right.schema.name!r}")


def inner_join(left: Relation, right: Relation, on: JoinKeys, name: Optional[str] = None) -> Relation:
    """Equi inner join of ``left`` and ``right`` on the given key pairs."""
    return _hash_join(left, right, on, keep_unmatched_left=False, name=name)


def left_outer_join(left: Relation, right: Relation, on: JoinKeys, name: Optional[str] = None) -> Relation:
    """Left outer equi join: unmatched left records appear padded with NULLs.

    The paper's example application query uses
    ``(restaurant LEFT JOIN comment) JOIN customer`` so that restaurants
    without comments still contribute rows to db-pages.
    """
    return _hash_join(left, right, on, keep_unmatched_left=True, name=name)


def _hash_join(
    left: Relation,
    right: Relation,
    on: JoinKeys,
    keep_unmatched_left: bool,
    name: Optional[str],
) -> Relation:
    _validate_join_keys(left, right, on)
    left_keys = [pair[0] for pair in on]
    right_keys = [pair[1] for pair in on]
    schema, kept_right = _joined_schema(left.schema, right.schema, right_keys, name)

    buckets: Dict[Tuple[Any, ...], List[Record]] = defaultdict(list)
    for record in right:
        key = record.key(right_keys)
        if any(value is None for value in key):
            continue
        buckets[key].append(record)

    result = Relation(schema)
    null_pad = [None] * len(kept_right)
    for record in left:
        key = record.key(left_keys)
        matches = buckets.get(key, []) if not any(v is None for v in key) else []
        if matches:
            for match in matches:
                values = list(record.values) + [match[a] for a in kept_right]
                result.insert(Record(schema, values, coerce=False))
        elif keep_unmatched_left:
            values = list(record.values) + null_pad
            result.insert(Record(schema, values, coerce=False))
    return result


def cross_join(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Cartesian product (used only by tests and small examples)."""
    schema, kept_right = _joined_schema(left.schema, right.schema, [], name)
    result = Relation(schema)
    for left_record in left:
        for right_record in right:
            values = list(left_record.values) + [right_record[a] for a in kept_right]
            result.insert(Record(schema, values, coerce=False))
    return result


def group_by(relation: Relation, keys: Sequence[str]) -> Dict[Tuple[Any, ...], List[Record]]:
    """Group records by the values of ``keys`` (insertion order preserved)."""
    for key in keys:
        if not relation.schema.has_attribute(key):
            raise QueryError(f"cannot group by unknown attribute {key!r}")
    groups: Dict[Tuple[Any, ...], List[Record]] = {}
    for record in relation:
        groups.setdefault(record.key(keys), []).append(record)
    return groups


def aggregate(
    relation: Relation,
    keys: Sequence[str],
    aggregates: Dict[str, Tuple[str, Optional[str]]],
    name: Optional[str] = None,
) -> Relation:
    """Grouped aggregation, e.g. the paper's ``c_i, j_i G count(*) as theta_i``.

    ``aggregates`` maps output attribute name to ``(function, input_attribute)``
    where function is one of ``count``, ``sum``, ``min``, ``max`` and the input
    attribute may be ``None`` for ``count(*)``.
    """
    groups = group_by(relation, keys)
    attributes = [relation.schema.attribute(key) for key in keys]
    for out_name, (function, _input_attr) in aggregates.items():
        attr_type = AttributeType.INT if function == "count" else AttributeType.FLOAT
        attributes.append(Attribute(out_name, attr_type))
    schema = Schema(name or f"{relation.schema.name}_agg", attributes)
    result = Relation(schema)
    for key, records in groups.items():
        values: List[Any] = list(key)
        for out_name, (function, input_attr) in aggregates.items():
            values.append(_apply_aggregate(function, input_attr, records))
        result.insert(Record(schema, values, coerce=False))
    return result


def _apply_aggregate(function: str, input_attr: Optional[str], records: List[Record]) -> Any:
    if function == "count":
        if input_attr is None:
            return len(records)
        return sum(1 for record in records if record[input_attr] is not None)
    values = [record[input_attr] for record in records if record[input_attr] is not None]
    if not values:
        return None
    if function == "sum":
        return sum(values)
    if function == "min":
        return min(values)
    if function == "max":
        return max(values)
    raise QueryError(f"unknown aggregate function {function!r}")
