"""The inverted fragment index (Section V, Figure 6).

Structurally identical to a conventional inverted file, but the indexed
"documents" are db-page fragment identifiers: for every keyword ``w`` the
index keeps the list of ``(fragment identifier, occurrences)`` pairs sorted by
descending occurrence count.  The index additionally records every fragment's
total keyword count (its *size*), which the fragment graph displays on its
nodes and the top-k search uses against the size threshold ``s``.

Storage is delegated to a pluggable :class:`~repro.store.FragmentStore`
backend: the index canonicalises its inputs (keywords lower-cased, fragment
identifiers coerced to tuples) and programs against the store interface, so
the same code serves the single-partition :class:`~repro.store.InMemoryStore`
and the hash-partitioned :class:`~repro.store.ShardedStore`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.fragments import Fragment, FragmentId
from repro.store.base import FragmentStore
from repro.store.memory import InMemoryStore
from repro.text.inverted_index import Posting


class InvertedFragmentIndex:
    """Keyword → sorted list of (fragment identifier, occurrence count)."""

    def __init__(self, store: Optional[FragmentStore] = None) -> None:
        self._store = store if store is not None else InMemoryStore()

    @property
    def store(self) -> FragmentStore:
        """The storage backend (shared with the fragment graph by the engine)."""
        return self._store

    @property
    def shard_count(self) -> int:
        return self._store.shard_count

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_fragments(
        cls,
        fragments: Mapping[FragmentId, Fragment],
        store: Optional[FragmentStore] = None,
    ) -> "InvertedFragmentIndex":
        """Build the index from fully-derived fragments (reference path)."""
        index = cls(store=store)
        for identifier, fragment in fragments.items():
            index.add_fragment(identifier, fragment.term_frequencies)
        index.finalize()
        return index

    @classmethod
    def from_posting_lists(
        cls,
        posting_lists: Mapping[str, Sequence[Tuple[FragmentId, int]]],
        store: Optional[FragmentStore] = None,
    ) -> "InvertedFragmentIndex":
        """Build the index from consolidated ``keyword -> [(fragment, count)]`` lists.

        This is the format both MapReduce crawling workflows leave behind in
        their final output file, which makes this classmethod the crawl→store
        loading path: pass ``store=`` to land the crawl output directly in the
        serving backend.
        """
        index = cls(store=store)
        for keyword, postings in posting_lists.items():
            for identifier, occurrences in postings:
                index._add_occurrences(keyword, tuple(identifier), int(occurrences))
        index.finalize()
        return index

    def add_fragment(self, identifier: FragmentId, term_frequencies: Mapping[str, int]) -> None:
        """Index one fragment's keyword counts."""
        identifier = tuple(identifier)
        if self._store.has_fragment(identifier):
            raise ValueError(f"fragment {identifier!r} already indexed")
        self._store.touch_fragment(identifier)
        for keyword, occurrences in term_frequencies.items():
            if occurrences > 0:
                self._add_occurrences(keyword, identifier, occurrences)

    def _add_occurrences(self, keyword: str, identifier: FragmentId, occurrences: int) -> None:
        self._store.add_posting(keyword.lower(), identifier, occurrences)

    def remove_fragment(self, identifier: FragmentId) -> None:
        """Remove every posting of ``identifier`` (no-op when absent)."""
        self._store.remove_fragment(tuple(identifier))

    def replace_fragment(self, identifier: FragmentId, term_frequencies: Mapping[str, int]) -> None:
        """Replace a fragment's postings (incremental maintenance).

        A single store operation, so on partitioned backends the swap happens
        atomically inside the fragment's owning shard.
        """
        identifier = tuple(identifier)
        # Pairs, not a dict: distinct keys that lower-case to the same keyword
        # must accumulate exactly as repeated add_fragment postings would.
        canonical = [
            (keyword.lower(), occurrences)
            for keyword, occurrences in term_frequencies.items()
            if occurrences > 0
        ]
        self._store.replace_fragment(identifier, canonical)
        if term_frequencies:
            self._store.touch_fragment(identifier)

    def apply_mutations(self, batch) -> int:
        """Apply a batch of replace/remove/touch ops as one store operation.

        ``batch`` holds :mod:`repro.store.mutations` ops; replace ops are
        canonicalised exactly like :meth:`replace_fragment` (identifiers
        coerced to tuples, keywords lower-cased — distinct keys that
        lower-case to the same keyword accumulate, non-positive counts
        dropped) before the store sees them.  The store applies the whole
        batch natively — one dictionary pass, one per-shard fan-out, or one
        crash-safe transaction — and ticks its epoch clock once.  Returns
        the number of ops applied after coalescing.
        """
        from repro.store.mutations import ReplaceFragment, replace_op

        canonical = []
        for op in batch:
            if isinstance(op, ReplaceFragment):
                items = (
                    op.term_frequencies.items()
                    if hasattr(op.term_frequencies, "items")
                    else op.term_frequencies
                )
                # Only the lower-casing is facade business; identifier
                # coercion and count filtering live in replace_op, and the
                # store's normalize_mutations re-validates everything else
                # (including rejecting unknown op types).
                canonical.append(
                    replace_op(
                        op.identifier,
                        [(keyword.lower(), occurrences) for keyword, occurrences in items],
                    )
                )
            else:
                canonical.append(op)
        return self._store.apply_mutations(canonical)

    def finalize(self) -> None:
        """Sort every inverted list by descending occurrence count."""
        self._store.finalize()

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def postings(self, keyword: str) -> Tuple[Posting, ...]:
        """The inverted list of ``keyword`` (sorted, possibly empty)."""
        return self._store.postings(keyword.lower())

    def postings_for_many(self, keywords: Sequence[str]) -> Dict[str, Tuple[Posting, ...]]:
        """The inverted lists of all ``keywords`` in one batched store read.

        Keys are the canonical (lower-cased) keywords.  This is the scorer's
        construction path: a multi-keyword query costs one shard fan-out /
        one sqlite query instead of one per keyword.
        """
        return self._store.postings_for_many([keyword.lower() for keyword in keywords])

    def fragment_frequency(self, keyword: str) -> int:
        """Number of fragments containing ``keyword`` (the DF Dash uses for IDF)."""
        return self._store.fragment_frequency(keyword.lower())

    def document_frequencies(self) -> Dict[str, int]:
        """DF of every keyword in the vocabulary."""
        return self._store.document_frequencies()

    def idf(self, keyword: str) -> float:
        """Dash's IDF approximation: the inverse of the fragment frequency."""
        frequency = self.fragment_frequency(keyword)
        return 1.0 / frequency if frequency else 0.0

    def term_frequency(self, keyword: str, identifier: FragmentId) -> int:
        """Occurrences of ``keyword`` in fragment ``identifier``."""
        return self._store.term_frequency(keyword.lower(), tuple(identifier))

    def fragment_term_frequencies(self, identifier: FragmentId) -> Dict[str, int]:
        """All keyword counts of one fragment (maintenance/tests)."""
        return self._store.fragment_term_frequencies(tuple(identifier))

    def fragment_size(self, identifier: FragmentId) -> int:
        """Total keyword occurrences of ``identifier`` (0 when unknown)."""
        return self._store.fragment_size(tuple(identifier))

    @property
    def fragment_sizes(self) -> Dict[FragmentId, int]:
        return self._store.fragment_sizes()

    def fragment_ids(self) -> Tuple[FragmentId, ...]:
        return self._store.fragment_ids()

    @property
    def fragment_count(self) -> int:
        return self._store.fragment_count()

    @property
    def vocabulary(self) -> Tuple[str, ...]:
        return self._store.vocabulary()

    def __contains__(self, keyword: str) -> bool:
        return self._store.fragment_frequency(keyword.lower()) > 0

    def __len__(self) -> int:
        return self._store.vocabulary_size()

    def average_keywords_per_fragment(self) -> float:
        """The Table IV statistic, computed from the index itself."""
        sizes = self._store.fragment_sizes()
        if not sizes:
            return 0.0
        return sum(sizes.values()) / len(sizes)

    def approximate_bytes(self) -> int:
        """Rough serialized size of the index (ablation benchmarks)."""
        return self._store.approximate_bytes()

    def iter_items(self) -> Iterator[Tuple[str, Tuple[Posting, ...]]]:
        """Iterate ``(keyword, postings)`` in keyword order."""
        return self._store.iter_items()
