"""The inverted fragment index (Section V, Figure 6).

Structurally identical to a conventional inverted file, but the indexed
"documents" are db-page fragment identifiers: for every keyword ``w`` the
index keeps the list of ``(fragment identifier, occurrences)`` pairs sorted by
descending occurrence count.  The index additionally records every fragment's
total keyword count (its *size*), which the fragment graph displays on its
nodes and the top-k search uses against the size threshold ``s``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.fragments import Fragment, FragmentId
from repro.text.inverted_index import Posting


class InvertedFragmentIndex:
    """Keyword → sorted list of (fragment identifier, occurrence count)."""

    def __init__(self) -> None:
        self._postings: Dict[str, List[Posting]] = {}
        self._fragment_sizes: Dict[FragmentId, int] = {}
        self._sorted = True

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_fragments(cls, fragments: Mapping[FragmentId, Fragment]) -> "InvertedFragmentIndex":
        """Build the index from fully-derived fragments (reference path)."""
        index = cls()
        for identifier, fragment in fragments.items():
            index.add_fragment(identifier, fragment.term_frequencies)
        index.finalize()
        return index

    @classmethod
    def from_posting_lists(
        cls,
        posting_lists: Mapping[str, Sequence[Tuple[FragmentId, int]]],
    ) -> "InvertedFragmentIndex":
        """Build the index from consolidated ``keyword -> [(fragment, count)]`` lists.

        This is the format both MapReduce crawling workflows leave behind in
        their final output file.
        """
        index = cls()
        for keyword, postings in posting_lists.items():
            for identifier, occurrences in postings:
                index._add_occurrences(keyword, tuple(identifier), int(occurrences))
        index.finalize()
        return index

    def add_fragment(self, identifier: FragmentId, term_frequencies: Mapping[str, int]) -> None:
        """Index one fragment's keyword counts."""
        identifier = tuple(identifier)
        if identifier in self._fragment_sizes:
            raise ValueError(f"fragment {identifier!r} already indexed")
        self._fragment_sizes[identifier] = 0
        for keyword, occurrences in term_frequencies.items():
            if occurrences > 0:
                self._add_occurrences(keyword, identifier, occurrences)

    def _add_occurrences(self, keyword: str, identifier: FragmentId, occurrences: int) -> None:
        keyword = keyword.lower()
        self._postings.setdefault(keyword, []).append(Posting(identifier, occurrences))
        self._fragment_sizes[identifier] = self._fragment_sizes.get(identifier, 0) + occurrences
        self._sorted = False

    def remove_fragment(self, identifier: FragmentId) -> None:
        """Remove every posting of ``identifier`` (no-op when absent)."""
        identifier = tuple(identifier)
        if identifier not in self._fragment_sizes:
            return
        del self._fragment_sizes[identifier]
        empty = []
        for keyword, postings in self._postings.items():
            kept = [posting for posting in postings if posting.document_id != identifier]
            if len(kept) != len(postings):
                self._postings[keyword] = kept
            if not kept:
                empty.append(keyword)
        for keyword in empty:
            del self._postings[keyword]

    def replace_fragment(self, identifier: FragmentId, term_frequencies: Mapping[str, int]) -> None:
        """Replace a fragment's postings (incremental maintenance)."""
        self.remove_fragment(identifier)
        if term_frequencies:
            self.add_fragment(identifier, term_frequencies)

    def finalize(self) -> None:
        """Sort every inverted list by descending occurrence count."""
        if self._sorted:
            return
        for postings in self._postings.values():
            postings.sort(key=lambda posting: (-posting.term_frequency, str(posting.document_id)))
        self._sorted = True

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def postings(self, keyword: str) -> Tuple[Posting, ...]:
        """The inverted list of ``keyword`` (sorted, possibly empty)."""
        self.finalize()
        return tuple(self._postings.get(keyword.lower(), ()))

    def fragment_frequency(self, keyword: str) -> int:
        """Number of fragments containing ``keyword`` (the DF Dash uses for IDF)."""
        return len(self._postings.get(keyword.lower(), ()))

    def document_frequencies(self) -> Dict[str, int]:
        """DF of every keyword in the vocabulary."""
        return {keyword: len(postings) for keyword, postings in self._postings.items()}

    def idf(self, keyword: str) -> float:
        """Dash's IDF approximation: the inverse of the fragment frequency."""
        frequency = self.fragment_frequency(keyword)
        return 1.0 / frequency if frequency else 0.0

    def term_frequency(self, keyword: str, identifier: FragmentId) -> int:
        """Occurrences of ``keyword`` in fragment ``identifier``."""
        identifier = tuple(identifier)
        for posting in self._postings.get(keyword.lower(), ()):
            if posting.document_id == identifier:
                return posting.term_frequency
        return 0

    def fragment_term_frequencies(self, identifier: FragmentId) -> Dict[str, int]:
        """All keyword counts of one fragment (linear scan; maintenance/tests)."""
        identifier = tuple(identifier)
        frequencies: Dict[str, int] = {}
        for keyword, postings in self._postings.items():
            for posting in postings:
                if posting.document_id == identifier:
                    frequencies[keyword] = posting.term_frequency
                    break
        return frequencies

    def fragment_size(self, identifier: FragmentId) -> int:
        """Total keyword occurrences of ``identifier`` (0 when unknown)."""
        return self._fragment_sizes.get(tuple(identifier), 0)

    @property
    def fragment_sizes(self) -> Dict[FragmentId, int]:
        return dict(self._fragment_sizes)

    def fragment_ids(self) -> Tuple[FragmentId, ...]:
        return tuple(self._fragment_sizes)

    @property
    def fragment_count(self) -> int:
        return len(self._fragment_sizes)

    @property
    def vocabulary(self) -> Tuple[str, ...]:
        return tuple(self._postings)

    def __contains__(self, keyword: str) -> bool:
        return keyword.lower() in self._postings

    def __len__(self) -> int:
        return len(self._postings)

    def average_keywords_per_fragment(self) -> float:
        """The Table IV statistic, computed from the index itself."""
        if not self._fragment_sizes:
            return 0.0
        return sum(self._fragment_sizes.values()) / len(self._fragment_sizes)

    def approximate_bytes(self) -> int:
        """Rough serialized size of the index (ablation benchmarks)."""
        total = 0
        for keyword, postings in self._postings.items():
            total += len(keyword) + 1
            for posting in postings:
                total += 8
                for component in posting.document_id:
                    total += len(str(component)) + 1
        return total

    def iter_items(self) -> Iterator[Tuple[str, Tuple[Posting, ...]]]:
        """Iterate ``(keyword, postings)`` in keyword order."""
        self.finalize()
        for keyword in sorted(self._postings):
            yield keyword, tuple(self._postings[keyword])
