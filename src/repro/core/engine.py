"""The Dash engine facade (Figure 4).

Wires the whole pipeline together for one web application over one database:

1. **Web application analysis** — recover the parameterized PSJ query and the
   reverse query-string parsing logic from the application source (skipped
   when the caller already has a fully-specified :class:`WebApplication`).
2. **Database crawling + fragment indexing** — run the stepwise or the
   integrated MapReduce workflow to build the inverted fragment index,
   loading the consolidated posting lists straight into the configured
   :class:`~repro.store.FragmentStore` backend.
3. **Fragment graph construction** — build the combinability graph, into the
   same store.
4. **Top-k search** — answer keyword queries with db-page URLs (fanning
   lookups out over the store's shards when it is partitioned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.analyzer import AnalyzedApplication, ApplicationAnalyzer
from repro.core.crawler import (
    CrawlResult,
    IntegratedCrawler,
    PartitionedCrawlFrontier,
    StepwiseCrawler,
)
from repro.core.fragment_graph import FragmentGraph, GraphBuildReport
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.search import SearchResult, SearchSession, TopKSearcher
from repro.core.urls import UrlFormulator
from repro.db.database import Database
from repro.mapreduce.runtime import MapReduceRuntime, RetryPolicy
from repro.store import FragmentStore, StoreSpec, resolve_store
from repro.webapp.application import WebApplication

if TYPE_CHECKING:  # runtime import would be circular through repro.core
    from repro.build.pipeline import BuildReport
    from repro.cluster.router import ClusterSearchService, NodeStoreSpec
    from repro.faults.plane import FaultPlane
    from repro.serving.service import SearchService


class DashEngineError(Exception):
    """Raised for invalid engine configuration."""


_CRAWLERS = {
    "stepwise": StepwiseCrawler,
    "integrated": IntegratedCrawler,
}


def _close_store(store: FragmentStore) -> None:
    """Close a backend if it holds external resources (DiskStore does)."""
    close = getattr(store, "close", None)
    if close is not None:
        close()


@dataclass
class DashBuildReport:
    """Everything measured while building an engine (used by benchmarks).

    Exactly one of ``crawl`` (a :meth:`DashEngine.build` MapReduce crawl) and
    ``pipeline`` (a :meth:`DashEngine.build_distributed` batch build) is set.
    """

    graph: GraphBuildReport
    crawl: Optional[CrawlResult] = None
    analyzed: Optional[AnalyzedApplication] = None
    pipeline: Optional["BuildReport"] = None


class DashEngine:
    """A built, searchable Dash instance for one web application.

    Construct one with :meth:`build` (analyse + crawl + index into the
    configured store) or :meth:`open` (re-attach to a persistent store a
    previous process built — no crawl).  ``build_report`` is ``None`` for
    reopened engines: nothing was measured because nothing was built.
    """

    def __init__(
        self,
        application: WebApplication,
        database: Database,
        index: InvertedFragmentIndex,
        graph: FragmentGraph,
        build_report: Optional[DashBuildReport],
    ) -> None:
        self.application = application
        self.database = database
        self.index = index
        self.graph = graph
        self.build_report = build_report
        self._searcher = TopKSearcher(
            index=index,
            graph=graph,
            url_formulator=UrlFormulator(
                query=application.query,
                query_string_spec=application.query_string_spec,
                application_uri=application.uri,
            ),
        )
        # One long-lived session per engine: scorers and neighbour lists are
        # reused across searches and invalidated by the store's mutation epoch.
        self._session = self._searcher.session()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        application: WebApplication,
        database: Database,
        algorithm: str = "integrated",
        runtime: Optional[MapReduceRuntime] = None,
        analyze_source: bool = True,
        presorted_graph: bool = True,
        num_reduce_tasks: int = 4,
        store: StoreSpec = None,
        shards: Optional[int] = None,
        store_path: Optional[str] = None,
    ) -> "DashEngine":
        """Analyse, crawl, index and wire up a searchable engine.

        ``algorithm`` selects the crawling workflow (``"integrated"`` — the
        paper's recommendation — or ``"stepwise"``).  When ``analyze_source``
        is true and the application carries servlet source, the application's
        query and query-string mapping are recovered from the source through
        :class:`~repro.analysis.analyzer.ApplicationAnalyzer` (the path Dash
        itself takes); otherwise the application's declared query is trusted.

        ``store`` selects the serving backend (see
        :func:`repro.store.resolve_store`): ``"memory"`` (default),
        ``"sharded"`` together with ``shards=N`` for a hash-partitioned store
        whose lookups fan out in parallel, or ``"disk"`` together with
        ``store_path=`` for a persistent sqlite store a later process can
        re-attach to with :meth:`open` — no re-crawl.  The crawl output, the
        fragment graph and the searcher all share the resolved store.
        """
        if algorithm not in _CRAWLERS:
            raise DashEngineError(
                f"unknown crawling algorithm {algorithm!r}; expected one of {sorted(_CRAWLERS)}"
            )
        try:
            fragment_store = resolve_store(store, shards=shards, path=store_path)
        except Exception as error:
            raise DashEngineError(str(error)) from error
        if fragment_store.fragment_count() or fragment_store.node_count():
            # Loading a second crawl into a populated store would duplicate
            # postings and corrupt every TF denominator before anything fails.
            if not isinstance(store, FragmentStore):
                # We resolved (and for "disk", opened) this backend ourselves;
                # don't hold its file open past the rejection.  A caller-owned
                # instance stays the caller's to manage.
                _close_store(fragment_store)
            raise DashEngineError(
                "the configured store already holds fragments; build each engine "
                "over a fresh FragmentStore"
            )

        effective_application, analyzed = cls._effective_application(
            application, database, analyze_source
        )

        crawler_cls = _CRAWLERS[algorithm]
        crawler = crawler_cls(
            query=effective_application.query,
            database=database,
            runtime=runtime,
            num_reduce_tasks=num_reduce_tasks,
            store=fragment_store,
        )
        crawl_result = crawler.crawl()

        graph, graph_report = FragmentGraph.build_with_report(
            effective_application.query,
            crawl_result.index.fragment_sizes,
            presorted=presorted_graph,
            store=fragment_store,
        )
        report = DashBuildReport(crawl=crawl_result, graph=graph_report, analyzed=analyzed)
        return cls(
            application=effective_application,
            database=database,
            index=crawl_result.index,
            graph=graph,
            build_report=report,
        )

    @classmethod
    def build_distributed(
        cls,
        application: WebApplication,
        database: Database,
        source: Any = None,
        map_tasks: int = 4,
        num_reduce_tasks: int = 4,
        workers: int = 2,
        workdir: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        analyze_source: bool = True,
        presorted_graph: bool = True,
        store: StoreSpec = None,
        shards: Optional[int] = None,
        store_path: Optional[str] = None,
    ) -> "DashEngine":
        """Build a searchable engine through the distributed batch pipeline.

        The batch-scale sibling of :meth:`build`: instead of running the
        MapReduce crawl simulation, the corpus is split into ``map_tasks``
        partitioned crawl jobs and driven through
        :class:`~repro.build.BuildPipeline` — map tasks emit per-reduce
        posting spools, ``num_reduce_tasks`` reduce tasks sort them into
        per-shard runs, and (for a disk target) each run is bulk-loaded into
        its own shard file in parallel across ``workers`` before a final
        merge into the serving store.  The resulting store, index, graph and
        searcher are byte-identical to :meth:`build`'s, so everything
        downstream — :meth:`serving`, :meth:`cluster`, a later
        :meth:`open` — attaches unchanged.

        ``source`` is any object with the ``partitions(count)`` streaming
        protocol; it defaults to a
        :class:`~repro.core.crawler.PartitionedCrawlFrontier` over the
        application's (possibly source-recovered) query.  ``retry_policy``
        governs worker-failure retries (and carries the test suite's fault
        injector); ``workdir`` pins the spool/shard directory (a temporary
        directory otherwise).  Store selection (``store``/``shards``/
        ``store_path``) matches :meth:`build`.
        """
        # Imported here: repro.build programs against repro.core and the
        # stores, so a module-level import would be circular.
        from repro.build.pipeline import BuildPipeline

        try:
            fragment_store = resolve_store(store, shards=shards, path=store_path)
        except Exception as error:
            raise DashEngineError(str(error)) from error
        if fragment_store.fragment_count() or fragment_store.node_count():
            if not isinstance(store, FragmentStore):
                _close_store(fragment_store)
            raise DashEngineError(
                "the configured store already holds fragments; build each engine "
                "over a fresh FragmentStore"
            )

        effective_application, analyzed = cls._effective_application(
            application, database, analyze_source
        )
        if source is None:
            source = PartitionedCrawlFrontier(effective_application.query, database)

        pipeline = BuildPipeline(
            source,
            map_tasks=map_tasks,
            reduce_tasks=num_reduce_tasks,
            workers=workers,
            workdir=workdir,
            retry_policy=retry_policy,
        )
        pipeline_report = pipeline.run(fragment_store)

        index = InvertedFragmentIndex(store=fragment_store)
        graph, graph_report = FragmentGraph.build_with_report(
            effective_application.query,
            index.fragment_sizes,
            presorted=presorted_graph,
            store=fragment_store,
        )
        report = DashBuildReport(
            graph=graph_report, analyzed=analyzed, pipeline=pipeline_report
        )
        return cls(
            application=effective_application,
            database=database,
            index=index,
            graph=graph,
            build_report=report,
        )

    @classmethod
    def open(
        cls,
        path: str,
        application: WebApplication,
        database: Database,
        analyze_source: bool = True,
        read_only: bool = False,
        exclusive_writer: bool = False,
    ) -> "DashEngine":
        """Re-attach to a persistent store a previous process built.

        Opens the :class:`~repro.store.DiskStore` at ``path`` (raising
        :class:`DashEngineError` when no store exists there — a typo'd path
        must not masquerade as an empty dataset) and wires the index, graph
        and searcher facades straight onto it: **no crawl runs**.  The store's
        epoch clock was persisted with the data, so a serving layer stacked on
        the reopened engine invalidates exactly like one that never restarted.

        ``application``/``database`` supply what the store does not hold —
        the PSJ query and query-string mapping that drive graph adjacency
        interpretation and result-URL formulation, and the live database
        future :class:`~repro.core.incremental.IncrementalMaintainer` runs
        consult.  ``analyze_source`` recovers them from servlet source
        exactly as :meth:`build` does.

        ``read_only``/``exclusive_writer`` select the store's multi-process
        role (see :class:`~repro.store.DiskStore`): several processes can
        open one file read-only and serve WAL snapshot reads while a single
        ``exclusive_writer`` process owns every mutation.
        """
        # Imported here: the store package is imported by repro.core modules,
        # and DiskStore lives behind the same resolution seam build() uses.
        from repro.store.disk import DiskStore

        try:
            fragment_store = DiskStore(
                path,
                create=False,
                read_only=read_only,
                exclusive_writer=exclusive_writer,
            )
        except Exception as error:
            raise DashEngineError(str(error)) from error
        if not fragment_store.fragment_count():
            fragment_store.close()  # don't hold the rejected file open
            raise DashEngineError(
                f"the disk store at {path!r} holds no fragments; build an engine "
                "over it first (DashEngine.build(..., store='disk', store_path=...))"
            )
        try:
            effective_application, _analyzed = cls._effective_application(
                application, database, analyze_source
            )
        except BaseException:
            fragment_store.close()
            raise
        index = InvertedFragmentIndex(store=fragment_store)
        graph = FragmentGraph(effective_application.query, store=fragment_store)
        return cls(
            application=effective_application,
            database=database,
            index=index,
            graph=graph,
            build_report=None,
        )

    @staticmethod
    def _effective_application(
        application: WebApplication, database: Database, analyze_source: bool
    ) -> Tuple[WebApplication, Optional[AnalyzedApplication]]:
        """The application with its query recovered from source when possible."""
        if not (analyze_source and application.source):
            return application, None
        analyzer = ApplicationAnalyzer(database)
        analyzed = analyzer.analyze(application.source, name=application.name)
        return (
            WebApplication(
                name=application.name,
                uri=application.uri,
                query=analyzed.query,
                query_string_spec=analyzed.query_string_spec,
                source=application.source,
            ),
            analyzed,
        )

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(
        self,
        keywords: Iterable[str],
        k: int = 10,
        size_threshold: int = 100,
    ) -> List[SearchResult]:
        """Top-``k`` db-page URLs for ``keywords`` (Algorithm 1)."""
        return self._searcher.search(
            keywords, k=k, size_threshold=size_threshold, session=self._session
        )

    def serving(
        self,
        cache_size: int = 1024,
        workers: int = 4,
        default_k: int = 10,
        default_size_threshold: int = 100,
        max_dependencies: int = 4096,
        maintenance: bool = False,
        maintenance_batch: int = 64,
        maintenance_delay_seconds: float = 0.005,
        strict_freshness: bool = False,
    ) -> "SearchService":
        """The blessed serving entry point: a cached, concurrent SearchService.

        Wraps this engine's searcher (sharing its epoch-invalidated session)
        in a :class:`~repro.serving.SearchService`: query admission, a
        versioned LRU result cache, and a thread pool for ``search_many``.

        ``maintenance=True`` additionally wires the write path: an
        :class:`~repro.core.incremental.IncrementalMaintainer` over this
        engine's database/index/graph, wrapped in a
        :class:`~repro.serving.MaintenanceService` (exposed as the returned
        service's ``.maintenance``) whose dedicated writer thread queues,
        coalesces and applies mutation batches — each batch atomic with
        respect to this service's search computations.
        ``maintenance_batch``/``maintenance_delay_seconds`` tune its
        coalescing; ``strict_freshness`` is the multi-process reader knob
        (see :class:`~repro.serving.SearchService`).
        """
        # Imported here: repro.serving programs against repro.core, so a
        # module-level import would be circular through repro.core.__init__.
        from repro.serving.service import SearchService

        service = SearchService(
            self._searcher,
            session=self._session,
            cache_size=cache_size,
            workers=workers,
            default_k=default_k,
            default_size_threshold=default_size_threshold,
            max_dependencies=max_dependencies,
            strict_freshness=strict_freshness,
        )
        if maintenance:
            from repro.core.incremental import IncrementalMaintainer
            from repro.serving.maintenance import MaintenanceService

            maintainer = IncrementalMaintainer(
                self.application.query, self.database, self.index, self.graph
            )
            service.maintenance = MaintenanceService(
                maintainer,
                service=service,
                max_batch=maintenance_batch,
                max_delay_seconds=maintenance_delay_seconds,
            )
        return service

    def cluster(
        self,
        nodes: int = 2,
        replicas: int = 1,
        partitions: Optional[int] = None,
        node_store: "NodeStoreSpec" = "memory",
        store_dir: Optional[str] = None,
        cache_size: int = 1024,
        workers: int = 4,
        default_k: int = 10,
        default_size_threshold: int = 100,
        max_dependencies: int = 4096,
        fault_plane: Optional["FaultPlane"] = None,
        deadline_seconds: Optional[float] = None,
        degraded_ok: bool = False,
        breaker_threshold: int = 3,
        breaker_reset_seconds: float = 0.5,
    ) -> "ClusterSearchService":
        """Serve this engine's corpus from a simulated multi-node cluster.

        Partitions the built corpus across ``nodes``
        :class:`~repro.cluster.SearchNode`\\ s (``replicas`` copies per
        partition, ``node_store`` picking each copy's backend) and returns a
        :class:`~repro.cluster.ClusterSearchService` — the standard serving
        layer, backed by the cluster's scatter-gather
        :class:`~repro.cluster.QueryRouter` instead of a single searcher.
        Results are byte-identical to single-store serving; closing the
        returned service tears the whole cluster down.  The engine's own
        store is only *read* during the build — subsequent mutations must go
        through the returned service's cluster facade
        (``service.cluster.store``), not this engine.

        ``fault_plane`` (a :class:`~repro.faults.FaultPlane`) wraps every
        partition copy for chaos testing; ``deadline_seconds`` bounds each
        query's failover budget, ``degraded_ok`` opts into flagged partial
        results instead of :class:`~repro.serving.PartialResultError` when a
        partition loses every copy, and the ``breaker_*`` knobs tune the
        per-node circuit breakers.
        """
        # Imported here for the same circularity reason as serving().
        from repro.cluster import SearchCluster

        built = SearchCluster.build(
            query=self.application.query,
            query_string_spec=self.application.query_string_spec,
            uri=self.application.uri,
            source_store=self.store,
            nodes=nodes,
            replicas=replicas,
            partitions=partitions,
            node_store=node_store,
            store_dir=store_dir,
            fault_plane=fault_plane,
            deadline_seconds=deadline_seconds,
            degraded_ok=degraded_ok,
            breaker_threshold=breaker_threshold,
            breaker_reset_seconds=breaker_reset_seconds,
        )
        return built.service(
            cache_size=cache_size,
            workers=workers,
            default_k=default_k,
            default_size_threshold=default_size_threshold,
            max_dependencies=max_dependencies,
        )

    @property
    def searcher(self) -> TopKSearcher:
        return self._searcher

    @property
    def session(self) -> SearchSession:
        """The engine's reusable search session (shared with serving())."""
        return self._session

    @property
    def store(self) -> FragmentStore:
        """The serving backend shared by the index, the graph and the searcher."""
        return self.index.store

    # ------------------------------------------------------------------
    # inspection helpers
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, Any]:
        """A summary of the engine (fragment counts, build costs).

        Reopened engines (:meth:`open`) report ``algorithm: "reopened"`` and
        no crawl/graph-build timings — nothing was built in this process.
        """
        if self.build_report is None:
            algorithm = "reopened"
        elif self.build_report.crawl is not None:
            algorithm = self.build_report.crawl.algorithm
        else:
            algorithm = "distributed"
        statistics: Dict[str, Any] = {
            "application": self.application.name,
            "algorithm": algorithm,
            "store_backend": type(self.store).__name__,
            "store_shards": self.store.shard_count,
            "fragments": self.index.fragment_count,
            "vocabulary": len(self.index),
            "average_keywords_per_fragment": self.index.average_keywords_per_fragment(),
            "graph_edges": self.graph.edge_count,
        }
        if self.build_report is not None:
            statistics["graph_build_seconds"] = self.build_report.graph.build_seconds
            if self.build_report.crawl is not None:
                statistics.update(
                    {
                        "crawl_simulated_seconds": self.build_report.crawl.simulated_seconds(),
                        "crawl_stage_seconds": self.build_report.crawl.stage_seconds(),
                    }
                )
            if self.build_report.pipeline is not None:
                statistics["pipeline"] = self.build_report.pipeline.as_dict()
        return statistics
