"""Db-page fragments (Definition 2) and the reference fragment derivation.

A db-page fragment is the set of joined records sharing one combination of
selection-attribute values::

    pi_{a1..al} sigma_{c1 = v1 and ... cm = vm} (R1 join R2 join ... Rn)

The tuple ``(v1, ..., vm)`` is the fragment's *identifier*.  Every db-page the
application can generate is the disjoint union of some fragments, which is why
Dash collects, indexes and searches fragments instead of pages.

:func:`derive_fragments` is the single-machine reference derivation used by
small examples, tests and the incremental-maintenance extension; the MapReduce
crawlers in :mod:`repro.core.crawler` must produce exactly the same fragments
(a property the test suite checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.db.algebra import group_by
from repro.db.database import Database
from repro.db.query import ParameterizedPSJQuery
from repro.db.relation import Record, Relation
from repro.text.tokenizer import count_keywords, tokenize

#: A fragment identifier: the values of the selection attributes, in condition order.
FragmentId = Tuple[Any, ...]


@dataclass
class Fragment:
    """One db-page fragment.

    ``rows`` hold the projected attribute values of every joined record in the
    fragment (in join-output order); ``term_frequencies`` the keyword counts of
    all that text; ``size`` the total number of keyword occurrences (the
    node value shown in the paper's Figure 9).
    """

    identifier: FragmentId
    rows: List[Dict[str, Any]] = field(default_factory=list)
    term_frequencies: Dict[str, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Total number of keyword occurrences in the fragment."""
        return sum(self.term_frequencies.values())

    @property
    def record_count(self) -> int:
        return len(self.rows)

    def keywords(self) -> Tuple[str, ...]:
        """The distinct keywords occurring in the fragment."""
        return tuple(sorted(self.term_frequencies))

    def term_frequency(self, keyword: str) -> int:
        return self.term_frequencies.get(keyword.lower(), 0)

    def add_row(self, row: Mapping[str, Any], projected_attributes: Sequence[str]) -> None:
        """Append one joined record's projected values and update keyword counts."""
        projected = {attribute: row.get(attribute) for attribute in projected_attributes}
        self.rows.append(projected)
        for keyword, occurrences in count_keywords(_row_keywords(projected, projected_attributes)).items():
            self.term_frequencies[keyword] = self.term_frequencies.get(keyword, 0) + occurrences

    def text(self) -> str:
        """The fragment content as plain text (one line per record)."""
        lines = []
        for row in self.rows:
            lines.append(" ".join(_render_value(value) for value in row.values() if value is not None))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fragment({self.identifier!r}, records={self.record_count}, size={self.size})"


def _render_value(value: Any) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _row_keywords(row: Mapping[str, Any], projected_attributes: Sequence[str]) -> List[str]:
    keywords: List[str] = []
    for attribute in projected_attributes:
        value = row.get(attribute)
        if value is None:
            continue
        keywords.extend(tokenize(_render_value(value)))
    return keywords


def derive_fragments(
    query: ParameterizedPSJQuery,
    database: Database,
) -> Dict[FragmentId, Fragment]:
    """Reference derivation of every db-page fragment of ``query`` over ``database``.

    Evaluates the crawling query (join of the operand relations, keeping the
    projection *and* selection attributes), groups the joined records by the
    selection-attribute values and accumulates keyword counts over the
    projection attributes only — matching the paper's Example 3 / Figure 5.
    """
    joined = query.join_operands(database)
    selection_attributes = [
        query.resolve_attribute(joined.schema, attribute) for attribute in query.selection_attributes
    ]
    projected_attributes = list(query.output_attributes(joined.schema))

    fragments: Dict[FragmentId, Fragment] = {}
    for identifier, records in group_by(joined, selection_attributes).items():
        if any(component is None for component in identifier):
            # Records with a NULL selection attribute can never be produced by
            # any query-string binding, so they belong to no db-page.
            continue
        fragment = Fragment(identifier=identifier)
        for record in records:
            fragment.add_row(record.as_dict(), projected_attributes)
        fragments[identifier] = fragment
    return fragments


def fragment_sizes(fragments: Mapping[FragmentId, Fragment]) -> Dict[FragmentId, int]:
    """Identifier → total keyword count, for fragment-graph construction."""
    return {identifier: fragment.size for identifier, fragment in fragments.items()}


def total_keyword_occurrences(fragments: Mapping[FragmentId, Fragment]) -> int:
    """Total keyword occurrences across all fragments."""
    return sum(fragment.size for fragment in fragments.values())


def average_keywords_per_fragment(fragments: Mapping[FragmentId, Fragment]) -> float:
    """The Table IV statistic: average number of keywords per fragment."""
    if not fragments:
        return 0.0
    return total_keyword_occurrences(fragments) / len(fragments)
