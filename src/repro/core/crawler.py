"""MapReduce-based database crawling and fragment indexing (Section V).

Two algorithms build the inverted fragment index for one application query:

* :class:`StepwiseCrawler` — the stepwise algorithm of Section V-A
  (Figure 7): join the operand relations (carrying every projection attribute
  through the join pipeline), group the joined records into db-page fragments,
  then index each fragment like a document.  Reporting stages: ``join``,
  ``group``, ``index`` (the paper's SW-Jn / SW-Grp / SW-Idx).

* :class:`IntegratedCrawler` — the integrated algorithm of Section V-B
  (Figure 8): first join only the *compact* per-relation views of selection
  attributes, join attributes and record counts (deriving the query
  parameters and the join multiplicities θ — the θ aggregation happens inside
  the join jobs, as the paper notes it can), then join each operand relation
  back against that compact result to extract its keywords directly into the
  right fragments with the right multiplicities, and finally consolidate the
  per-relation keyword streams into the inverted fragment index.  Reporting
  stages: ``join``, ``extract``, ``consolidate`` (INT-Jn / INT-Ext /
  INT-Cnsd).  Projection attributes never travel through the join pipeline,
  which is exactly where its Figure 10 advantage comes from.

Joins are reduce-side repartition joins over multiple inputs (one map
function per input file, Hadoop ``MultipleInputs`` style).  Both algorithms
produce identical inverted fragment indexes (a property the test suite
verifies against the reference derivation of
:func:`repro.core.fragments.derive_fragments`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import Fragment, FragmentId
from repro.db.algebra import group_by
from repro.db.database import Database
from repro.db.query import ParameterizedPSJQuery
from repro.mapreduce.job import KeyValue, MapReduceJob, default_partitioner
from repro.mapreduce.joins import join_reducer, tag_mapper
from repro.mapreduce.runtime import MapReduceRuntime
from repro.mapreduce.workflow import Workflow, WorkflowMetrics
from repro.store.base import FragmentStore
from repro.text.tokenizer import count_keywords, tokenize

RecordDict = Dict[str, Any]


# ----------------------------------------------------------------------
# shared query layout bookkeeping
# ----------------------------------------------------------------------
class QueryLayout:
    """Per-operand-relation attribute bookkeeping shared by both crawlers.

    Works entirely from the query definition and the relation schemas — it
    never looks at the data — and answers questions such as "which attributes
    does relation X contribute to the joined output", "which attributes
    identify X's records for the integrated extract join" and "under which
    name does attribute a appear in the joined result".
    """

    def __init__(self, query: ParameterizedPSJQuery, database: Database) -> None:
        self.query = query
        self.database = database
        self.relations: Tuple[str, ...] = query.operand_relations

        # right-hand join keys are dropped from the joined output; map each to
        # the surviving left-hand attribute.
        self._replacement: Dict[str, str] = {}
        for join in query.joins:
            for left_attr, right_attr in join.on:
                if right_attr != left_attr:
                    self._replacement[right_attr] = left_attr
        self._dropped_per_relation: Dict[str, set] = {relation: set() for relation in self.relations}
        for join in query.joins:
            for _left_attr, right_attr in join.on:
                self._dropped_per_relation[join.relation].add(right_attr)

        self.contributed: Dict[str, Tuple[str, ...]] = {}
        for relation_name in self.relations:
            schema = database.relation(relation_name).schema
            dropped = self._dropped_per_relation[relation_name]
            self.contributed[relation_name] = tuple(
                attribute for attribute in schema.attribute_names if attribute not in dropped
            )

        projections = query.projections
        self.projected: Dict[str, Tuple[str, ...]] = {}
        for relation_name in self.relations:
            contributed = self.contributed[relation_name]
            if projections is None:
                self.projected[relation_name] = contributed
            else:
                wanted = set(projections)
                self.projected[relation_name] = tuple(
                    attribute for attribute in contributed if attribute in wanted
                )

        self.selection_attributes: Tuple[str, ...] = query.selection_attributes
        self.selection_owner: Dict[str, str] = {}
        for attribute in self.selection_attributes:
            self.selection_owner[attribute] = self._find_owner(attribute)

        self.join_attributes: Dict[str, Tuple[str, ...]] = {}
        for relation_name in self.relations:
            schema = database.relation(relation_name).schema
            used: List[str] = []
            for join in query.joins:
                for left_attr, right_attr in join.on:
                    if join.relation == relation_name and right_attr not in used:
                        used.append(right_attr)
                    elif (
                        join.relation != relation_name
                        and schema.has_attribute(left_attr)
                        and self._find_owner(left_attr) == relation_name
                        and left_attr not in used
                    ):
                        used.append(left_attr)
            self.join_attributes[relation_name] = tuple(used)

    # ------------------------------------------------------------------
    def _find_owner(self, attribute: str) -> str:
        for relation_name in self.relations:
            schema = self.database.relation(relation_name).schema
            if schema.has_attribute(attribute):
                return relation_name
        raise ValueError(f"attribute {attribute!r} belongs to no operand relation")

    def surviving_name(self, attribute: str) -> str:
        """The name under which ``attribute`` appears in the joined output."""
        seen = set()
        current = attribute
        while current in self._replacement and current not in seen:
            seen.add(current)
            replacement = self._replacement[current]
            if replacement == current:
                break
            current = replacement
        return current

    def fragment_identifier(self, record: Mapping[str, Any]) -> Optional[FragmentId]:
        """The fragment identifier of a joined record (None if any component is NULL)."""
        identifier = tuple(
            record.get(self.surviving_name(attribute)) for attribute in self.selection_attributes
        )
        if any(component is None for component in identifier):
            return None
        return identifier

    def all_projected_attributes(self) -> Tuple[str, ...]:
        """Every projected attribute of the joined output, in operand order."""
        attributes: List[str] = []
        for relation_name in self.relations:
            attributes.extend(self.projected[relation_name])
        return tuple(attributes)

    def compact_key_attributes(self, relation_name: str) -> Tuple[str, ...]:
        """Selection + join attributes of one relation (the integrated compact view)."""
        selection = [
            attribute
            for attribute in self.selection_attributes
            if self.selection_owner[attribute] == relation_name
        ]
        joins = [
            attribute
            for attribute in self.join_attributes[relation_name]
            if attribute not in selection
        ]
        return tuple(selection + joins)

    def theta_field(self, relation_name: str) -> str:
        """Name of the record-count (θ) field contributed by ``relation_name``.

        Kept deliberately short (``#t0``, ``#t1`` ...) because these fields
        travel in every row of the integrated algorithm's parameter relation.
        """
        return f"#t{self.relations.index(relation_name)}"


# ----------------------------------------------------------------------
# crawl result
# ----------------------------------------------------------------------
@dataclass
class CrawlResult:
    """The product of one crawling + indexing run."""

    algorithm: str
    query_name: str
    index: InvertedFragmentIndex
    metrics: WorkflowMetrics
    export_bytes: int = 0

    @property
    def fragment_count(self) -> int:
        return self.index.fragment_count

    def stage_seconds(self) -> Dict[str, float]:
        """Simulated seconds per reporting stage (Figure 10 bars)."""
        return self.metrics.stage_simulated_seconds()

    def simulated_seconds(self) -> float:
        return self.metrics.simulated_seconds


# ----------------------------------------------------------------------
# helpers shared by both crawlers
# ----------------------------------------------------------------------
def _row_term_frequencies(record: Mapping[str, Any], attributes: Sequence[str]) -> Dict[str, int]:
    keywords: List[str] = []
    for attribute in attributes:
        value = record.get(attribute)
        if value is None:
            continue
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        keywords.extend(tokenize(str(value)))
    return count_keywords(keywords)


def _merge_posting_lists(values: List[List[Tuple[FragmentId, int]]]) -> Dict[FragmentId, int]:
    merged: Dict[FragmentId, int] = {}
    for postings in values:
        for identifier, occurrences in postings:
            identifier = tuple(identifier)
            merged[identifier] = merged.get(identifier, 0) + occurrences
    return merged


def _consolidate_mapper(identifier: FragmentId, counts: Dict[str, int]) -> Iterator[KeyValue]:
    """Turn one extract-output record (fragment → term frequencies) into
    keyword-keyed postings for the consolidation reduce."""
    identifier = tuple(identifier)
    for keyword, occurrences in counts.items():
        yield keyword, [(identifier, occurrences)]


def _consolidate_combiner(keyword: str, values: List[List[Tuple[FragmentId, int]]]) -> Iterator[KeyValue]:
    merged = _merge_posting_lists(values)
    yield keyword, list(merged.items())


def _consolidate_reducer(keyword: str, values: List[List[Tuple[FragmentId, int]]]) -> Iterator[KeyValue]:
    merged = _merge_posting_lists(values)
    ranked = sorted(merged.items(), key=lambda item: (-item[1], str(item[0])))
    yield keyword, ranked


def _load_index(
    runtime: MapReduceRuntime,
    path: str,
    store: Optional["FragmentStore"] = None,
) -> InvertedFragmentIndex:
    """Load a workflow's consolidated posting lists into the serving store."""
    posting_lists: Dict[str, List[Tuple[FragmentId, int]]] = {}
    for keyword, postings in runtime.filesystem.read_all(path):
        posting_lists[keyword] = [(tuple(identifier), occurrences) for identifier, occurrences in postings]
    return InvertedFragmentIndex.from_posting_lists(posting_lists, store=store)


def _forward_mapper(key: Any, value: Any) -> Iterator[KeyValue]:
    yield key, value


class _CrawlerBase:
    """Common machinery: exporting relations and running workflows."""

    algorithm = "base"

    def __init__(
        self,
        query: ParameterizedPSJQuery,
        database: Database,
        runtime: Optional[MapReduceRuntime] = None,
        num_reduce_tasks: int = 4,
        store: Optional["FragmentStore"] = None,
    ) -> None:
        self.query = query
        self.database = database
        self.runtime = runtime or MapReduceRuntime()
        self.num_reduce_tasks = num_reduce_tasks
        self.store = store
        self.layout = QueryLayout(query, database)

    # ------------------------------------------------------------------
    def export_relations(self, prefix: str) -> Tuple[Dict[str, str], int]:
        """Export every operand relation into the cluster's file system."""
        paths: Dict[str, str] = {}
        exported_bytes = 0
        for relation_name in self.layout.relations:
            path = f"{prefix}/input/{relation_name}"
            hdfs_file = self.runtime.filesystem.write_relation(
                path, self.database.relation(relation_name), overwrite=True
            )
            paths[relation_name] = path
            exported_bytes += hdfs_file.size_bytes
        return paths, exported_bytes

    def crawl(self) -> CrawlResult:  # pragma: no cover - overridden
        raise NotImplementedError


# ----------------------------------------------------------------------
# partitionable crawl frontier (the distributed build pipeline's source)
# ----------------------------------------------------------------------
class PartitionedCrawlFrontier:
    """The crawl frontier of one query, split into disjoint map partitions.

    The reference derivation (:func:`repro.core.fragments.derive_fragments`)
    materialises the whole frontier — every fragment of the query — in one
    in-memory dict.  The distributed build pipeline instead asks its corpus
    source for ``partitions(count)``: a list of ``count`` zero-argument
    callables, each streaming the ``(identifier, term_frequencies)`` pairs of
    the fragments *it* owns, so one map task holds only its own slice of the
    frontier.  Ownership is ``default_partitioner(identifier, count)`` — the
    runtime's stable, process-independent hash — so the partitioning is
    identical run to run and worker to worker, and the union over all
    partitions is exactly the reference frontier (a property the build
    pipeline's parity suite pins).
    """

    def __init__(self, query: ParameterizedPSJQuery, database: Database) -> None:
        self.query = query
        self.database = database

    def partitions(self, count: int):
        """``count`` disjoint streaming callables covering the whole frontier."""
        if count < 1:
            raise ValueError("partition count must be at least 1")
        return [
            (lambda index=index: self._stream_partition(index, count))
            for index in range(count)
        ]

    def _stream_partition(
        self, index: int, count: int
    ) -> Iterator[Tuple[FragmentId, Dict[str, int]]]:
        """Derive and stream only the fragments owned by partition ``index``.

        Mirrors :func:`derive_fragments` stage by stage (same join, same
        grouping, same NULL-identifier skip, same keyword accumulation) but
        accumulates one owned fragment at a time instead of holding the whole
        frontier.
        """
        joined = self.query.join_operands(self.database)
        selection_attributes = [
            self.query.resolve_attribute(joined.schema, attribute)
            for attribute in self.query.selection_attributes
        ]
        projected_attributes = list(self.query.output_attributes(joined.schema))
        for identifier, records in group_by(joined, selection_attributes).items():
            if any(component is None for component in identifier):
                continue
            if default_partitioner(identifier, count) != index:
                continue
            fragment = Fragment(identifier=identifier)
            for record in records:
                fragment.add_row(record.as_dict(), projected_attributes)
            yield identifier, dict(fragment.term_frequencies)


# ----------------------------------------------------------------------
# the stepwise algorithm (Section V-A)
# ----------------------------------------------------------------------
class StepwiseCrawler(_CrawlerBase):
    """Database crawling and fragment indexing as two separate steps."""

    algorithm = "stepwise"

    def crawl(self) -> CrawlResult:
        prefix = f"stepwise/{self.query.name}"
        paths, export_bytes = self.export_relations(prefix)
        workflow = Workflow(f"stepwise-{self.query.name}", self.runtime)

        joined_path = self._add_join_steps(workflow, paths, prefix)
        grouped_path = f"{prefix}/grouped"
        workflow.add_step(
            self._group_job(), inputs=[joined_path], output=grouped_path, stage="group"
        )
        index_path = f"{prefix}/index"
        workflow.add_step(
            self._index_job(), inputs=[grouped_path], output=index_path, stage="index"
        )

        metrics = workflow.run()
        index = _load_index(self.runtime, index_path, store=self.store)
        return CrawlResult(
            algorithm=self.algorithm,
            query_name=self.query.name,
            index=index,
            metrics=metrics,
            export_bytes=export_bytes,
        )

    # ------------------------------------------------------------------
    def _add_join_steps(self, workflow: Workflow, paths: Dict[str, str], prefix: str) -> str:
        """Chain one repartition-join job per JOIN clause; return the joined file path."""
        accumulated_path = paths[self.query.base_relation]
        for step_number, join in enumerate(self.query.joins):
            left_keys = [self.layout.surviving_name(left) for left, _right in join.on]
            right_keys = [right for _left, right in join.on]
            joined = f"{prefix}/join{step_number}"
            workflow.add_step(
                MapReduceJob(
                    name=f"{self.query.name}-sw-join{step_number}",
                    mapper=_forward_mapper,
                    reducer=join_reducer(
                        "left", join.relation, kind=join.kind, drop_right_attributes=right_keys
                    ),
                    num_reduce_tasks=self.num_reduce_tasks,
                ),
                inputs=[
                    (accumulated_path, tag_mapper("left", left_keys)),
                    (paths[join.relation], tag_mapper(join.relation, right_keys)),
                ],
                output=joined,
                stage="join",
            )
            accumulated_path = joined
        return accumulated_path

    def _group_job(self) -> MapReduceJob:
        layout = self.layout
        projected = layout.all_projected_attributes()

        def mapper(_key: Any, record: RecordDict) -> Iterator[KeyValue]:
            identifier = layout.fragment_identifier(record)
            if identifier is None:
                return
            yield identifier, {attribute: record.get(attribute) for attribute in projected}

        def reducer(identifier: FragmentId, rows: List[RecordDict]) -> Iterator[KeyValue]:
            yield identifier, {"rows": rows}

        return MapReduceJob(
            name=f"{self.query.name}-sw-group",
            mapper=mapper,
            reducer=reducer,
            num_reduce_tasks=self.num_reduce_tasks,
        )

    def _index_job(self) -> MapReduceJob:
        projected = self.layout.all_projected_attributes()

        def mapper(identifier: FragmentId, value: RecordDict) -> Iterator[KeyValue]:
            frequencies: Dict[str, int] = {}
            for row in value["rows"]:
                for keyword, occurrences in _row_term_frequencies(row, projected).items():
                    frequencies[keyword] = frequencies.get(keyword, 0) + occurrences
            for keyword, occurrences in frequencies.items():
                yield keyword, [(tuple(identifier), occurrences)]

        return MapReduceJob(
            name=f"{self.query.name}-sw-index",
            mapper=mapper,
            reducer=_consolidate_reducer,
            combiner=_consolidate_combiner,
            num_reduce_tasks=self.num_reduce_tasks,
        )


# ----------------------------------------------------------------------
# the integrated algorithm (Section V-B)
# ----------------------------------------------------------------------
class IntegratedCrawler(_CrawlerBase):
    """Integrated database crawling and fragment indexing."""

    algorithm = "integrated"

    def crawl(self) -> CrawlResult:
        prefix = f"integrated/{self.query.name}"
        paths, export_bytes = self.export_relations(prefix)
        workflow = Workflow(f"integrated-{self.query.name}", self.runtime)

        params_path = self._add_parameter_join_steps(workflow, paths, prefix)
        extract_paths = self._add_extract_steps(workflow, paths, params_path, prefix)

        index_path = f"{prefix}/index"
        workflow.add_step(
            MapReduceJob(
                name=f"{self.query.name}-int-consolidate",
                mapper=_consolidate_mapper,
                reducer=_consolidate_reducer,
                combiner=_consolidate_combiner,
                num_reduce_tasks=self.num_reduce_tasks,
            ),
            inputs=list(extract_paths),
            output=index_path,
            stage="consolidate",
        )

        metrics = workflow.run()
        index = _load_index(self.runtime, index_path, store=self.store)
        return CrawlResult(
            algorithm=self.algorithm,
            query_name=self.query.name,
            index=index,
            metrics=metrics,
            export_bytes=export_bytes,
        )

    # ------------------------------------------------------------------
    # step (1): query-parameter derivation (compact joins with in-join θ aggregation)
    # ------------------------------------------------------------------
    def _compact_mapper(self, relation_name: str, key_attributes: Sequence[str]):
        """Project a raw relation record to its compact (selection+join) view."""
        compact_attributes = self.layout.compact_key_attributes(relation_name)
        key_attributes = tuple(key_attributes)

        def mapper(_key: Any, record: RecordDict) -> Iterator[KeyValue]:
            compact = {attribute: record.get(attribute) for attribute in compact_attributes}
            join_key = tuple(compact.get(attribute) for attribute in key_attributes)
            if any(component is None for component in join_key):
                return
            yield join_key, (relation_name, compact)

        return mapper

    def _params_mapper(self, key_attributes: Sequence[str]):
        """Re-key an already-derived params record by the next join key."""
        key_attributes = tuple(key_attributes)

        def mapper(_key: Any, record: RecordDict) -> Iterator[KeyValue]:
            join_key = tuple(record.get(attribute) for attribute in key_attributes)
            yield join_key, ("params", record)

        return mapper

    def _params_join_reducer(
        self,
        right_relation: str,
        right_keys: Sequence[str],
        kind: str,
        left_is_raw: bool,
        left_relation: str,
    ):
        """Join compact views, aggregating duplicate compacts into θ counts."""
        layout = self.layout
        dropped = set(right_keys)
        left_theta_field = layout.theta_field(left_relation)
        right_theta_field = layout.theta_field(right_relation)

        def aggregate(rows: List[RecordDict], theta_field: Optional[str]) -> List[RecordDict]:
            if theta_field is None:
                return rows
            counted: Dict[Tuple, Tuple[RecordDict, int]] = {}
            for row in rows:
                signature = tuple(sorted(row.items(), key=lambda item: item[0]))
                if signature in counted:
                    counted[signature] = (counted[signature][0], counted[signature][1] + 1)
                else:
                    counted[signature] = (row, 1)
            aggregated = []
            for row, theta in counted.values():
                merged = dict(row)
                merged[theta_field] = theta
                aggregated.append(merged)
            return aggregated

        def reducer(key: Any, values: List[Tuple[str, RecordDict]]) -> Iterator[KeyValue]:
            left_rows = [record for tag, record in values if tag != right_relation]
            right_rows = [record for tag, record in values if tag == right_relation]
            left_rows = aggregate(left_rows, left_theta_field if left_is_raw else None)
            right_rows = aggregate(right_rows, right_theta_field)
            if right_rows:
                for left_record in left_rows:
                    for right_record in right_rows:
                        merged = dict(left_record)
                        for attribute, value in right_record.items():
                            if attribute in dropped:
                                continue
                            merged[attribute] = value
                        yield key, merged
            elif kind == "left":
                for left_record in left_rows:
                    yield key, dict(left_record)

        return reducer

    def _add_parameter_join_steps(
        self, workflow: Workflow, paths: Dict[str, str], prefix: str
    ) -> str:
        """Join the compact relation views along the query's join chain."""
        accumulated_path = paths[self.query.base_relation]
        accumulated_is_raw = True
        for step_number, join in enumerate(self.query.joins):
            left_keys = [self.layout.surviving_name(left) for left, _right in join.on]
            right_keys = [right for _left, right in join.on]
            joined = f"{prefix}/params{step_number}"

            if accumulated_is_raw:
                left_mapper = self._compact_mapper(self.query.base_relation, left_keys)
            else:
                left_mapper = self._params_mapper(left_keys)
            right_mapper = self._compact_mapper(join.relation, right_keys)

            workflow.add_step(
                MapReduceJob(
                    name=f"{self.query.name}-int-params{step_number}",
                    mapper=_forward_mapper,
                    reducer=self._params_join_reducer(
                        right_relation=join.relation,
                        right_keys=right_keys,
                        kind=join.kind,
                        left_is_raw=accumulated_is_raw,
                        left_relation=self.query.base_relation,
                    ),
                    num_reduce_tasks=self.num_reduce_tasks,
                ),
                inputs=[
                    (accumulated_path, left_mapper),
                    (paths[join.relation], right_mapper),
                ],
                output=joined,
                stage="join",
            )
            accumulated_path = joined
            accumulated_is_raw = False
        return accumulated_path

    # ------------------------------------------------------------------
    # step (2): keyword extraction with join-multiplicity estimation
    # ------------------------------------------------------------------
    def _add_extract_steps(
        self,
        workflow: Workflow,
        paths: Dict[str, str],
        params_path: str,
        prefix: str,
    ) -> List[str]:
        extract_paths: List[str] = []
        theta_fields = [self.layout.theta_field(name) for name in self.layout.relations]
        for relation_name in self.layout.relations:
            projected = self.layout.projected[relation_name]
            if not projected:
                # The relation contributes no projected content (it only
                # provides selection/join attributes); nothing to extract.
                continue
            key_attributes = self.layout.compact_key_attributes(relation_name)
            params_key_attributes = tuple(
                self.layout.surviving_name(attribute) for attribute in key_attributes
            )
            theta_field = self.layout.theta_field(relation_name)
            extracted = f"{prefix}/extract-{relation_name}"

            workflow.add_step(
                MapReduceJob(
                    name=f"{self.query.name}-int-extract-{relation_name}",
                    mapper=_forward_mapper,
                    reducer=self._extract_reducer(projected, theta_field, theta_fields),
                    num_reduce_tasks=self.num_reduce_tasks,
                ),
                inputs=[
                    (params_path, tag_mapper("params", params_key_attributes)),
                    (paths[relation_name], tag_mapper("records", key_attributes)),
                ],
                output=extracted,
                stage="extract",
            )
            extract_paths.append(extracted)
        return extract_paths

    def _extract_reducer(
        self,
        projected_attributes: Sequence[str],
        own_theta_field: str,
        theta_fields: Sequence[str],
    ):
        layout = self.layout

        def reducer(_key: Any, values: List[Tuple[str, RecordDict]]) -> Iterator[KeyValue]:
            params_rows = [record for tag, record in values if tag == "params"]
            record_rows = [record for tag, record in values if tag == "records"]
            if not params_rows or not record_rows:
                return
            # Pre-compute each record's keyword counts once per reduce group.
            record_frequencies = [
                _row_term_frequencies(record, projected_attributes) for record in record_rows
            ]
            # Accumulate keyword counts per fragment across the whole reduce
            # group before emitting: the same fragment identifier typically
            # appears in many parameter rows of the group (e.g. one customer's
            # orders sharing a quantity).  Emitting one term-frequency map per
            # fragment keeps the materialised extract output proportional to
            # distinct (fragment, keyword) pairs rather than to join
            # multiplicity, and avoids repeating the fragment identifier next
            # to every keyword.
            merged: Dict[FragmentId, Dict[str, int]] = {}
            for params in params_rows:
                identifier = layout.fragment_identifier(params)
                if identifier is None:
                    continue
                multiplicity = 1
                for theta_field in theta_fields:
                    theta = params.get(theta_field)
                    if theta:
                        multiplicity *= theta
                own_theta = params.get(own_theta_field) or 1
                multiplicity = multiplicity // own_theta if own_theta else multiplicity
                if multiplicity <= 0:
                    continue
                counts = merged.setdefault(identifier, {})
                for frequencies in record_frequencies:
                    for keyword, occurrences in frequencies.items():
                        counts[keyword] = counts.get(keyword, 0) + occurrences * multiplicity
            for identifier, counts in merged.items():
                yield identifier, counts

        return reducer
