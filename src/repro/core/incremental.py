"""Incremental fragment-index maintenance under database updates.

Section VIII lists this as future work: "in presence of updates in an
underlying database, a fragment index would become outdated ... it should be
very costly to rebuild the entire fragment index".  This module implements the
natural design the paper sketches — update only the *affected portion* of the
fragment index and the fragment graph — so the repository can benchmark
incremental maintenance against a full rebuild
(``benchmarks/bench_incremental.py``).

The maintenance rule follows from Definition 2: a record insert/delete in any
operand relation can only change fragments whose identifiers appear among the
joined rows that involve the changed record.  The maintainer therefore

1. computes the set of affected fragment identifiers by joining the changed
   record through the query's join chain (restricted to the records that can
   actually reach it),
2. re-derives exactly those fragments from the (already updated) database, and
3. replaces their postings in the inverted fragment index and their nodes in
   the fragment graph.

The maintainer only ever talks to the index/graph facades, which route every
per-fragment mutation to the underlying
:class:`~repro.store.FragmentStore`.  The write path is **batched**: one
maintenance round — a single :meth:`IncrementalMaintainer.insert`/``delete``
or a whole burst handed to :meth:`IncrementalMaintainer.apply_updates` —
derives every affected fragment once, coalesces repeated touches to the
same fragment, and emits a single
:meth:`~repro.store.FragmentStore.apply_mutations` batch wrapped (together
with the round's graph updates) in one
:meth:`~repro.store.FragmentStore.write_batch` scope.  On the persistent
backend that makes the whole round one crash-safe sqlite transaction; on
every backend the round finalizes the index exactly once and ticks the
epoch clock once, so serving caches drop precisely the entries the round
could have changed.  Because a fragment's postings, size and graph node
all live on the identifier's owning shard, the batch fans out per shard on
partitioned backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import Fragment, FragmentId, derive_fragments
from repro.db.algebra import select
from repro.db.database import Database
from repro.db.query import ParameterizedPSJQuery
from repro.db.relation import Record, Relation
from repro.store.mutations import Mutation, RemoveFragment, replace_op


class IncrementalMaintenanceError(Exception):
    """Raised when an update cannot be applied incrementally."""


@dataclass(frozen=True)
class InsertRecord:
    """One record insertion into an operand relation (a queueable update)."""

    relation: str
    record: Any


@dataclass(frozen=True)
class DeleteRecords:
    """Deletion of every record of ``relation`` matching ``predicate``."""

    relation: str
    predicate: Callable[[Record], bool]


#: What :meth:`IncrementalMaintainer.apply_updates` (and the serving layer's
#: :class:`~repro.serving.MaintenanceService`) accept as one queued update.
DatabaseUpdate = Union[InsertRecord, DeleteRecords]


class IncrementalMaintainer:
    """Keeps a fragment index and fragment graph consistent with the database."""

    def __init__(
        self,
        query: ParameterizedPSJQuery,
        database: Database,
        index: InvertedFragmentIndex,
        graph: FragmentGraph,
    ) -> None:
        self.query = query
        self.database = database
        self.index = index
        self.graph = graph
        self.updates_applied = 0
        self.fragments_touched = 0
        #: Store epoch after the last applied update (serving caches compare
        #: their entry stamps against it; see repro.store.epochs).
        self.last_epoch = self.store.epoch

    @property
    def store(self):
        """The index's storage backend (shared with the graph in engine wiring)."""
        return self.index.store

    @property
    def epoch(self) -> int:
        """The store's current mutation epoch.

        Every ``insert``/``delete`` this maintainer applies bumps it (postings
        swaps, graph-node and adjacency updates each tick the store's
        :class:`~repro.store.EpochClock`), which is what lets a
        :class:`~repro.serving.SearchService` drop exactly the cached results
        the update could have changed.
        """
        return self.store.epoch

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def insert(self, relation_name: str, record: Any) -> Tuple[FragmentId, ...]:
        """Insert ``record`` into ``relation_name`` and refresh affected fragments."""
        return self.apply_updates([InsertRecord(relation_name, record)])

    def delete(self, relation_name: str, predicate) -> Tuple[FragmentId, ...]:
        """Delete records matching ``predicate`` and refresh affected fragments."""
        return self.apply_updates([DeleteRecords(relation_name, predicate)])

    def apply_updates(self, updates: Sequence[DatabaseUpdate]) -> Tuple[FragmentId, ...]:
        """Apply a whole burst of database updates as **one** maintenance round.

        Every update (:class:`InsertRecord` / :class:`DeleteRecords`) is
        applied to the database in order, accumulating the union of affected
        fragment identifiers; the union is then refreshed once — one
        restricted derivation, one coalesced
        :meth:`~repro.store.FragmentStore.apply_mutations` batch plus the
        matching graph updates inside a single
        :meth:`~repro.store.FragmentStore.write_batch` scope, and one
        ``finalize``.  A burst that touches the same hot fragment N times
        therefore re-derives and swaps it once, and on ``DiskStore`` the
        whole round is one crash-safe transaction instead of one per
        fragment.  Returns the affected identifiers, sorted by ``str``.
        """
        for update in updates:
            self._require_operand(update.relation)
        affected: Set[FragmentId] = set()
        try:
            for update in updates:
                if isinstance(update, InsertRecord):
                    inserted = self.database.insert(update.relation, update.record)
                    affected.update(self._affected_identifiers(update.relation, inserted))
                else:
                    relation = self.database.relation(update.relation)
                    doomed = [record for record in relation if update.predicate(record)]
                    for record in doomed:
                        affected.update(self._affected_identifiers(update.relation, record))
                    self.database.delete(update.relation, update.predicate)
        except BaseException:
            # A failing update (a predicate that raises, a rejected record)
            # must not strand earlier updates of the burst half-applied: the
            # database already holds them, so refresh their fragments before
            # re-raising — the index stays consistent with whatever the
            # burst actually changed.
            if affected:
                self._refresh(tuple(sorted(affected, key=str)))
                self.last_epoch = self.store.epoch
            raise
        ordered = tuple(sorted(affected, key=str))
        self._refresh(ordered)
        self.updates_applied += len(updates)
        self.last_epoch = self.store.epoch
        return ordered

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_operand(self, relation_name: str) -> None:
        if relation_name not in self.query.operand_relations:
            raise IncrementalMaintenanceError(
                f"relation {relation_name!r} is not an operand of query {self.query.name!r}"
            )

    def _affected_identifiers(self, relation_name: str, record: Record) -> Tuple[FragmentId, ...]:
        """Fragment identifiers of the joined rows that involve ``record``.

        Evaluated by running the query's join chain over a *restricted* view of
        the database in which ``relation_name`` contains only ``record``, then
        keeping only the rows in which the record actually participates (left
        outer joins would otherwise keep every padded left-hand row).
        """
        restricted = _RestrictedDatabase(self.database, {relation_name: [record]})
        joined = self.query.join_operands(restricted)
        selection_attributes = [
            self.query.resolve_attribute(joined.schema, attribute)
            for attribute in self.query.selection_attributes
        ]
        witness_attributes = self._witness_attributes(relation_name, joined.schema)
        identifiers: Set[FragmentId] = set()
        for row in joined:
            if not self._row_involves_record(row, record, witness_attributes):
                continue
            identifier = tuple(row[attribute] for attribute in selection_attributes)
            if any(component is None for component in identifier):
                continue
            identifiers.add(identifier)
        return tuple(sorted(identifiers, key=str))

    def _witness_attributes(self, relation_name: str, joined_schema) -> List[Tuple[str, str]]:
        """``(record_attribute, joined_attribute)`` pairs proving a joined row
        really contains the changed record (its key attributes, mapped to the
        names under which they survive in the joined output)."""
        schema = self.database.relation(relation_name).schema
        key_attributes = schema.primary_key or schema.attribute_names
        replacement: Dict[str, str] = {}
        for join in self.query.joins:
            for left_attr, right_attr in join.on:
                if right_attr != left_attr:
                    replacement[right_attr] = left_attr
        pairs: List[Tuple[str, str]] = []
        for attribute in key_attributes:
            survived = attribute
            seen: Set[str] = set()
            while survived in replacement and survived not in seen:
                seen.add(survived)
                survived = replacement[survived]
            if joined_schema.has_attribute(survived):
                pairs.append((attribute, survived))
        return pairs

    @staticmethod
    def _row_involves_record(row: Record, record: Record, witnesses: List[Tuple[str, str]]) -> bool:
        if not witnesses:
            return True
        for record_attribute, joined_attribute in witnesses:
            if row[joined_attribute] != record[record_attribute]:
                return False
        return True

    def _refresh(self, identifiers: Sequence[FragmentId]) -> None:
        """Re-derive ``identifiers`` from the current database state and swap
        them in as one batched store round.

        The round is atomic end to end: the postings batch and the graph
        updates it implies share one
        :meth:`~repro.store.FragmentStore.write_batch` scope (one sqlite
        transaction on ``DiskStore``), the index finalizes exactly once per
        applied batch, and the store's epoch clock ticks once for the whole
        round.
        """
        if not identifiers:
            return
        affected = set(identifiers)
        fragments = self._derive_restricted(affected)
        ordered = sorted(affected, key=str)
        batch: List[Mutation] = []
        removed: List[FragmentId] = []
        replaced: List[Tuple[FragmentId, Fragment]] = []
        for identifier in ordered:
            fragment = fragments.get(identifier)
            if fragment is None or fragment.size == 0 and fragment.record_count == 0:
                # The fragment no longer exists (its last record was deleted).
                batch.append(RemoveFragment(identifier))
                removed.append(identifier)
            else:
                replaced.append((identifier, fragment))
        with self.store.write_batch():
            # Postings first (replaced fragments canonicalised through the
            # index facade), then the graph section; on DiskStore both halves
            # stage into the same transaction and commit together.
            self.index.apply_mutations(
                batch
                + [
                    replace_op(identifier, fragment.term_frequencies)
                    for identifier, fragment in replaced
                ]
            )
            for identifier in removed:
                if self.graph.has_fragment(identifier):
                    self.graph.remove_fragment(identifier)
            for identifier, fragment in replaced:
                if self.graph.has_fragment(identifier):
                    self.graph.update_keyword_count(identifier, fragment.size)
                else:
                    self.graph.add_fragment(identifier, fragment.size)
            self.index.finalize()
        self.fragments_touched += len(affected)

    def _derive_restricted(self, identifiers: Set[FragmentId]) -> Dict[FragmentId, Fragment]:
        """Derive only the fragments whose identifiers are in ``identifiers``.

        The operand relation owning each selection attribute is pre-filtered to
        the affected values, so the join only touches the relevant slice of the
        database instead of re-crawling everything.
        """
        allowed_values: Dict[str, Set[Any]] = {}
        for position, attribute in enumerate(self.query.selection_attributes):
            allowed_values[attribute] = {identifier[position] for identifier in identifiers}

        overrides: Dict[str, List[Record]] = {}
        for attribute, values in allowed_values.items():
            owner = self._owner_of(attribute)
            relation = self.database.relation(owner)
            kept = [record for record in relation if record.get(attribute) in values]
            existing = overrides.get(owner)
            if existing is None:
                overrides[owner] = kept
            else:
                kept_keys = {id(record) for record in kept}
                overrides[owner] = [record for record in existing if id(record) in kept_keys]

        restricted = _RestrictedDatabase(self.database, overrides)
        fragments = derive_fragments(self.query, restricted)
        return {identifier: fragments[identifier] for identifier in identifiers if identifier in fragments}

    def _owner_of(self, attribute: str) -> str:
        for relation_name in self.query.operand_relations:
            if self.database.relation(relation_name).schema.has_attribute(attribute):
                return relation_name
        raise IncrementalMaintenanceError(f"attribute {attribute!r} owned by no operand relation")


class _RestrictedDatabase:
    """A read-only database view overriding some relations' record sets."""

    def __init__(self, base: Database, overrides: Mapping[str, Sequence[Record]]) -> None:
        self._base = base
        self._overrides = {
            name: self._as_relation(name, records) for name, records in overrides.items()
        }

    def _as_relation(self, name: str, records: Sequence[Record]) -> Relation:
        relation = Relation(self._base.relation(name).schema)
        for record in records:
            relation.insert(record)
        return relation

    def relation(self, name: str) -> Relation:
        if name in self._overrides:
            return self._overrides[name]
        return self._base.relation(name)

    def has_relation(self, name: str) -> bool:
        return self._base.has_relation(name)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return self._base.relation_names
