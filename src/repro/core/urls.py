"""Reverse query-string parsing: from fragments back to URLs (Section III).

Given the db-page fragments a search result is assembled from, Dash must
produce a query string that makes the web application generate exactly that
page.  The rule follows from Definition 2:

* an equality-constrained parameter takes the (common) identifier component of
  the combined fragments, and
* a BETWEEN-constrained parameter pair takes the minimum / maximum of the
  corresponding identifier components across the combined fragments —
  e.g. merging ``(American, 10)`` and ``(American, 12)`` yields
  ``c=American&l=10&u=12`` (the paper's Example 7).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.fragments import FragmentId
from repro.db.query import BetweenCondition, Comparison, ParameterizedPSJQuery
from repro.webapp.request import QueryString, QueryStringSpec


class UrlFormulationError(Exception):
    """Raised when a fragment combination cannot be expressed as one query string."""


class UrlFormulator:
    """Formulates query strings and URLs for combinations of fragments."""

    def __init__(
        self,
        query: ParameterizedPSJQuery,
        query_string_spec: QueryStringSpec,
        application_uri: str,
    ) -> None:
        self.query = query
        self.query_string_spec = query_string_spec
        self.application_uri = application_uri

    # ------------------------------------------------------------------
    def bindings_for_fragments(self, fragments: Sequence[FragmentId]) -> Dict[str, Any]:
        """Parameter bindings whose db-page consists of exactly ``fragments``."""
        if not fragments:
            raise UrlFormulationError("cannot formulate a URL for an empty fragment set")
        identifiers = [tuple(identifier) for identifier in fragments]
        width = len(self.query.conditions)
        for identifier in identifiers:
            if len(identifier) != width:
                raise UrlFormulationError(
                    f"fragment identifier {identifier!r} does not match the query's "
                    f"{width} selection conditions"
                )
        bindings: Dict[str, Any] = {}
        for position, condition in enumerate(self.query.conditions):
            components = [identifier[position] for identifier in identifiers]
            if isinstance(condition, BetweenCondition):
                low_name, high_name = self._between_parameter_names(condition)
                bindings[low_name] = min(components)
                bindings[high_name] = max(components)
            elif isinstance(condition, Comparison):
                distinct = set(components)
                if len(distinct) != 1:
                    raise UrlFormulationError(
                        f"fragments disagree on equality attribute {condition.attribute!r}: "
                        f"{sorted(map(str, distinct))}"
                    )
                if condition.is_parameterized:
                    bindings[condition.operand.name] = components[0]
            else:  # pragma: no cover - no other condition kinds exist
                raise UrlFormulationError(f"unsupported condition {condition!r}")
        return bindings

    def query_string_for_fragments(self, fragments: Sequence[FragmentId]) -> QueryString:
        """The query string whose db-page consists of exactly ``fragments``."""
        return self.query_string_spec.format(self.bindings_for_fragments(fragments))

    def url_for_fragments(self, fragments: Sequence[FragmentId]) -> str:
        """The full db-page URL for ``fragments``."""
        return f"{self.application_uri}?{self.query_string_for_fragments(fragments)}"

    # ------------------------------------------------------------------
    @staticmethod
    def _between_parameter_names(condition: BetweenCondition) -> Tuple[str, str]:
        names = condition.parameters()
        if len(names) != 2:
            raise UrlFormulationError(
                f"BETWEEN condition on {condition.attribute!r} does not have two parameters"
            )
        return names[0], names[1]
