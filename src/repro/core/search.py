"""Top-k db-page search (Algorithm 1 of the paper).

Given queried keywords ``W``, a result count ``k`` and a size threshold ``s``,
the search assembles db-page fragments into db-pages and returns the URLs of
the ``k`` most relevant ones:

1. look up the fragments relevant to ``W`` in the inverted fragment index;
2. seed a priority queue with them, ordered by TF/IDF score;
3. repeatedly dequeue the best pending db-page; if it cannot be expanded
   (its size already reaches ``s``, or it has no combinable neighbour left in
   the fragment graph) it becomes a result, otherwise it is expanded by the
   most relevant combinable fragment and re-queued;
4. stop when ``k`` results are collected or the queue empties, and formulate
   the result URLs by reverse query-string parsing.

Two implementation notes beyond the paper's pseudo-code:

* **Sharded seeding** — when the index sits on a partitioned
  :class:`~repro.store.FragmentStore`, the relevant fragments are grouped by
  owning shard, each shard's seeds are scored and heapified in a parallel
  fan-out, and the per-shard heaps are merged into the global priority
  queue.  Heap order depends only on the ``(score, seed position)`` keys, so
  any shard count dequeues in exactly the single-shard order.
* **Incremental page statistics** — every pending db-page carries its exact
  integer occurrence totals and size (:class:`~repro.core.scoring.PageStats`),
  so evaluating an expansion candidate costs ``O(|W|)`` instead of
  re-scoring the whole page.  Scores come out bit-identical to the
  reference :meth:`~repro.core.scoring.DashScorer.score`.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import FragmentId
from repro.core.scoring import DashScorer, PageStats
from repro.core.urls import UrlFormulator

#: One priority-queue entry: (negated score, tie-break, fragments).
QueueEntry = Tuple[float, int, Tuple[FragmentId, ...]]


@dataclass(frozen=True)
class SearchResult:
    """One suggested db-page."""

    url: str
    score: float
    fragments: Tuple[FragmentId, ...]
    size: int
    bindings: Mapping[str, Any]

    def __contains__(self, identifier: object) -> bool:
        try:
            candidate = tuple(identifier)  # type: ignore[arg-type]
        except TypeError:
            # Scalar lookups (e.g. a bare budget value) can never match a
            # fragment identifier tuple; answer False instead of raising.
            return False
        return candidate in self.fragments


@dataclass
class SearchStatistics:
    """Instrumentation of one search call (used by the Figure 11 bench)."""

    elapsed_seconds: float = 0.0
    seed_fragments: int = 0
    expansions: int = 0
    dequeues: int = 0
    results: int = 0


class TopKSearcher:
    """Executes Algorithm 1 over a fragment index and a fragment graph."""

    def __init__(
        self,
        index: InvertedFragmentIndex,
        graph: FragmentGraph,
        url_formulator: UrlFormulator,
    ) -> None:
        self.index = index
        self.graph = graph
        self.url_formulator = url_formulator
        self.last_statistics = SearchStatistics()
        # Identifier -> deterministic sort key.  Scoped to this searcher on
        # purpose: Python equates 1 and True as dict keys, so a process-wide
        # cache could hand one engine's key to another engine's identifier;
        # within a single index/graph such identifiers are the same fragment.
        self._order_cache: Dict[FragmentId, Tuple] = {}

    def _order(self, identifier: FragmentId) -> Tuple:
        key = self._order_cache.get(identifier)
        if key is None:
            key = _identifier_order(identifier)
            self._order_cache[identifier] = key
        return key

    # ------------------------------------------------------------------
    def search(
        self,
        keywords: Iterable[str],
        k: int = 10,
        size_threshold: int = 100,
    ) -> List[SearchResult]:
        """Return the URLs of the (at most) ``k`` most relevant db-pages.

        ``size_threshold`` is the paper's ``s``: pending db-pages smaller than
        ``s`` keep being expanded while combinable fragments remain, so results
        carry at least ``s`` keywords of content whenever that is achievable.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        if size_threshold < 1:
            raise ValueError("the size threshold s must be at least 1")
        started = time.perf_counter()
        statistics = SearchStatistics()

        scorer = DashScorer(self.index, keywords)
        seeds = scorer.relevant_fragments()
        statistics.seed_fragments = len(seeds)

        # Priority queue of pending db-pages, keyed by descending score.  The
        # tie-breaking counter keeps heap ordering deterministic: seeds take
        # counters 0..len(seeds)-1 in relevant-fragment order, expansions
        # continue from there.
        queue = self._seed_queue(seeds, scorer)
        counter = itertools.count(len(seeds))

        # Pending pages carry their integer occurrence/size statistics so each
        # expansion evaluation is O(|W|); seeds compute theirs on first pop.
        stats_cache: Dict[Tuple[FragmentId, ...], PageStats] = {}
        # Sorted neighbour lists, fetched once per fragment per search: the
        # expansion loop re-visits every member of a growing page, and on
        # partitioned stores each graph lookup is a shard round-trip.
        neighbor_cache: Dict[FragmentId, Tuple[FragmentId, ...]] = {}
        consumed: Set[FragmentId] = set()
        results: List[SearchResult] = []
        while queue and len(results) < k:
            negative_score, _tie, fragments = heapq.heappop(queue)
            statistics.dequeues += 1
            if len(fragments) == 1 and fragments[0] in consumed:
                # This seed was absorbed into an expanded db-page already
                # (the paper removes such entries from the queue).
                continue
            stats = stats_cache.pop(fragments, None)
            if stats is None:
                stats = scorer.page_stats(fragments)
            expansion = self._expansion_candidate(
                fragments, scorer, size_threshold, stats, neighbor_cache
            )
            if expansion is None:
                results.append(self._make_result(fragments, -negative_score, stats))
                continue
            candidate, expanded_stats = expansion
            statistics.expansions += 1
            consumed.add(candidate)
            expanded = self._ordered(fragments + (candidate,))
            stats_cache[expanded] = expanded_stats
            heapq.heappush(
                queue,
                (-scorer.score_from_stats(expanded_stats), next(counter), expanded),
            )

        # Best-first emission is not strictly score-ordered when an expansion
        # raises a pending page's score above an already-emitted result (the
        # keyword-dense-neighbour case); a final stable sort restores the
        # ranking without changing the result set.
        results.sort(key=lambda result: -result.score)
        statistics.results = len(results)
        statistics.elapsed_seconds = time.perf_counter() - started
        self.last_statistics = statistics
        return results

    # ------------------------------------------------------------------
    def _seed_queue(self, seeds: Tuple[FragmentId, ...], scorer: DashScorer) -> List[QueueEntry]:
        """Build the initial priority queue of single-fragment pending pages.

        On a partitioned store the seeds are grouped by owning shard and each
        shard's task *scores its own seeds* before emitting queue entries; the
        per-shard entry lists are then merged into the global priority queue
        with one heapify.  Heap pops are ordered purely by the
        ``(-score, position)`` keys — identical for any shard count.
        """
        store = self.index.store
        if store.shard_count > 1 and len(seeds) > 1:
            by_shard: Dict[int, List[Tuple[int, FragmentId]]] = {}
            for position, identifier in enumerate(seeds):
                by_shard.setdefault(store.shard_of(identifier), []).append((position, identifier))

            def shard_entries(items: List[Tuple[int, FragmentId]]) -> List[QueueEntry]:
                scores = scorer.seed_scores_for([identifier for _position, identifier in items])
                return [
                    (-scores[identifier], position, (identifier,))
                    for position, identifier in items
                ]

            parts = store.run_parallel(
                [lambda items=items: shard_entries(items) for items in by_shard.values()]
            )
            queue = list(itertools.chain.from_iterable(parts))
        else:
            seed_scores = scorer.seed_scores()
            queue = [
                (-seed_scores[identifier], position, (identifier,))
                for position, identifier in enumerate(seeds)
            ]
        heapq.heapify(queue)
        return queue

    def _expansion_candidate(
        self,
        fragments: Tuple[FragmentId, ...],
        scorer: DashScorer,
        size_threshold: int,
        stats: PageStats,
        neighbor_cache: Dict[FragmentId, Tuple[FragmentId, ...]],
    ) -> Optional[Tuple[FragmentId, PageStats]]:
        """The fragment to expand with (and the expanded page's statistics),
        or ``None`` when not expandable.

        A pending db-page is not expandable when its size already reaches the
        threshold ``s`` or no combinable fragment remains.  Among the
        combinable candidates, relevant fragments (those containing query
        keywords) are favoured, then higher resulting score, then the
        deterministic identifier order.
        """
        if stats.size >= size_threshold:
            return None
        members = set(fragments)
        candidates: List[FragmentId] = []
        for identifier in fragments:
            neighbors = neighbor_cache.get(identifier)
            if neighbors is None:
                neighbors = self.graph.neighbors(identifier)
                neighbor_cache[identifier] = neighbors
            for neighbor in neighbors:
                if neighbor not in members:
                    candidates.append(neighbor)
        if not candidates:
            return None

        best_key = None
        best: Optional[Tuple[FragmentId, PageStats]] = None
        for candidate in dict.fromkeys(candidates):
            extended = scorer.extended_stats(stats, candidate)
            preference = (
                0 if scorer.fragment_is_relevant(candidate) else 1,
                -scorer.score_from_stats(extended),
                self._order(candidate),
            )
            if best_key is None or preference < best_key:
                best_key = preference
                best = (candidate, extended)
        return best

    def _make_result(
        self,
        fragments: Tuple[FragmentId, ...],
        score: float,
        stats: PageStats,
    ) -> SearchResult:
        bindings = self.url_formulator.bindings_for_fragments(fragments)
        url = self.url_formulator.url_for_fragments(fragments)
        return SearchResult(
            url=url,
            score=score,
            fragments=fragments,
            size=stats.size,
            bindings=bindings,
        )

    def _ordered(self, fragments: Tuple[FragmentId, ...]) -> Tuple[FragmentId, ...]:
        return tuple(sorted(set(fragments), key=self._order))


def _identifier_order(identifier: FragmentId):
    return tuple(
        (0, "") if component is None
        else (1, float(component)) if isinstance(component, (int, float)) and not isinstance(component, bool)
        else (2, str(component))
        for component in identifier
    )
