"""Top-k db-page search (Algorithm 1 of the paper).

Given queried keywords ``W``, a result count ``k`` and a size threshold ``s``,
the search assembles db-page fragments into db-pages and returns the URLs of
the ``k`` most relevant ones:

1. look up the fragments relevant to ``W`` in the inverted fragment index;
2. seed a priority queue with them, ordered by TF/IDF score;
3. repeatedly dequeue the best pending db-page; if it cannot be expanded
   (its size already reaches ``s``, or it has no combinable neighbour left in
   the fragment graph) it becomes a result, otherwise it is expanded by the
   most relevant combinable fragment and re-queued;
4. stop when ``k`` results are collected or the queue empties, and formulate
   the result URLs by reverse query-string parsing.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import FragmentId
from repro.core.scoring import DashScorer
from repro.core.urls import UrlFormulator


@dataclass(frozen=True)
class SearchResult:
    """One suggested db-page."""

    url: str
    score: float
    fragments: Tuple[FragmentId, ...]
    size: int
    bindings: Mapping[str, Any]

    def __contains__(self, identifier: FragmentId) -> bool:
        return tuple(identifier) in self.fragments


@dataclass
class SearchStatistics:
    """Instrumentation of one search call (used by the Figure 11 bench)."""

    elapsed_seconds: float = 0.0
    seed_fragments: int = 0
    expansions: int = 0
    dequeues: int = 0
    results: int = 0


class TopKSearcher:
    """Executes Algorithm 1 over a fragment index and a fragment graph."""

    def __init__(
        self,
        index: InvertedFragmentIndex,
        graph: FragmentGraph,
        url_formulator: UrlFormulator,
    ) -> None:
        self.index = index
        self.graph = graph
        self.url_formulator = url_formulator
        self.last_statistics = SearchStatistics()

    # ------------------------------------------------------------------
    def search(
        self,
        keywords: Iterable[str],
        k: int = 10,
        size_threshold: int = 100,
    ) -> List[SearchResult]:
        """Return the URLs of the (at most) ``k`` most relevant db-pages.

        ``size_threshold`` is the paper's ``s``: pending db-pages smaller than
        ``s`` keep being expanded while combinable fragments remain, so results
        carry at least ``s`` keywords of content whenever that is achievable.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        if size_threshold < 1:
            raise ValueError("the size threshold s must be at least 1")
        started = time.perf_counter()
        statistics = SearchStatistics()

        scorer = DashScorer(self.index, keywords)
        seeds = scorer.relevant_fragments()
        statistics.seed_fragments = len(seeds)

        # Priority queue of pending db-pages, keyed by descending score.  The
        # tie-breaking counter keeps heap ordering deterministic.
        counter = itertools.count()
        queue: List[Tuple[float, int, Tuple[FragmentId, ...]]] = []
        for identifier in seeds:
            entry = (tuple(identifier),)
            heapq.heappush(queue, (-scorer.score(entry), next(counter), entry))

        consumed: Set[FragmentId] = set()
        results: List[SearchResult] = []
        while queue and len(results) < k:
            negative_score, _tie, fragments = heapq.heappop(queue)
            statistics.dequeues += 1
            if len(fragments) == 1 and fragments[0] in consumed:
                # This seed was absorbed into an expanded db-page already
                # (the paper removes such entries from the queue).
                continue
            expansion = self._expansion_candidate(fragments, scorer, size_threshold)
            if expansion is None:
                results.append(self._make_result(fragments, -negative_score, scorer))
                continue
            statistics.expansions += 1
            consumed.add(expansion)
            expanded = self._ordered(fragments + (expansion,))
            heapq.heappush(queue, (-scorer.score(expanded), next(counter), expanded))

        statistics.results = len(results)
        statistics.elapsed_seconds = time.perf_counter() - started
        self.last_statistics = statistics
        return results

    # ------------------------------------------------------------------
    def _expansion_candidate(
        self,
        fragments: Tuple[FragmentId, ...],
        scorer: DashScorer,
        size_threshold: int,
    ) -> Optional[FragmentId]:
        """The fragment to expand with, or ``None`` when not expandable.

        A pending db-page is not expandable when its size already reaches the
        threshold ``s`` or no combinable fragment remains.  Among the
        combinable candidates, relevant fragments (those containing query
        keywords) are favoured, then higher resulting score, then the
        deterministic identifier order.
        """
        if scorer.page_size(fragments) >= size_threshold:
            return None
        members = set(fragments)
        candidates: List[FragmentId] = []
        for identifier in fragments:
            for neighbor in self.graph.neighbors(identifier):
                if neighbor not in members:
                    candidates.append(neighbor)
        if not candidates:
            return None
        unique_candidates = list(dict.fromkeys(candidates))

        def preference(candidate: FragmentId):
            relevant = scorer.fragment_is_relevant(candidate)
            resulting_score = scorer.score(self._ordered(fragments + (candidate,)))
            return (0 if relevant else 1, -resulting_score, _identifier_order(candidate))

        unique_candidates.sort(key=preference)
        return unique_candidates[0]

    def _make_result(
        self,
        fragments: Tuple[FragmentId, ...],
        score: float,
        scorer: DashScorer,
    ) -> SearchResult:
        bindings = self.url_formulator.bindings_for_fragments(fragments)
        url = self.url_formulator.url_for_fragments(fragments)
        return SearchResult(
            url=url,
            score=score,
            fragments=fragments,
            size=scorer.page_size(fragments),
            bindings=bindings,
        )

    @staticmethod
    def _ordered(fragments: Tuple[FragmentId, ...]) -> Tuple[FragmentId, ...]:
        return tuple(sorted(set(fragments), key=_identifier_order))


def _identifier_order(identifier: FragmentId):
    return tuple(
        (0, "") if component is None
        else (1, float(component)) if isinstance(component, (int, float)) and not isinstance(component, bool)
        else (2, str(component))
        for component in identifier
    )
