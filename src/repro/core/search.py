"""Top-k db-page search (Algorithm 1 of the paper).

Given queried keywords ``W``, a result count ``k`` and a size threshold ``s``,
the search assembles db-page fragments into db-pages and returns the URLs of
the ``k`` most relevant ones:

1. look up the fragments relevant to ``W`` in the inverted fragment index;
2. seed a priority queue with them, ordered by TF/IDF score;
3. repeatedly dequeue the best pending db-page; if it cannot be expanded
   (its size already reaches ``s``, or it has no combinable neighbour left in
   the fragment graph) it becomes a result, otherwise it is expanded by the
   most relevant combinable fragment and re-queued;
4. stop when ``k`` results are collected or the queue empties, and formulate
   the result URLs by reverse query-string parsing.

Four implementation notes beyond the paper's pseudo-code:

* **Exact block-max early termination** — seeds are *not* even read up
  front.  Each query keyword's impact-ordered inverted list is served as
  fixed-size *blocks* with per-block maxima
  (:meth:`~repro.store.FragmentStore.posting_blocks_for_many`), and the
  pending heap holds whole undecoded blocks under the admissible per-block
  bound of :meth:`~repro.core.scoring.DashScorer.block_plan`.  A block is
  decoded — and its fragments materialized (vectors and sizes batch-read,
  exact scores computed and pushed onto the real priority queue) — only
  while its bound says some member could still win the next dequeue.
  Because every bound is at least the exact score of every member, the pop
  order of entries that reach the queue — and therefore the result set — is
  provably identical to scoring everything eagerly (entries the eager path
  would dequeue only to discard as duplicates or already-consumed are
  dropped before the queue here, so ``SearchStatistics.dequeues`` can be
  lower in bounded mode while results stay byte-identical); blocks whose
  bound never reaches the frontier are never decoded at all, which is where
  partitioned and on-disk backends stop paying for thousands of row decodes
  and size reads per query.  The same argument prunes expansion candidates:
  an irrelevant candidate can never out-prefer a relevant one (the
  relevance tier dominates the preference order), and a relevant candidate
  whose :meth:`~repro.core.scoring.DashScorer.extended_score_bound` cannot
  beat the best candidate found so far is skipped without reading its size.
  ``SearchStatistics`` counts both the pruned and the decoded work;
  construct the searcher with ``early_termination=False`` for the
  bound-free exhaustive reference (the property suite checks the two
  byte-identical).
* **Sharded seeding** — on a partitioned
  :class:`~repro.store.FragmentStore`, materialization batches read their
  sizes through ``fragment_sizes_for`` (one fan-out per batch); the
  exhaustive path groups seeds by owning shard and scores them in a
  parallel fan-out.  Heap order depends only on the ``(score, seed
  position)`` keys, so any shard count dequeues in exactly the single-shard
  order.
* **Incremental page statistics** — every pending db-page carries its exact
  integer occurrence totals and size (:class:`~repro.core.scoring.PageStats`),
  so evaluating an expansion candidate costs ``O(|W|)`` instead of
  re-scoring the whole page.  Scores come out bit-identical to the
  reference :meth:`~repro.core.scoring.DashScorer.score`.
* **Resumable streams** — the dequeue loop lives in :class:`SearchStream`:
  ``peek_entry`` exposes the exact key of the next dequeue (materializing
  just enough blocks for that key to be final) and ``next_result`` processes
  dequeues up to a caller-supplied key limit.  ``search_detailed`` drains
  one stream; the cluster's :class:`~repro.cluster.QueryRouter` interleaves
  per-partition streams by smallest next key, which replays the exact
  dequeue sequence of a single merged store — scatter-gather results stay
  byte-identical to a single-store run.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import FragmentId
from repro.core.scoring import DashScorer, PageStats
from repro.core.urls import UrlFormulator

#: One priority-queue entry: (negated score, tie-break, fragments).  The
#: tie-break is a tuple: seeds carry ``(0, identifier order)`` and expanded
#: pages ``(1, member identifier orders)`` — both derived from the entry's
#: *content*, never from insertion order, so equal-score ties resolve
#: identically for any backend, any materialization order, and any
#: partitioning of the corpus (the cluster router merges per-partition
#: streams by exactly these keys) — and the pending *block* heap's sentinel
#: tie ``(0,)`` sorts at-or-before every queue tie, keeping the
#: materialize-before-dequeue invariant exact.
QueueEntry = Tuple[float, Tuple, Tuple[FragmentId, ...]]

#: One pending-block heap entry: (negated bound, sentinel tie, keyword
#: index, block number, posting count).
BlockEntry = Tuple[float, Tuple, int, int, int]

#: ``SearchStatistics`` counters accumulated into lifetime totals — by every
#: :class:`TopKSearcher` and, with the fan-out counters live, by the cluster
#: router (both surface through ``SearchService.statistics()["search"]``).
LIFETIME_FIELDS = (
    "dequeues",
    "expansions",
    "seeds_scored",
    "pruned_dequeues",
    "pruned_expansions",
    "blocks_skipped",
    "blocks_decoded",
    "postings_decoded",
    "nodes_queried",
    "nodes_short_circuited",
    "partials_merged",
    "partials_discarded",
    "failovers",
    "df_cache_hits",
    "df_cache_misses",
    "partitions_pruned",
)


@dataclass(frozen=True)
class SearchResult:
    """One suggested db-page."""

    url: str
    score: float
    fragments: Tuple[FragmentId, ...]
    size: int
    bindings: Mapping[str, Any]

    def __contains__(self, identifier: object) -> bool:
        try:
            candidate = tuple(identifier)  # type: ignore[arg-type]
        except TypeError:
            # Scalar lookups (e.g. a bare budget value) can never match a
            # fragment identifier tuple; answer False instead of raising.
            return False
        return candidate in self.fragments


@dataclass
class SearchStatistics:
    """Instrumentation of one search call (used by the Figure 11 bench).

    ``seed_fragments`` is the total number of posting entries across the
    query keywords' inverted lists (``sum_w df_w`` — a fragment relevant to
    two keywords counts twice); ``seeds_scored`` is how many distinct seeds
    were materialized (vector and size read, exact score computed);
    ``pruned_dequeues`` counts posting entries that never produced a scored
    queue entry — members of never-decoded blocks, decoded duplicates of an
    already-materialized fragment, and decoded entries of already-consumed
    fragments — so ``seeds_scored + pruned_dequeues == seed_fragments``
    holds on every bounded search.  ``blocks_skipped``/``blocks_decoded``
    split the block directory into never-decoded and decoded blocks, and
    ``postings_decoded`` totals the entries the decoded blocks yielded.
    ``pruned_expansions`` counts expansion-candidate evaluations skipped by
    the relevance tier or by
    :meth:`~repro.core.scoring.DashScorer.extended_score_bound`.  The
    pruned and block counters stay 0 on an ``early_termination=False``
    searcher (the exhaustive path reads whole lists, not blocks).

    The fan-out counters are filled in by the cluster's scatter-gather
    router (:class:`~repro.cluster.QueryRouter`) and stay 0 on a
    single-store search: ``nodes_queried`` is how many distinct nodes served
    a partition stream, ``nodes_short_circuited`` how many of them still had
    undrained work when the merge collected its ``k``-th result (their best
    remaining bound could no longer win), ``partials_merged`` how many
    per-node partial results entered the merged ranking, and
    ``partials_discarded`` how many materialized partial candidates the
    merge abandoned unranked.

    The fault-tolerance fields are router-filled too: ``failovers`` counts
    partition read attempts that failed and were retried on another fresh
    copy (or abandoned); ``complete`` flips to ``False`` — with the lost
    partitions in ``missing_partitions`` — when the query was answered
    under ``degraded_ok=True`` without every partition (see
    :mod:`repro.cluster.router`).  Single-store searches are always
    complete.

    The term-statistics fields are router-filled as well:
    ``df_cache_hits``/``df_cache_misses`` count query keywords whose global
    document frequency was served from (or had to be read past) the
    router's epoch-validated :class:`~repro.cluster.stats.TermStatsCache`
    — a fully-hit query skips the DF fan-out round entirely — and
    ``partitions_pruned`` counts partitions the router never opened a
    stream on because their cached upper-bound score could not contribute
    (see :func:`~repro.cluster.stats.partition_bounds`).
    ``discard_ratio`` derives ``partials_discarded / partials_merged``
    (0.0 when nothing merged) — the merge's waste factor.
    """

    elapsed_seconds: float = 0.0
    seed_fragments: int = 0
    seeds_scored: int = 0
    expansions: int = 0
    dequeues: int = 0
    pruned_dequeues: int = 0
    pruned_expansions: int = 0
    blocks_skipped: int = 0
    blocks_decoded: int = 0
    postings_decoded: int = 0
    results: int = 0
    nodes_queried: int = 0
    nodes_short_circuited: int = 0
    partials_merged: int = 0
    partials_discarded: int = 0
    failovers: int = 0
    df_cache_hits: int = 0
    df_cache_misses: int = 0
    partitions_pruned: int = 0
    complete: bool = True
    missing_partitions: Tuple[int, ...] = ()

    @property
    def discard_ratio(self) -> float:
        """``partials_discarded / partials_merged`` (0.0 when nothing merged)."""
        if not self.partials_merged:
            return 0.0
        return self.partials_discarded / self.partials_merged


@dataclass(frozen=True)
class DetailedSearch:
    """One search call's results plus its provenance.

    ``dependencies`` is every fragment the search *consulted* — seeds, page
    members and every expansion candidate whose size or adjacency was read.
    Together with ``keywords`` (canonicalised) and ``epoch`` (the store epoch
    observed before the first read) it is exactly what a serving cache needs
    to decide later whether the entry is still fresh: the result can only
    change through a mutation that either touches some query keyword's
    postings or touches a consulted fragment, and both bump the corresponding
    store epochs past ``epoch``.
    """

    results: Tuple[SearchResult, ...]
    keywords: Tuple[str, ...]
    dependencies: FrozenSet[FragmentId]
    epoch: int
    statistics: SearchStatistics


class SearchSession:
    """Reusable cross-search state for one searcher, epoch-invalidated.

    Without a session every :meth:`TopKSearcher.search` call rebuilds its
    per-search caches from scratch: a :class:`DashScorer` (IDF table, gathered
    inverted lists, fragment sizes) and a fragment→neighbours map.  A session
    keeps both across calls — scorers in a small LRU keyed by the canonical
    keyword tuple, neighbour lists in a shared map — and drops everything the
    moment the store's mutation epoch moves, so reuse never outlives the data
    it was computed from.

    Safe for concurrent searches: the caches are guarded by a lock for
    compound operations, and a search that raced a store mutation stamps its
    output with the pre-mutation epoch, which the serving cache then refuses
    to keep.
    """

    def __init__(
        self,
        searcher: "TopKSearcher",
        scorer_capacity: int = 64,
        neighbor_capacity: int = 65536,
    ) -> None:
        self._searcher = searcher
        self._capacity = max(1, scorer_capacity)
        self._neighbor_capacity = max(1, neighbor_capacity)
        self._lock = threading.Lock()
        self._epoch = searcher.index.store.epoch
        self._scorers: "OrderedDict[Tuple[str, ...], DashScorer]" = OrderedDict()
        self._neighbors: Dict[FragmentId, Tuple[FragmentId, ...]] = {}
        self.scorer_reuses = 0
        self.scorer_builds = 0

    @property
    def epoch(self) -> int:
        """The store epoch the cached state was computed at."""
        return self._epoch

    def begin(self) -> Tuple[int, Dict[FragmentId, Tuple[FragmentId, ...]]]:
        """Start one search: revalidate against the store epoch.

        Returns the observed epoch and the neighbour cache to use.  When the
        store moved, the caches are replaced (not mutated), so searches still
        in flight keep their consistent-but-stale dicts and only their own
        results are marked stale.
        """
        epoch = self._searcher.index.store.epoch
        with self._lock:
            if epoch != self._epoch:
                self._scorers = OrderedDict()
                self._neighbors = {}
                self._epoch = epoch
            elif len(self._neighbors) > self._neighbor_capacity:
                # Long-lived read-only sessions would otherwise accumulate a
                # full second copy of the store's adjacency; a periodic reset
                # bounds memory at the cost of re-fetching hot lists.
                self._neighbors = {}
            return self._epoch, self._neighbors

    def scorer_for(self, keywords: Tuple[str, ...], epoch: int) -> DashScorer:
        """A scorer for ``keywords``, reused when one exists for this epoch."""
        with self._lock:
            if epoch == self._epoch:
                scorer = self._scorers.get(keywords)
                if scorer is not None:
                    self._scorers.move_to_end(keywords)
                    self.scorer_reuses += 1
                    return scorer
        scorer = DashScorer(
            self._searcher.index, keywords, lazy=self._searcher.early_termination
        )
        with self._lock:
            self.scorer_builds += 1
            if epoch == self._epoch:
                self._scorers[keywords] = scorer
                while len(self._scorers) > self._capacity:
                    self._scorers.popitem(last=False)
        return scorer

    def statistics(self) -> Dict[str, int]:
        """Reuse counters (surfaced by ``SearchService.statistics``)."""
        with self._lock:
            return {
                "epoch": self._epoch,
                "cached_scorers": len(self._scorers),
                "cached_neighbor_lists": len(self._neighbors),
                "scorer_reuses": self.scorer_reuses,
                "scorer_builds": self.scorer_builds,
            }


class TopKSearcher:
    """Executes Algorithm 1 over a fragment index and a fragment graph.

    ``early_termination`` (default on) enables the exact score-bounded
    pruning described in the module docstring; turning it off restores the
    eager score-everything reference path.  Results are byte-identical
    either way — the flag exists for the property suite's oracle and for
    profiling the pruning itself.
    """

    #: Cap on the seeds materialized blind while the scored queue is empty
    #: (the very first batch of a search): big enough to amortize one
    #: batched size read, small enough not to undo the pruning.  The
    #: effective blind batch is ``min(SEED_BATCH, max(2 * k, 8))`` — a
    #: small-``k`` search should not score dozens of seeds it may never pop.
    SEED_BATCH = 64

    def __init__(
        self,
        index: InvertedFragmentIndex,
        graph: FragmentGraph,
        url_formulator: UrlFormulator,
        early_termination: bool = True,
    ) -> None:
        self.index = index
        self.graph = graph
        self.url_formulator = url_formulator
        self.early_termination = early_termination
        self.last_statistics = SearchStatistics()
        # Pruning pays off across requests, so the serving layer wants the
        # running totals, not just the last search's snapshot.
        self._lifetime_lock = threading.Lock()
        self._lifetime: Dict[str, int] = {"searches": 0}
        self._lifetime.update({field_name: 0 for field_name in LIFETIME_FIELDS})
        # Identifier -> deterministic sort key.  Scoped to this searcher on
        # purpose: Python equates 1 and True as dict keys, so a process-wide
        # cache could hand one engine's key to another engine's identifier;
        # within a single index/graph such identifiers are the same fragment.
        self._order_cache: Dict[FragmentId, Tuple] = {}

    def lifetime_statistics(self) -> Dict[str, float]:
        """Running totals over every search this searcher has answered.

        Includes the derived ``discard_ratio`` (``partials_discarded /
        partials_merged``, 0.0 on a single-store searcher where both stay
        0) alongside the raw accumulated counters.
        """
        with self._lifetime_lock:
            snapshot: Dict[str, float] = dict(self._lifetime)
        merged = snapshot.get("partials_merged", 0)
        snapshot["discard_ratio"] = (
            snapshot.get("partials_discarded", 0) / merged if merged else 0.0
        )
        return snapshot

    def _order(self, identifier: FragmentId) -> Tuple:
        key = self._order_cache.get(identifier)
        if key is None:
            key = _identifier_order(identifier)
            self._order_cache[identifier] = key
        return key

    # ------------------------------------------------------------------
    def session(self, scorer_capacity: int = 64) -> SearchSession:
        """A reusable search session over this searcher (see SearchSession)."""
        return SearchSession(self, scorer_capacity=scorer_capacity)

    def search(
        self,
        keywords: Iterable[str],
        k: int = 10,
        size_threshold: int = 100,
        session: Optional[SearchSession] = None,
    ) -> List[SearchResult]:
        """Return the URLs of the (at most) ``k`` most relevant db-pages.

        ``size_threshold`` is the paper's ``s``: pending db-pages smaller than
        ``s`` keep being expanded while combinable fragments remain, so results
        carry at least ``s`` keywords of content whenever that is achievable.
        """
        return list(self.search_detailed(keywords, k, size_threshold, session=session).results)

    def search_detailed(
        self,
        keywords: Iterable[str],
        k: int = 10,
        size_threshold: int = 100,
        session: Optional[SearchSession] = None,
    ) -> DetailedSearch:
        """Run Algorithm 1 and report results, dependencies and the epoch.

        ``session`` supplies reusable cross-search caches (scorers, neighbour
        lists); without one, per-search caches are built from scratch exactly
        as before.  The returned :class:`DetailedSearch` carries everything a
        serving cache needs to stamp and later revalidate the entry.
        """
        stream = self.stream(keywords, k, size_threshold, session=session)
        while stream.next_result() is not None:
            pass
        detailed = stream.as_detailed()
        self.last_statistics = detailed.statistics
        self._record_lifetime(detailed.statistics)
        return detailed

    def stream(
        self,
        keywords: Iterable[str],
        k: int = 10,
        size_threshold: int = 100,
        session: Optional[SearchSession] = None,
        idf_overrides: Optional[Mapping[str, float]] = None,
    ) -> "SearchStream":
        """Open one search as a resumable, bound-ordered :class:`SearchStream`.

        ``search_detailed`` drains a stream in one go; the cluster router
        instead opens one stream per partition and interleaves them by
        smallest next dequeue key.  ``idf_overrides`` substitutes
        router-supplied global IDF values for the locally derived ones
        (see :class:`~repro.core.scoring.DashScorer`) so a partition scores
        every fragment exactly as the merged corpus would; overridden
        streams always build a fresh scorer — a session's cached scorer
        revalidates only against the *local* store epoch and could not see
        a remote partition's mutations.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        if size_threshold < 1:
            raise ValueError("the size threshold s must be at least 1")
        canonical = tuple(dict.fromkeys(str(keyword).lower() for keyword in keywords))
        if session is not None and idf_overrides is None:
            epoch, neighbor_cache = session.begin()
            scorer = session.scorer_for(canonical, epoch)
        else:
            epoch = self.index.store.epoch
            neighbor_cache = {}
            scorer = DashScorer(
                self.index,
                canonical,
                lazy=self.early_termination,
                idf_overrides=idf_overrides,
            )
        return SearchStream(self, canonical, k, size_threshold, scorer, epoch, neighbor_cache)

    def _record_lifetime(self, statistics: SearchStatistics) -> None:
        with self._lifetime_lock:
            self._lifetime["searches"] += 1
            for field_name in LIFETIME_FIELDS:
                self._lifetime[field_name] += getattr(statistics, field_name)

    # ------------------------------------------------------------------
    def _materialize_blocks(
        self,
        pending_blocks: List[BlockEntry],
        queue: List[QueueEntry],
        scorer: DashScorer,
        consumed: Set[FragmentId],
        seen: Set[FragmentId],
        consulted: Set[FragmentId],
        statistics: SearchStatistics,
        k: int,
        limit: Optional[tuple] = None,
    ) -> None:
        """Decode every waiting block whose bound could still win the next pop.

        A waiting block must be decoded before the next dequeue whenever its
        ``(-bound, (0,))`` key is at most the queue head's ``(-score, tie)``
        key: every member's exact score is at most the block bound, so any
        block *not* decoded provably loses the pop to the queue head, and
        the dequeue sequence is exactly the eager path's (the sentinel tie
        ``(0,)`` sorts at-or-before every queue tie, so equality still
        decodes).  A scatter-gather merge additionally passes its runner-up
        ``limit``: blocks keying after the limit cannot contribute to any
        dequeue this advance is allowed to perform (their members key
        at-or-after the block sentinel), so they stay undecoded until —
        unless — their bound itself surfaces in the merge.  Decoded
        fragments are materialized in batches — one batched vector read
        plus one batched size read per batch; while the queue is still
        empty (the first blocks of a search) up to ``SEED_BATCH``
        best-bound fragments are materialized blind.  Duplicates of
        already-materialized fragments and fragments already absorbed into
        an expanded page are dropped unscored — the eager path would
        dequeue and discard them.
        """
        blind_batch = min(self.SEED_BATCH, max(2 * k, 8))
        limit_key = None if limit is None else tuple(limit[:2])
        while (
            pending_blocks
            and (limit_key is None or pending_blocks[0][:2] <= limit_key)
            and (not queue or pending_blocks[0][:2] <= queue[0][:2])
        ):
            threshold = queue[0][:2] if queue else None
            batch: List[FragmentId] = []
            while (
                pending_blocks
                and (limit_key is None or pending_blocks[0][:2] <= limit_key)
                and (
                    pending_blocks[0][:2] <= threshold
                    if threshold is not None
                    else len(batch) < blind_batch
                )
            ):
                _bound, _tie, keyword_index, block_no, _count = heapq.heappop(pending_blocks)
                entries = scorer.decode_block(keyword_index, block_no)
                statistics.blocks_decoded += 1
                statistics.postings_decoded += len(entries)
                for identifier in entries:
                    if identifier in seen:
                        statistics.pruned_dequeues += 1
                        continue
                    seen.add(identifier)
                    if identifier in consumed:
                        statistics.pruned_dequeues += 1
                        continue
                    batch.append(identifier)
            if not batch:
                continue
            consulted.update(batch)
            scorer.ensure_known(batch)
            scorer.prime_sizes(batch)
            scores = scorer.seed_scores_for(batch)
            statistics.seeds_scored += len(batch)
            for identifier in batch:
                heapq.heappush(
                    queue,
                    (-scores[identifier], (0, self._order(identifier)), (identifier,)),
                )

    def _seed_queue(self, seeds: Tuple[FragmentId, ...], scorer: DashScorer) -> List[QueueEntry]:
        """Build the initial priority queue of single-fragment pending pages.

        On a partitioned store the seeds are grouped by owning shard and each
        shard's task *scores its own seeds* before emitting queue entries; the
        per-shard entry lists are then merged into the global priority queue
        with one heapify.  Heap pops are ordered purely by the
        ``(-score, (0, identifier order))`` keys — identical for any shard
        count, and identical to the keys bounded-mode materialization pushes.
        """
        scorer.prime_sizes(seeds)  # one batched read, not one per seed
        store = self.index.store
        if store.shard_count > 1 and len(seeds) > 1:
            by_shard: Dict[int, List[FragmentId]] = {}
            for identifier in seeds:
                by_shard.setdefault(store.shard_of(identifier), []).append(identifier)

            def shard_entries(items: List[FragmentId]) -> List[QueueEntry]:
                scores = scorer.seed_scores_for(items)
                return [
                    (-scores[identifier], (0, self._order(identifier)), (identifier,))
                    for identifier in items
                ]

            parts = store.run_parallel(
                [lambda items=items: shard_entries(items) for items in by_shard.values()]
            )
            queue = list(itertools.chain.from_iterable(parts))
        else:
            seed_scores = scorer.seed_scores()
            queue = [
                (-seed_scores[identifier], (0, self._order(identifier)), (identifier,))
                for identifier in seeds
            ]
        heapq.heapify(queue)
        return queue

    def _expansion_candidate(
        self,
        fragments: Tuple[FragmentId, ...],
        scorer: DashScorer,
        size_threshold: int,
        stats: PageStats,
        neighbor_cache: Dict[FragmentId, Tuple[FragmentId, ...]],
        consulted: Set[FragmentId],
        statistics: SearchStatistics,
    ) -> Optional[Tuple[FragmentId, PageStats]]:
        """The fragment to expand with (and the expanded page's statistics),
        or ``None`` when not expandable.

        A pending db-page is not expandable when its size already reaches the
        threshold ``s`` or no combinable fragment remains.  Among the
        combinable candidates, relevant fragments (those containing query
        keywords) are favoured, then higher resulting score, then the
        deterministic identifier order.  Under early termination two exact
        prunings apply: once any relevant candidate exists, irrelevant ones
        are skipped unevaluated (the relevance tier dominates the preference
        order), and a relevant candidate whose admissible extended-score
        bound cannot beat the best candidate so far is skipped without
        reading its size.  Every candidate still lands in ``consulted`` —
        skipping an evaluation must not narrow the dependency set a serving
        cache revalidates against.
        """
        if stats.size >= size_threshold:
            return None
        members = set(fragments)
        candidates: List[FragmentId] = []
        for identifier in fragments:
            neighbors = neighbor_cache.get(identifier)
            if neighbors is None:
                neighbors = self.graph.neighbors(identifier)
                neighbor_cache[identifier] = neighbors
            for neighbor in neighbors:
                if neighbor not in members:
                    candidates.append(neighbor)
        if not candidates:
            return None

        unique = list(dict.fromkeys(candidates))
        consulted.update(unique)
        # One batched vector read covers every candidate's relevance check
        # and occurrence lookups below (no-op on an eager scorer).
        scorer.ensure_known(unique)
        if self.early_termination:
            relevant = [
                candidate for candidate in unique if scorer.fragment_is_relevant(candidate)
            ]
            if relevant:
                statistics.pruned_expansions += len(unique) - len(relevant)
                return self._best_relevant_candidate(relevant, scorer, stats, statistics)

        best_key = None
        best: Optional[Tuple[FragmentId, PageStats]] = None
        for candidate in unique:
            extended = scorer.extended_stats(stats, candidate)
            preference = (
                0 if scorer.fragment_is_relevant(candidate) else 1,
                -scorer.score_from_stats(extended),
                self._order(candidate),
            )
            if best_key is None or preference < best_key:
                best_key = preference
                best = (candidate, extended)
        return best

    def _best_relevant_candidate(
        self,
        candidates: List[FragmentId],
        scorer: DashScorer,
        stats: PageStats,
        statistics: SearchStatistics,
    ) -> Tuple[FragmentId, PageStats]:
        """The preferred candidate among relevant ones, bound-pruned.

        All candidates share preference tier 0, so the comparison reduces to
        ``(-score, identifier order)``.  A candidate whose admissible bound
        key already loses to the best exact key cannot win (its exact score
        is at most its bound), so its size is never read — exact output,
        fewer store reads.
        """
        best_key = None
        best: Optional[Tuple[FragmentId, PageStats]] = None
        for candidate in candidates:
            if best_key is not None:
                bound_key = (
                    -scorer.extended_score_bound(stats, candidate),
                    self._order(candidate),
                )
                if bound_key > best_key:
                    statistics.pruned_expansions += 1
                    continue
            extended = scorer.extended_stats(stats, candidate)
            key = (-scorer.score_from_stats(extended), self._order(candidate))
            if best_key is None or key < best_key:
                best_key = key
                best = (candidate, extended)
        assert best is not None  # candidates is non-empty by construction
        return best

    def _make_result(
        self,
        fragments: Tuple[FragmentId, ...],
        score: float,
        stats: PageStats,
    ) -> SearchResult:
        bindings = self.url_formulator.bindings_for_fragments(fragments)
        url = self.url_formulator.url_for_fragments(fragments)
        return SearchResult(
            url=url,
            score=score,
            fragments=fragments,
            size=stats.size,
            bindings=bindings,
        )

    def _ordered(self, fragments: Tuple[FragmentId, ...]) -> Tuple[FragmentId, ...]:
        return tuple(sorted(set(fragments), key=self._order))


class SearchStream:
    """One search, advanced dequeue-by-dequeue in exact key order.

    The unit of progress is one priority-queue *dequeue*: :meth:`peek_entry`
    exposes the entry the next dequeue would pop — materializing exactly the
    pending blocks whose admissible bound could still win it, so the key is
    final — and :meth:`next_result` processes dequeues while that entry is
    within a caller-supplied limit, returning as soon as one emits a result.
    Queue keys are content-determined (exact score plus the deterministic
    tie-breaks of :data:`QueueEntry`), so interleaving several streams by
    smallest next entry replays the exact dequeue sequence a single merged
    queue would perform.  That is the cluster's byte-identical merge: result
    emission is *not* score-monotone (an expansion can raise a pending page
    above an already-emitted result), so per-node top-k lists cannot simply
    be merged by score — the router must, and with streams does, reproduce
    the global dequeue order itself.  ``TopKSearcher.search_detailed`` is
    the degenerate single-stream case and stays byte-identical to the
    pre-stream implementation.

    ``consulted`` collects every fragment the search reads — materialized
    seeds, page members and every evaluated expansion candidate.  Fragments
    living only in never-decoded blocks are deliberately *not* dependencies:
    any mutation that could change them ticks their keywords' postings
    epochs, which a serving cache already revalidates against.  That
    argument is partition-local, so a router may union consulted sets from
    streams that materialized more (or fewer) blind seeds than the
    single-store run without weakening cache invalidation.
    """

    def __init__(
        self,
        searcher: TopKSearcher,
        keywords: Tuple[str, ...],
        k: int,
        size_threshold: int,
        scorer: DashScorer,
        epoch: int,
        neighbor_cache: Dict[FragmentId, Tuple[FragmentId, ...]],
    ) -> None:
        self._searcher = searcher
        self.keywords = keywords
        self.k = k
        self.size_threshold = size_threshold
        self.scorer = scorer
        self.epoch = epoch
        self.statistics = SearchStatistics()
        self.statistics.seed_fragments = scorer.posting_count()
        self.consulted: Set[FragmentId] = set()
        self.results: List[SearchResult] = []
        self._neighbor_cache = neighbor_cache
        # Distinct fragments decoded so far (bounded mode): a fragment
        # relevant to several query keywords appears in several blocks but
        # must be scored exactly once.
        self._seen: Set[FragmentId] = set()
        self._consumed: Set[FragmentId] = set()
        # Pending pages carry their integer occurrence/size statistics so
        # each expansion evaluation is O(|W|); seeds compute theirs on
        # first pop.
        self._stats_cache: Dict[Tuple[FragmentId, ...], PageStats] = {}
        self._finalized = False
        self._started = time.perf_counter()
        # Under early termination the queue starts empty and whole posting
        # blocks wait in a bound-ordered heap; materialization decodes
        # exactly the blocks whose admissible bound could still win the next
        # dequeue, so the pop sequence matches the eager queue's.
        if searcher.early_termination:
            self._pending_blocks: List[BlockEntry] = [
                (-bound, (0,), keyword_index, block_no, count)
                for bound, keyword_index, block_no, count in scorer.block_plan()
            ]
            heapq.heapify(self._pending_blocks)
            self._queue: List[QueueEntry] = []
        else:
            self._pending_blocks = []
            seeds = scorer.relevant_fragments()
            self.consulted.update(seeds)
            self._queue = searcher._seed_queue(seeds, scorer)
            self.statistics.seeds_scored = len(seeds)

    @property
    def exhausted(self) -> bool:
        """True when no further dequeue can possibly happen.

        ``False`` means undrained work remains (the router counts such
        streams as short-circuited when the merge stops first); pending
        blocks that would decode to nothing but duplicates may leave this
        conservatively ``False``.
        """
        return (
            self._finalized
            or len(self.results) >= self.k
            or (not self._queue and not self._pending_blocks)
        )

    @property
    def pending_candidates(self) -> int:
        """Materialized (exactly scored) queue entries not yet dequeued."""
        return len(self._queue)

    def bound_key(self) -> Optional[tuple]:
        """Admissible lower bound on the next dequeue's key — no decoding.

        ``min(queue head, best pending-block sentinel)``: every entry a
        waiting block can produce keys at-or-after the block's
        ``(-bound, (0,))`` sentinel (the sentinel tie sorts before every
        content tie-break at equal score), so while the stream rests no
        future dequeue can compare before the returned key.  ``None``
        means the stream is done.  A scatter-gather merge keeps each
        stream in its heap under this key: a stream only decodes blocks
        once its bound actually surfaces as the global minimum, and then
        only up to the merge's runner-up limit
        (:meth:`next_result`'s ``limit``).
        """
        if self._finalized or len(self.results) >= self.k:
            return None
        head = self._queue[0] if self._queue else None
        if self._pending_blocks:
            sentinel = (self._pending_blocks[0][0], (0,))
            if head is None or sentinel < head:
                return sentinel
        return head

    def peek_entry(self) -> Optional[QueueEntry]:
        """The exact entry the next dequeue would pop, or ``None`` when done.

        Materializes every pending block whose bound could still win the
        next dequeue first, so the returned entry is final — no unscored
        block can beat it.  This is the stream's admissible *bound* surface:
        a router comparing heads across partitions sees each node's best
        remaining entry and can stop pulling from a node the moment its head
        cannot beat the global k-th result.
        """
        if self._finalized or len(self.results) >= self.k:
            return None
        if self._pending_blocks:
            self._searcher._materialize_blocks(
                self._pending_blocks,
                self._queue,
                self.scorer,
                self._consumed,
                self._seen,
                self.consulted,
                self.statistics,
                self.k,
            )
        if not self._queue:
            return None
        return self._queue[0]

    def next_result(self, limit: Optional[QueueEntry] = None) -> Optional[SearchResult]:
        """Process dequeues in key order until one emits a result.

        Returns ``None`` once the next dequeue's entry exceeds ``limit``
        (another stream's bound, during a scatter-gather merge) or the
        stream is exhausted; with ``limit=None`` only exhaustion stops it.
        Entries compare by ``(negated score, tie-break, fragments)``, so
        streams over disjoint partitions never tie and the merge order is
        total.  Materialization honours the limit too: blocks keying after
        it are left undecoded (their members provably key after it as
        well), so an advance bounded by a tight runner-up decodes at most
        the blocks that could actually win a dequeue *now* — when the head
        is popped, every still-waiting block keys after it (it either keys
        after the limit, or the head itself), so the pop is final.
        """
        searcher = self._searcher
        scorer = self.scorer
        statistics = self.statistics
        while True:
            if self._finalized or len(self.results) >= self.k:
                return None
            if self._pending_blocks:
                searcher._materialize_blocks(
                    self._pending_blocks,
                    self._queue,
                    scorer,
                    self._consumed,
                    self._seen,
                    self.consulted,
                    statistics,
                    self.k,
                    limit,
                )
            if not self._queue:
                return None
            if limit is not None and self._queue[0] > limit:
                return None
            negative_score, _tie, fragments = heapq.heappop(self._queue)
            statistics.dequeues += 1
            if len(fragments) == 1 and fragments[0] in self._consumed:
                # This seed was absorbed into an expanded db-page already
                # (the paper removes such entries from the queue).
                continue
            stats = self._stats_cache.pop(fragments, None)
            if stats is None:
                stats = scorer.page_stats(fragments)
            expansion = searcher._expansion_candidate(
                fragments,
                scorer,
                self.size_threshold,
                stats,
                self._neighbor_cache,
                self.consulted,
                statistics,
            )
            if expansion is None:
                result = searcher._make_result(fragments, -negative_score, stats)
                self.results.append(result)
                return result
            candidate, expanded_stats = expansion
            statistics.expansions += 1
            self._consumed.add(candidate)
            expanded = searcher._ordered(fragments + (candidate,))
            self._stats_cache[expanded] = expanded_stats
            heapq.heappush(
                self._queue,
                (
                    -scorer.score_from_stats(expanded_stats),
                    (1, tuple(searcher._order(member) for member in expanded)),
                    expanded,
                ),
            )

    def next_results(
        self, limit: Optional[QueueEntry] = None, max_results: int = 1
    ) -> List[SearchResult]:
        """Batch form of :meth:`next_result`: up to ``max_results`` results.

        Emits results while the next dequeue entry stays within ``limit``,
        stopping early once the batch is full.  Never decodes past the
        limit: a full batch returns without touching the next frontier,
        and a short batch stopped by ``limit`` or exhaustion leaves every
        block keying after the limit undecoded — the merge re-inserts the
        stream under :meth:`bound_key` (which costs nothing) rather than
        under a peek-finalized head.
        """
        collected: List[SearchResult] = []
        while len(collected) < max_results:
            result = self.next_result(limit)
            if result is None:
                break
            collected.append(result)
        return collected

    def finalize(self) -> SearchStatistics:
        """Close the stream and return its statistics (idempotent).

        Blocks still waiting behind their bounds were proven unable to win
        any dequeue this stream performed: every posting inside is work the
        bound saved outright — never decoded, never scored — and lands in
        ``blocks_skipped``/``pruned_dequeues``.
        """
        if not self._finalized:
            self._finalized = True
            for _bound, _tie, _keyword_index, _block_no, count in self._pending_blocks:
                self.statistics.blocks_skipped += 1
                self.statistics.pruned_dequeues += count
            self._pending_blocks = []
            self.statistics.results = len(self.results)
            self.statistics.elapsed_seconds = time.perf_counter() - self._started
        return self.statistics

    def as_detailed(self) -> DetailedSearch:
        """Finalize and package the stream's output as a DetailedSearch.

        Best-first emission is not strictly score-ordered when an expansion
        raises a pending page's score above an already-emitted result (the
        keyword-dense-neighbour case); a final stable sort restores the
        ranking without changing the result set.
        """
        statistics = self.finalize()
        ranked = sorted(self.results, key=lambda result: -result.score)
        return DetailedSearch(
            results=tuple(ranked),
            keywords=self.keywords,
            dependencies=frozenset(self.consulted),
            epoch=self.epoch,
            statistics=statistics,
        )


def _identifier_order(identifier: FragmentId):
    return tuple(
        (0, "") if component is None
        else (1, float(component)) if isinstance(component, (int, float)) and not isinstance(component, bool)
        else (2, str(component))
        for component in identifier
    )
