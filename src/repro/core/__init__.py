"""Dash core: the paper's primary contribution.

* :mod:`repro.core.fragments` — db-page fragments (Definition 2) and the
  reference (single-machine) fragment derivation.
* :mod:`repro.core.fragment_index` — the inverted fragment index.
* :mod:`repro.core.fragment_graph` — the fragment graph (Section VI-A).
* :mod:`repro.core.scoring` — the modified TF/IDF relevance of assembled
  db-pages (Section VI).
* :mod:`repro.core.crawler` — MapReduce-based database crawling and fragment
  indexing: the stepwise and the integrated algorithms (Section V).
* :mod:`repro.core.urls` — reverse query-string parsing / URL formulation.
* :mod:`repro.core.search` — the top-k db-page search (Algorithm 1).
* :mod:`repro.core.incremental` — incremental fragment-index maintenance under
  database updates (the paper's future-work direction, built as an extension).
* :mod:`repro.core.engine` — the :class:`DashEngine` facade wiring analysis,
  crawling, indexing and search together (Figure 4).

Serving-side storage (postings, fragment sizes, graph adjacency) is pluggable
through :mod:`repro.store`: the index and graph facades program against the
:class:`~repro.store.FragmentStore` interface, with
:class:`~repro.store.InMemoryStore` and the hash-partitioned
:class:`~repro.store.ShardedStore` as backends.
"""

from repro.core.crawler import CrawlResult, IntegratedCrawler, StepwiseCrawler
from repro.core.engine import DashEngine
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import Fragment, FragmentId, derive_fragments
from repro.core.incremental import IncrementalMaintainer
from repro.core.scoring import DashScorer, PageStats
from repro.core.search import DetailedSearch, SearchResult, SearchSession, TopKSearcher
from repro.core.urls import UrlFormulator
from repro.store import FragmentStore, InMemoryStore, ShardedStore, resolve_store

__all__ = [
    "CrawlResult",
    "DashEngine",
    "DashScorer",
    "DetailedSearch",
    "Fragment",
    "FragmentGraph",
    "FragmentId",
    "FragmentStore",
    "InMemoryStore",
    "IncrementalMaintainer",
    "IntegratedCrawler",
    "InvertedFragmentIndex",
    "PageStats",
    "SearchResult",
    "SearchSession",
    "ShardedStore",
    "StepwiseCrawler",
    "TopKSearcher",
    "UrlFormulator",
    "derive_fragments",
    "resolve_store",
]
