"""The fragment graph (Section VI-A, Figure 9).

Nodes are db-page fragments (annotated with their total keyword count); an
edge connects fragments ``f`` and ``f'`` when they can be combined into a
db-page — i.e. there is a query-string binding whose page contains both — and
that combined page contains *no other* fragment.

For the PSJ queries the paper considers (one or more equality parameters plus
one BETWEEN range parameter), that means:

* two fragments must agree on every equality-constrained attribute value, and
* they must be *adjacent* in the ordering of their range-attribute value
  within that equality group (if a third fragment's range value lay strictly
  between theirs, the combining page would contain it too).

Fragments with different equality values are never connected — e.g. the
``(Thai, 10)`` node is disconnected from the ``American`` chain in Figure 9.

The class supports both the paper's incremental insertion (add one fragment at
a time, splitting an existing edge when the new fragment falls between its two
endpoints) and the pre-sorted bulk construction the paper recommends as an
optimisation.

Node and adjacency storage is delegated to a pluggable
:class:`~repro.store.FragmentStore` backend; pass the same store the inverted
fragment index uses and the whole serving state (postings, sizes, adjacency)
lives in one place, shard-partitioned consistently by fragment identifier.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.fragments import FragmentId
from repro.db.query import BetweenCondition, ParameterizedPSJQuery
from repro.db.types import compare_values
from repro.store.base import FragmentStore
from repro.store.memory import InMemoryStore


class FragmentGraphError(Exception):
    """Raised for inconsistent graph operations."""


@dataclass
class GraphBuildReport:
    """Statistics of one graph construction (Table IV)."""

    build_seconds: float
    fragment_count: int
    edge_count: int
    average_keywords: float
    comparisons: int


class FragmentGraph:
    """Fragment adjacency plus per-fragment keyword counts."""

    def __init__(self, query: ParameterizedPSJQuery, store: Optional[FragmentStore] = None) -> None:
        self.query = query
        self._store = store if store is not None else InMemoryStore()
        self._equality_positions, self._range_positions = _condition_positions(query)
        self.comparisons = 0

    @property
    def store(self) -> FragmentStore:
        """The storage backend (shared with the fragment index by the engine)."""
        return self._store

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        query: ParameterizedPSJQuery,
        fragment_sizes: Mapping[FragmentId, int],
        presorted: bool = True,
        store: Optional[FragmentStore] = None,
    ) -> "FragmentGraph":
        """Build the graph for all fragments in ``fragment_sizes``.

        ``presorted=True`` applies the paper's optimisation: fragments are
        sorted by their query-parameter values before insertion, so each one
        simply extends the end of its equality group's chain — a single
        comparison per fragment instead of a scan over all existing nodes.
        """
        graph = cls(query, store=store)
        if not presorted:
            for identifier in fragment_sizes:
                graph.add_fragment(identifier, fragment_sizes[identifier])
            graph._store.finalize()
            return graph

        def group_then_range(identifier: FragmentId):
            return (
                tuple(_orderable(component) for component in graph._equality_key(identifier)),
                tuple(_orderable(component) for component in graph._range_key(identifier)),
            )

        identifiers = sorted((tuple(identifier) for identifier in fragment_sizes), key=group_then_range)
        previous: Optional[FragmentId] = None
        for identifier in identifiers:
            if graph._store.has_node(identifier):
                raise FragmentGraphError(f"fragment {identifier!r} already in the graph")
            graph._store.add_node(identifier, fragment_sizes[identifier])
            if (
                graph._range_positions
                and previous is not None
                and graph._equality_key(previous) == graph._equality_key(identifier)
            ):
                graph._store.add_edge(previous, identifier)
            graph.comparisons += 1
            previous = identifier
        # Graph construction is a bulk load like the index's: flush the
        # store's batched writes so persistent backends commit the adjacency
        # (and their read paths stop routing through the write connection).
        graph._store.finalize()
        return graph

    @classmethod
    def build_with_report(
        cls,
        query: ParameterizedPSJQuery,
        fragment_sizes: Mapping[FragmentId, int],
        presorted: bool = True,
        store: Optional[FragmentStore] = None,
    ) -> Tuple["FragmentGraph", GraphBuildReport]:
        """Build the graph and report construction statistics (Table IV)."""
        started = time.perf_counter()
        graph = cls.build(query, fragment_sizes, presorted=presorted, store=store)
        elapsed = time.perf_counter() - started
        sizes = list(fragment_sizes.values())
        average = sum(sizes) / len(sizes) if sizes else 0.0
        report = GraphBuildReport(
            build_seconds=elapsed,
            fragment_count=len(fragment_sizes),
            edge_count=graph.edge_count,
            average_keywords=average,
            comparisons=graph.comparisons,
        )
        return graph, report

    def add_fragment(self, identifier: FragmentId, keyword_count: int) -> None:
        """Incrementally insert one fragment (the paper's per-turn insertion).

        The new node is linked to its neighbours within its equality group;
        if it falls strictly between two currently-connected fragments, their
        edge is removed and replaced by two edges through the new node.
        """
        identifier = tuple(identifier)
        if self._store.has_node(identifier):
            raise FragmentGraphError(f"fragment {identifier!r} already in the graph")
        self._store.add_node(identifier, keyword_count)

        if not self._range_positions:
            # No range parameter: every fragment is its own maximal db-page.
            return

        group = self._equality_key(identifier)
        below: Optional[FragmentId] = None
        above: Optional[FragmentId] = None
        for other in self._store.node_ids():
            if other == identifier:
                continue
            self.comparisons += 1
            if self._equality_key(other) != group:
                continue
            comparison = self._compare_range(other, identifier)
            if comparison < 0:
                if below is None or self._compare_range(other, below) > 0:
                    below = other
            elif comparison > 0:
                if above is None or self._compare_range(other, above) < 0:
                    above = other
            else:
                raise FragmentGraphError(
                    f"two fragments share the identifier components {identifier!r}"
                )
        if below is not None and above is not None and self.are_connected(below, above):
            self._store.remove_edge(below, above)
        if below is not None:
            self._store.add_edge(below, identifier)
        if above is not None:
            self._store.add_edge(identifier, above)

    # ------------------------------------------------------------------
    # ordering helpers
    # ------------------------------------------------------------------
    def _equality_key(self, identifier: FragmentId) -> Tuple:
        return tuple(identifier[position] for position in self._equality_positions)

    def _range_key(self, identifier: FragmentId) -> Tuple:
        return tuple(identifier[position] for position in self._range_positions)

    def _compare_range(self, left: FragmentId, right: FragmentId) -> int:
        for position in self._range_positions:
            comparison = compare_values(left[position], right[position])
            if comparison != 0:
                return comparison
        return 0

    def _sort_key(self, identifier: FragmentId):
        return tuple(_orderable(component) for component in identifier)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_fragment(self, identifier: FragmentId) -> bool:
        return self._store.has_node(tuple(identifier))

    def keyword_count(self, identifier: FragmentId) -> int:
        try:
            return self._store.node_keyword_count(tuple(identifier))
        except KeyError:
            raise FragmentGraphError(f"unknown fragment {identifier!r}") from None

    def neighbors(self, identifier: FragmentId) -> Tuple[FragmentId, ...]:
        """Fragments directly combinable with ``identifier``."""
        identifier = tuple(identifier)
        try:
            neighbors = self._store.neighbors(identifier)
        except KeyError:
            raise FragmentGraphError(f"unknown fragment {identifier!r}") from None
        return tuple(sorted(neighbors, key=self._sort_key))

    def are_connected(self, left: FragmentId, right: FragmentId) -> bool:
        left = tuple(left)
        if not self._store.has_node(left):
            return False
        return tuple(right) in self._store.neighbors(left)

    def fragment_ids(self) -> Tuple[FragmentId, ...]:
        return self._store.node_ids()

    @property
    def fragment_count(self) -> int:
        return self._store.node_count()

    @property
    def edge_count(self) -> int:
        return self._store.edge_count()

    def connected_component(self, identifier: FragmentId) -> Tuple[FragmentId, ...]:
        """All fragments reachable from ``identifier`` (one application chain)."""
        identifier = tuple(identifier)
        if not self._store.has_node(identifier):
            raise FragmentGraphError(f"unknown fragment {identifier!r}")
        seen: Set[FragmentId] = {identifier}
        frontier: List[FragmentId] = [identifier]
        while frontier:
            current = frontier.pop()
            for neighbor in self._store.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return tuple(sorted(seen, key=self._sort_key))

    def remove_fragment(self, identifier: FragmentId) -> None:
        """Remove a fragment, reconnecting its neighbours (incremental deletes)."""
        identifier = tuple(identifier)
        if not self._store.has_node(identifier):
            return
        neighbors = sorted(self._store.neighbors(identifier), key=self._sort_key)
        for neighbor in neighbors:
            self._store.discard_neighbor(neighbor, identifier)
        # Reconnect the two range-order neighbours so the chain stays intact.
        if len(neighbors) == 2:
            self._store.add_edge(neighbors[0], neighbors[1])
        self._store.remove_node(identifier)

    def update_keyword_count(self, identifier: FragmentId, keyword_count: int) -> None:
        """Change a node's keyword count (incremental maintenance)."""
        identifier = tuple(identifier)
        try:
            self._store.set_node_keyword_count(identifier, keyword_count)
        except KeyError:
            raise FragmentGraphError(f"unknown fragment {identifier!r}") from None


def _condition_positions(query: ParameterizedPSJQuery) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    equality: List[int] = []
    ranges: List[int] = []
    for position, condition in enumerate(query.conditions):
        if isinstance(condition, BetweenCondition):
            ranges.append(position)
        else:
            equality.append(position)
    return tuple(equality), tuple(ranges)


def _orderable(component) -> Tuple[int, object]:
    if component is None:
        return (0, "")
    if isinstance(component, bool):
        return (1, float(component))
    if isinstance(component, (int, float)):
        return (1, float(component))
    return (2, str(component))
