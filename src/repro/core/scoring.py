"""Relevance scoring of db-page fragments and assembled db-pages (Section VI).

Dash modifies the classic TF/IDF scheme in two ways:

* **IDF approximation** — since db-pages are never materialised, the IDF of a
  keyword ``w`` is approximated by the inverse of the number of db-page
  *fragments* containing ``w`` (a keyword common to many fragments is expected
  to appear in many db-pages).
* **Relative term frequency** — the TF of ``w`` in a (pending) db-page is the
  number of occurrences of ``w`` divided by the page's total keyword count, as
  in the paper's Example 7 (fragment ``(American, 10)`` has TF ``2/8`` for
  "burger"; after merging with ``(American, 12)`` the page's TF drops to
  ``3/25``).  Dividing by the page size is what makes expansion with less
  relevant text lower the score, giving the best-first search its
  monotonicity.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import FragmentId


class DashScorer:
    """Scores fragments and fragment combinations for a set of query keywords."""

    def __init__(self, index: InvertedFragmentIndex, keywords: Iterable[str]) -> None:
        self.index = index
        self.keywords: Tuple[str, ...] = tuple(dict.fromkeys(keyword.lower() for keyword in keywords))
        self._idf: Dict[str, float] = {keyword: index.idf(keyword) for keyword in self.keywords}
        # Per-keyword occurrence counts of every relevant fragment, gathered
        # once from the inverted lists so scoring a candidate page is O(|W| * |page|).
        self._occurrences: Dict[str, Dict[FragmentId, int]] = {}
        for keyword in self.keywords:
            self._occurrences[keyword] = {
                posting.document_id: posting.term_frequency for posting in index.postings(keyword)
            }

    # ------------------------------------------------------------------
    def idf(self, keyword: str) -> float:
        return self._idf.get(keyword.lower(), 0.0)

    def relevant_fragments(self) -> Tuple[FragmentId, ...]:
        """All fragments containing at least one query keyword (search line 1)."""
        seen: Dict[FragmentId, None] = {}
        for keyword in self.keywords:
            for identifier in self._occurrences[keyword]:
                seen.setdefault(identifier, None)
        return tuple(seen)

    def occurrences(self, keyword: str, identifier: FragmentId) -> int:
        return self._occurrences.get(keyword.lower(), {}).get(tuple(identifier), 0)

    def page_size(self, fragments: Sequence[FragmentId]) -> int:
        """Total keyword count of a page assembled from ``fragments``."""
        return sum(self.index.fragment_size(identifier) for identifier in fragments)

    def page_occurrences(self, fragments: Sequence[FragmentId]) -> Dict[str, int]:
        """Per-query-keyword occurrence counts of the assembled page."""
        totals: Dict[str, int] = {}
        for keyword in self.keywords:
            per_fragment = self._occurrences[keyword]
            totals[keyword] = sum(per_fragment.get(tuple(identifier), 0) for identifier in fragments)
        return totals

    def score(self, fragments: Sequence[FragmentId]) -> float:
        """TF/IDF relevance of the db-page assembled from ``fragments``."""
        size = self.page_size(fragments)
        if size <= 0:
            return 0.0
        total = 0.0
        for keyword, occurrences in self.page_occurrences(fragments).items():
            if occurrences:
                total += (occurrences / size) * self._idf[keyword]
        return total

    def fragment_is_relevant(self, identifier: FragmentId) -> bool:
        """Whether ``identifier`` contains any query keyword."""
        identifier = tuple(identifier)
        return any(identifier in self._occurrences[keyword] for keyword in self.keywords)
