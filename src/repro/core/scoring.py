"""Relevance scoring of db-page fragments and assembled db-pages (Section VI).

Dash modifies the classic TF/IDF scheme in two ways:

* **IDF approximation** — since db-pages are never materialised, the IDF of a
  keyword ``w`` is approximated by the inverse of the number of db-page
  *fragments* containing ``w`` (a keyword common to many fragments is expected
  to appear in many db-pages).
* **Relative term frequency** — the TF of ``w`` in a (pending) db-page is the
  number of occurrences of ``w`` divided by the page's total keyword count, as
  in the paper's Example 7 (fragment ``(American, 10)`` has TF ``2/8`` for
  "burger"; after merging with ``(American, 12)`` the page's TF drops to
  ``3/25``).  Dividing by the page size is what makes expansion with less
  relevant text lower the score, giving the best-first search its
  monotonicity.

Besides the reference :meth:`DashScorer.score`, the scorer exposes an
incremental path for the top-k search hot loop: a pending db-page is carried
as a :class:`PageStats` (per-query-keyword occurrence totals plus page size,
all integers), extending a page by one candidate fragment costs ``O(|W|)``
instead of ``O(|W| * |page|)``, and :meth:`seed_scores` scores every relevant
fragment in one pass over the inverted lists.  Occurrence totals and sizes
are exact integers and the keyword accumulation order matches
:meth:`score`, so the incremental path produces bit-identical floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import FragmentId

#: Relative inflation applied to every admissible score bound.  The bounds
#: are derived with different floating-point operation orders than the exact
#: scores they cap (one division of sums vs. a sum of divided terms), so a
#: mathematically-equal bound could land an ulp *below* the exact score and
#: break the early-termination exactness argument.  Inflating by 1e-9 —
#: about a million times the worst accumulated rounding over a query's few
#: dozen terms — keeps every bound safely admissible; the only cost is that
#: scores within one part per billion of a bound are computed rather than
#: pruned.
_BOUND_INFLATION = 1.0 + 1e-9


@dataclass(frozen=True)
class PageStats:
    """Integer statistics of a (pending) db-page.

    ``occurrences`` holds one total per query keyword, in the scorer's keyword
    order; ``size`` is the page's total keyword count.
    """

    occurrences: Tuple[int, ...]
    size: int


class DashScorer:
    """Scores fragments and fragment combinations for a set of query keywords."""

    def __init__(self, index: InvertedFragmentIndex, keywords: Iterable[str]) -> None:
        self.index = index
        self.keywords: Tuple[str, ...] = tuple(dict.fromkeys(keyword.lower() for keyword in keywords))
        # One batched store read gathers every query keyword's inverted list
        # (a single shard fan-out / one sqlite query); the IDF table falls
        # out of the gathered lists for free — the document frequency is
        # simply the list length.
        gathered = index.postings_for_many(self.keywords)
        self._occurrences: Dict[str, Dict[FragmentId, int]] = {
            keyword: {
                posting.document_id: posting.term_frequency for posting in gathered[keyword]
            }
            for keyword in self.keywords
        }
        self._idf: Dict[str, float] = {
            keyword: (1.0 / len(gathered[keyword]) if gathered[keyword] else 0.0)
            for keyword in self.keywords
        }
        # Fragment sizes are fetched lazily: the bounded top-k search only
        # needs the sizes of the seeds it actually materializes, so eagerly
        # reading every relevant fragment's size — the hottest read on the
        # old search path — would throw the pruning away.  prime_sizes()
        # batches the fetches; stray lookups fall back one at a time.
        self._sizes: Dict[FragmentId, int] = {}
        self._seed_bounds: Optional[Dict[FragmentId, float]] = None

    def _size_of(self, identifier: FragmentId) -> int:
        size = self._sizes.get(identifier)
        if size is None:
            size = self.index.fragment_size(identifier)
            self._sizes[identifier] = size
        return size

    def prime_sizes(self, identifiers: Sequence[FragmentId]) -> None:
        """Batch-fetch the sizes of ``identifiers`` not yet known.

        One chunked/fanned-out store read instead of a per-fragment lookup —
        the searcher calls this for every batch of seeds it materializes.
        Expansion candidates deliberately stay on the lazy ``_size_of``
        fallback: the bound pruning skips most of them before their size is
        ever needed, so batching there would read sizes the search then
        throws away.
        """
        missing = [identifier for identifier in identifiers if identifier not in self._sizes]
        if missing:
            self._sizes.update(self.index.store.fragment_sizes_for(tuple(missing)))

    # ------------------------------------------------------------------
    def idf(self, keyword: str) -> float:
        return self._idf.get(keyword.lower(), 0.0)

    def relevant_fragments(self) -> Tuple[FragmentId, ...]:
        """All fragments containing at least one query keyword (search line 1)."""
        seen: Dict[FragmentId, None] = {}
        for keyword in self.keywords:
            for identifier in self._occurrences[keyword]:
                seen.setdefault(identifier, None)
        return tuple(seen)

    def occurrences(self, keyword: str, identifier: FragmentId) -> int:
        return self._occurrences.get(keyword.lower(), {}).get(tuple(identifier), 0)

    def page_size(self, fragments: Sequence[FragmentId]) -> int:
        """Total keyword count of a page assembled from ``fragments``."""
        return sum(self._size_of(tuple(identifier)) for identifier in fragments)

    def page_occurrences(self, fragments: Sequence[FragmentId]) -> Dict[str, int]:
        """Per-query-keyword occurrence counts of the assembled page."""
        totals: Dict[str, int] = {}
        for keyword in self.keywords:
            per_fragment = self._occurrences[keyword]
            totals[keyword] = sum(per_fragment.get(tuple(identifier), 0) for identifier in fragments)
        return totals

    def score(self, fragments: Sequence[FragmentId]) -> float:
        """TF/IDF relevance of the db-page assembled from ``fragments``."""
        size = self.page_size(fragments)
        if size <= 0:
            return 0.0
        total = 0.0
        for keyword, occurrences in self.page_occurrences(fragments).items():
            if occurrences:
                total += (occurrences / size) * self._idf[keyword]
        return total

    def fragment_is_relevant(self, identifier: FragmentId) -> bool:
        """Whether ``identifier`` contains any query keyword."""
        identifier = tuple(identifier)
        return any(identifier in self._occurrences[keyword] for keyword in self.keywords)

    # ------------------------------------------------------------------
    # incremental page statistics (the top-k search hot path)
    # ------------------------------------------------------------------
    def seed_scores(self) -> Dict[FragmentId, float]:
        """Single-fragment scores of every relevant fragment, in one pass.

        Equivalent to ``{f: score([f]) for f in relevant_fragments()}`` but
        computed directly from the gathered inverted lists, without building a
        per-fragment occurrence dict for each seed.
        """
        scores: Dict[FragmentId, float] = {}
        for keyword in self.keywords:
            idf = self._idf[keyword]
            for identifier, occurrences in self._occurrences[keyword].items():
                size = self._size_of(identifier)
                if size > 0:
                    scores[identifier] = scores.get(identifier, 0.0) + (occurrences / size) * idf
                else:
                    scores.setdefault(identifier, 0.0)
        return scores

    def seed_scores_for(self, identifiers: Sequence[FragmentId]) -> Dict[FragmentId, float]:
        """Single-fragment scores of just ``identifiers``.

        The per-identifier accumulation runs in keyword order, skipping zero
        totals, exactly like :meth:`score` — so a sharded searcher can score
        each shard's seeds in its own task and still merge bit-identical
        floats.
        """
        scores: Dict[FragmentId, float] = {}
        for identifier in identifiers:
            size = self._size_of(identifier)
            total = 0.0
            if size > 0:
                for keyword in self.keywords:
                    occurrences = self._occurrences[keyword].get(identifier)
                    if occurrences:
                        total += (occurrences / size) * self._idf[keyword]
            scores[identifier] = total
        return scores

    # ------------------------------------------------------------------
    # admissible score bounds (exact early termination)
    # ------------------------------------------------------------------
    def seed_score_bounds(self) -> Dict[FragmentId, float]:
        """An admissible score bound per relevant fragment, size-free.

        A seed's exact score is ``sum_w (tf_w/size) * idf_w``; its size is at
        least the sum of its query-keyword occurrences, so the IDF average
        weighted by those occurrences bounds the score from above using the
        gathered inverted lists alone — no store read.  The searcher only
        pays for a fragment's size once this bound says the seed could still
        beat the current frontier.  Keys iterate in relevant-fragment order;
        values are safety-inflated (see ``_BOUND_INFLATION``), so a bound
        never dips below the exact score it caps and over-pruning is
        impossible.  Computed once per scorer.
        """
        if self._seed_bounds is None:
            weighted: Dict[FragmentId, float] = {}
            totals: Dict[FragmentId, int] = {}
            for keyword in self.keywords:
                idf = self._idf[keyword]
                for identifier, occurrences in self._occurrences[keyword].items():
                    weighted[identifier] = weighted.get(identifier, 0.0) + occurrences * idf
                    totals[identifier] = totals.get(identifier, 0) + occurrences
            self._seed_bounds = {
                identifier: (
                    (weighted[identifier] / totals[identifier]) * _BOUND_INFLATION
                    if totals[identifier]
                    else 0.0
                )
                for identifier in weighted
            }
        return self._seed_bounds

    def extended_score_bound(self, stats: PageStats, candidate: FragmentId) -> float:
        """An admissible bound on the page's score once ``candidate`` joins.

        Uses only the gathered occurrence counts: the candidate's size is at
        least its query-keyword occurrence total, so substituting that total
        for the (unread) size bounds the exact extended score from above.
        Lets the expansion loop discard candidates that cannot beat the best
        one found so far without touching the store for their sizes.
        """
        added = 0
        weighted = 0.0
        for keyword, total in zip(self.keywords, stats.occurrences):
            occurrences = self._occurrences[keyword].get(candidate, 0)
            weighted += (total + occurrences) * self._idf[keyword]
            added += occurrences
        denominator = stats.size + added
        if denominator <= 0:
            # Neither the page nor the candidate holds any query keyword:
            # the exact extended score is 0 whatever the candidate's size.
            return 0.0
        return (weighted / denominator) * _BOUND_INFLATION

    def page_stats(self, fragments: Sequence[FragmentId]) -> PageStats:
        """The integer statistics of the page assembled from ``fragments``."""
        occurrences = tuple(
            sum(self._occurrences[keyword].get(identifier, 0) for identifier in fragments)
            for keyword in self.keywords
        )
        return PageStats(occurrences=occurrences, size=self.page_size(fragments))

    def extended_stats(self, stats: PageStats, candidate: FragmentId) -> PageStats:
        """Statistics of ``stats``'s page extended by ``candidate`` — O(|W|)."""
        occurrences = tuple(
            total + self._occurrences[keyword].get(candidate, 0)
            for keyword, total in zip(self.keywords, stats.occurrences)
        )
        return PageStats(occurrences=occurrences, size=stats.size + self._size_of(candidate))

    def score_from_stats(self, stats: PageStats) -> float:
        """The page's TF/IDF relevance, from precomputed statistics.

        Accumulates in the same keyword order as :meth:`score`, over the same
        exact integer totals, so the result is bit-identical.
        """
        if stats.size <= 0:
            return 0.0
        total = 0.0
        size = stats.size
        for keyword, occurrences in zip(self.keywords, stats.occurrences):
            if occurrences:
                total += (occurrences / size) * self._idf[keyword]
        return total
