"""Relevance scoring of db-page fragments and assembled db-pages (Section VI).

Dash modifies the classic TF/IDF scheme in two ways:

* **IDF approximation** — since db-pages are never materialised, the IDF of a
  keyword ``w`` is approximated by the inverse of the number of db-page
  *fragments* containing ``w`` (a keyword common to many fragments is expected
  to appear in many db-pages).
* **Relative term frequency** — the TF of ``w`` in a (pending) db-page is the
  number of occurrences of ``w`` divided by the page's total keyword count, as
  in the paper's Example 7 (fragment ``(American, 10)`` has TF ``2/8`` for
  "burger"; after merging with ``(American, 12)`` the page's TF drops to
  ``3/25``).  Dividing by the page size is what makes expansion with less
  relevant text lower the score, giving the best-first search its
  monotonicity.

Besides the reference :meth:`DashScorer.score`, the scorer exposes an
incremental path for the top-k search hot loop: a pending db-page is carried
as a :class:`PageStats` (per-query-keyword occurrence totals plus page size,
all integers), extending a page by one candidate fragment costs ``O(|W|)``
instead of ``O(|W| * |page|)``, and :meth:`seed_scores` scores every relevant
fragment in one pass over the inverted lists.  Occurrence totals and sizes
are exact integers and the keyword accumulation order matches
:meth:`score`, so the incremental path produces bit-identical floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import FragmentId


@dataclass(frozen=True)
class PageStats:
    """Integer statistics of a (pending) db-page.

    ``occurrences`` holds one total per query keyword, in the scorer's keyword
    order; ``size`` is the page's total keyword count.
    """

    occurrences: Tuple[int, ...]
    size: int


class DashScorer:
    """Scores fragments and fragment combinations for a set of query keywords."""

    def __init__(self, index: InvertedFragmentIndex, keywords: Iterable[str]) -> None:
        self.index = index
        self.keywords: Tuple[str, ...] = tuple(dict.fromkeys(keyword.lower() for keyword in keywords))
        self._idf: Dict[str, float] = {keyword: index.idf(keyword) for keyword in self.keywords}
        # Per-keyword occurrence counts of every relevant fragment, gathered
        # once from the inverted lists so scoring a candidate page is O(|W| * |page|).
        self._occurrences: Dict[str, Dict[FragmentId, int]] = {}
        for keyword in self.keywords:
            self._occurrences[keyword] = {
                posting.document_id: posting.term_frequency for posting in index.postings(keyword)
            }
        # Sizes of every relevant fragment, fetched in one batch (a single
        # per-shard fan-out on partitioned stores); neighbours encountered
        # during expansion fill in lazily.
        relevant: Dict[FragmentId, None] = {}
        for keyword in self.keywords:
            for identifier in self._occurrences[keyword]:
                relevant.setdefault(identifier, None)
        self._sizes: Dict[FragmentId, int] = index.store.fragment_sizes_for(tuple(relevant))

    def _size_of(self, identifier: FragmentId) -> int:
        size = self._sizes.get(identifier)
        if size is None:
            size = self.index.fragment_size(identifier)
            self._sizes[identifier] = size
        return size

    # ------------------------------------------------------------------
    def idf(self, keyword: str) -> float:
        return self._idf.get(keyword.lower(), 0.0)

    def relevant_fragments(self) -> Tuple[FragmentId, ...]:
        """All fragments containing at least one query keyword (search line 1)."""
        seen: Dict[FragmentId, None] = {}
        for keyword in self.keywords:
            for identifier in self._occurrences[keyword]:
                seen.setdefault(identifier, None)
        return tuple(seen)

    def occurrences(self, keyword: str, identifier: FragmentId) -> int:
        return self._occurrences.get(keyword.lower(), {}).get(tuple(identifier), 0)

    def page_size(self, fragments: Sequence[FragmentId]) -> int:
        """Total keyword count of a page assembled from ``fragments``."""
        return sum(self._size_of(tuple(identifier)) for identifier in fragments)

    def page_occurrences(self, fragments: Sequence[FragmentId]) -> Dict[str, int]:
        """Per-query-keyword occurrence counts of the assembled page."""
        totals: Dict[str, int] = {}
        for keyword in self.keywords:
            per_fragment = self._occurrences[keyword]
            totals[keyword] = sum(per_fragment.get(tuple(identifier), 0) for identifier in fragments)
        return totals

    def score(self, fragments: Sequence[FragmentId]) -> float:
        """TF/IDF relevance of the db-page assembled from ``fragments``."""
        size = self.page_size(fragments)
        if size <= 0:
            return 0.0
        total = 0.0
        for keyword, occurrences in self.page_occurrences(fragments).items():
            if occurrences:
                total += (occurrences / size) * self._idf[keyword]
        return total

    def fragment_is_relevant(self, identifier: FragmentId) -> bool:
        """Whether ``identifier`` contains any query keyword."""
        identifier = tuple(identifier)
        return any(identifier in self._occurrences[keyword] for keyword in self.keywords)

    # ------------------------------------------------------------------
    # incremental page statistics (the top-k search hot path)
    # ------------------------------------------------------------------
    def seed_scores(self) -> Dict[FragmentId, float]:
        """Single-fragment scores of every relevant fragment, in one pass.

        Equivalent to ``{f: score([f]) for f in relevant_fragments()}`` but
        computed directly from the gathered inverted lists, without building a
        per-fragment occurrence dict for each seed.
        """
        scores: Dict[FragmentId, float] = {}
        for keyword in self.keywords:
            idf = self._idf[keyword]
            for identifier, occurrences in self._occurrences[keyword].items():
                size = self._size_of(identifier)
                if size > 0:
                    scores[identifier] = scores.get(identifier, 0.0) + (occurrences / size) * idf
                else:
                    scores.setdefault(identifier, 0.0)
        return scores

    def seed_scores_for(self, identifiers: Sequence[FragmentId]) -> Dict[FragmentId, float]:
        """Single-fragment scores of just ``identifiers``.

        The per-identifier accumulation runs in keyword order, skipping zero
        totals, exactly like :meth:`score` — so a sharded searcher can score
        each shard's seeds in its own task and still merge bit-identical
        floats.
        """
        scores: Dict[FragmentId, float] = {}
        for identifier in identifiers:
            size = self._size_of(identifier)
            total = 0.0
            if size > 0:
                for keyword in self.keywords:
                    occurrences = self._occurrences[keyword].get(identifier)
                    if occurrences:
                        total += (occurrences / size) * self._idf[keyword]
            scores[identifier] = total
        return scores

    def page_stats(self, fragments: Sequence[FragmentId]) -> PageStats:
        """The integer statistics of the page assembled from ``fragments``."""
        occurrences = tuple(
            sum(self._occurrences[keyword].get(identifier, 0) for identifier in fragments)
            for keyword in self.keywords
        )
        return PageStats(occurrences=occurrences, size=self.page_size(fragments))

    def extended_stats(self, stats: PageStats, candidate: FragmentId) -> PageStats:
        """Statistics of ``stats``'s page extended by ``candidate`` — O(|W|)."""
        occurrences = tuple(
            total + self._occurrences[keyword].get(candidate, 0)
            for keyword, total in zip(self.keywords, stats.occurrences)
        )
        return PageStats(occurrences=occurrences, size=stats.size + self._size_of(candidate))

    def score_from_stats(self, stats: PageStats) -> float:
        """The page's TF/IDF relevance, from precomputed statistics.

        Accumulates in the same keyword order as :meth:`score`, over the same
        exact integer totals, so the result is bit-identical.
        """
        if stats.size <= 0:
            return 0.0
        total = 0.0
        size = stats.size
        for keyword, occurrences in zip(self.keywords, stats.occurrences):
            if occurrences:
                total += (occurrences / size) * self._idf[keyword]
        return total
