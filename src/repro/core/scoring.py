"""Relevance scoring of db-page fragments and assembled db-pages (Section VI).

Dash modifies the classic TF/IDF scheme in two ways:

* **IDF approximation** — since db-pages are never materialised, the IDF of a
  keyword ``w`` is approximated by the inverse of the number of db-page
  *fragments* containing ``w`` (a keyword common to many fragments is expected
  to appear in many db-pages).
* **Relative term frequency** — the TF of ``w`` in a (pending) db-page is the
  number of occurrences of ``w`` divided by the page's total keyword count, as
  in the paper's Example 7 (fragment ``(American, 10)`` has TF ``2/8`` for
  "burger"; after merging with ``(American, 12)`` the page's TF drops to
  ``3/25``).  Dividing by the page size is what makes expansion with less
  relevant text lower the score, giving the best-first search its
  monotonicity.

Besides the reference :meth:`DashScorer.score`, the scorer exposes an
incremental path for the top-k search hot loop: a pending db-page is carried
as a :class:`PageStats` (per-query-keyword occurrence totals plus page size,
all integers), extending a page by one candidate fragment costs ``O(|W|)``
instead of ``O(|W| * |page|)``, and :meth:`seed_scores` scores every relevant
fragment in one pass over the inverted lists.  Occurrence totals and sizes
are exact integers and the keyword accumulation order matches
:meth:`score`, so the incremental path produces bit-identical floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import FragmentId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.blocks import KeywordBlocks

#: Relative inflation applied to every admissible score bound.  The bounds
#: are derived with different floating-point operation orders than the exact
#: scores they cap (one division of sums vs. a sum of divided terms), so a
#: mathematically-equal bound could land an ulp *below* the exact score and
#: break the early-termination exactness argument.  Inflating by 1e-9 —
#: about a million times the worst accumulated rounding over a query's few
#: dozen terms — keeps every bound safely admissible; the only cost is that
#: scores within one part per billion of a bound are computed rather than
#: pruned.
_BOUND_INFLATION = 1.0 + 1e-9


@dataclass(frozen=True)
class PageStats:
    """Integer statistics of a (pending) db-page.

    ``occurrences`` holds one total per query keyword, in the scorer's keyword
    order; ``size`` is the page's total keyword count.
    """

    occurrences: Tuple[int, ...]
    size: int


class DashScorer:
    """Scores fragments and fragment combinations for a set of query keywords.

    ``idf_overrides`` replaces the locally derived per-keyword IDF values
    (``1 / document frequency`` over this index) with caller-supplied ones.
    The cluster router uses it to score every partition with the *merged*
    corpus's IDF — each partition's document frequency is an exact integer,
    their sum is the global document frequency, so every node computes
    bit-identical scores to a single merged store.  Overriding IDF scales
    the admissible seed/block bounds by exactly the factor it scales the
    exact scores (both are ``idf``-linear per keyword), so the bounds stay
    admissible.
    """

    def __init__(
        self,
        index: InvertedFragmentIndex,
        keywords: Iterable[str],
        lazy: bool = False,
        idf_overrides: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.index = index
        self.keywords: Tuple[str, ...] = tuple(dict.fromkeys(keyword.lower() for keyword in keywords))
        self._lazy = lazy
        self._occurrences: Dict[str, Dict[FragmentId, int]] = {
            keyword: {} for keyword in self.keywords
        }
        # The same occurrence maps in keyword order.  The expansion loop's
        # per-candidate statistics walk these hundreds of thousands of times
        # per search; iterating a prebuilt tuple of dict references skips a
        # dict lookup per keyword per call.  Safe to alias: the maps are
        # mutated in place, never reassigned.
        self._occ_maps: Tuple[Dict[FragmentId, int], ...] = tuple(
            self._occurrences[keyword] for keyword in self.keywords
        )
        #: Union of the occurrence maps' keys, maintained at every insertion
        #: site — the O(1) backing for :meth:`fragment_is_relevant`.
        self._relevant: Set[FragmentId] = set()
        #: Fragments whose full query-keyword occurrence vector is loaded.
        #: Meaningful only in lazy mode — eager scorers know every relevant
        #: fragment up front and never consult it.
        self._known: Set[FragmentId] = set()
        self._blocks: Dict[str, "KeywordBlocks"] = {}
        self._block_plan: Optional[List[Tuple[float, int, int, int]]] = None
        if lazy:
            # Block-directory mode (the bounded top-k search): one batched
            # store read gathers each keyword's *block summaries* — counts
            # and per-block maxima, no posting entries.  Document frequency
            # (and hence the IDF table) falls out of the directory for free;
            # occurrence vectors fill in lazily as the searcher decodes
            # blocks and materializes candidates.
            self._blocks = index.store.posting_blocks_for_many(self.keywords)
            # Completeness tracking: once every block of every query
            # keyword's directory has been decoded, the occurrence maps
            # hold the complete posting membership — exactly the eager
            # scorer's state — and every lazy per-fragment vector fetch
            # becomes a provable no-op (a fragment absent from the maps
            # is absent from the inverted lists).  On workloads where the
            # bounds cannot skip blocks this turns the expansion loop's
            # thousands of is-this-neighbour-relevant store probes into
            # set lookups.
            self._total_blocks = sum(
                len(self._blocks[keyword].summaries) for keyword in self.keywords
            )
            self._decoded_blocks: Set[Tuple[int, int]] = set()
            self._complete = self._total_blocks == 0
            self._idf = {
                keyword: (
                    1.0 / self._blocks[keyword].posting_count
                    if self._blocks[keyword].posting_count
                    else 0.0
                )
                for keyword in self.keywords
            }
            self._posting_count = sum(
                self._blocks[keyword].posting_count for keyword in self.keywords
            )
        else:
            # Exhaustive mode: one batched store read gathers every query
            # keyword's full inverted list (a single shard fan-out / one
            # sqlite query).  Lists are impact-ordered, so on a duplicated
            # (keyword, fragment) posting the first entry carries the
            # maximum occurrence count — keep it, matching the stores'
            # ``fragment_term_frequencies`` and the lazy decode path.
            gathered = index.postings_for_many(self.keywords)
            relevant = self._relevant
            for keyword in self.keywords:
                per_fragment = self._occurrences[keyword]
                for posting in gathered[keyword]:
                    per_fragment.setdefault(posting.document_id, posting.term_frequency)
                    relevant.add(posting.document_id)
            self._idf = {
                keyword: (1.0 / len(gathered[keyword]) if gathered[keyword] else 0.0)
                for keyword in self.keywords
            }
            self._posting_count = sum(len(gathered[keyword]) for keyword in self.keywords)
            self._total_blocks = 0
            self._decoded_blocks = set()
            self._complete = True
        # Fragment sizes are fetched lazily: the bounded top-k search only
        # needs the sizes of the seeds it actually materializes, so eagerly
        # reading every relevant fragment's size — the hottest read on the
        # old search path — would throw the pruning away.  prime_sizes()
        # batches the fetches; stray lookups fall back one at a time.
        self._sizes: Dict[FragmentId, int] = {}
        self._seed_bounds: Optional[Dict[FragmentId, float]] = None
        if idf_overrides is not None:
            # Applied before _idf_list and before any block_plan/bound
            # computation, so every score and every admissible bound uses
            # the override consistently.
            for keyword in self.keywords:
                if keyword in idf_overrides:
                    self._idf[keyword] = idf_overrides[keyword]
        # IDFs in keyword order, for the zip-based hot loops (the dict stays
        # authoritative for the public idf() accessor).
        self._idf_list: Tuple[float, ...] = tuple(self._idf[keyword] for keyword in self.keywords)

    def _size_of(self, identifier: FragmentId) -> int:
        size = self._sizes.get(identifier)
        if size is None:
            size = self.index.fragment_size(identifier)
            self._sizes[identifier] = size
        return size

    def prime_sizes(self, identifiers: Sequence[FragmentId]) -> None:
        """Batch-fetch the sizes of ``identifiers`` not yet known.

        One chunked/fanned-out store read instead of a per-fragment lookup —
        the searcher calls this for every batch of seeds it materializes.
        Expansion candidates deliberately stay on the lazy ``_size_of``
        fallback: the bound pruning skips most of them before their size is
        ever needed, so batching there would read sizes the search then
        throws away.
        """
        missing = [identifier for identifier in identifiers if identifier not in self._sizes]
        if missing:
            self._sizes.update(self.index.store.fragment_sizes_for(tuple(missing)))

    # ------------------------------------------------------------------
    # block directories (lazy mode: the block-max bounded search)
    # ------------------------------------------------------------------
    def posting_count(self) -> int:
        """Total posting entries across the query keywords' inverted lists."""
        return self._posting_count

    def block_plan(self) -> List[Tuple[float, int, int, int]]:
        """One admissible score bound per posting block, ready to heap.

        Returns ``(bound, keyword_index, block_no, count)`` tuples covering
        every block of every query keyword's directory.  For a block of
        keyword ``w`` whose summary caps the per-fragment weight
        ``occ_w/size`` at ``T``, a member fragment's exact score
        ``sum_w' (occ_w'/size) * idf_w'`` is bounded by both

        * ``t*idf_w + (1-t)*M_w`` with ``t = occ_w/size <= T`` and ``M_w``
          the largest IDF among the *other* query keywords — the other
          keywords' occurrences total at most ``size - occ_w``; the
          expression is monotone in ``t`` on ``[0, T]``, so its maximum is
          at an endpoint: ``max(M_w, T*idf_w + (1-T)*M_w)``; and
        * ``T*idf_w + S_w`` with ``S_w = sum_{w' != w} R_w' * idf_w'`` where
          ``R_w'`` is keyword ``w'``'s directory-wide weight ceiling — each
          other keyword contributes at most its own maximum weight.

        The minimum of the two (inflated, see ``_BOUND_INFLATION``) is the
        block's bound.  Summaries may only be stale *high* (fragment sizes
        grow without stored blocks being rebuilt until compaction), which
        loosens bounds but never under-caps a score — exactness survives.
        Requires lazy mode; computed once per scorer.
        """
        if not self._lazy:
            raise RuntimeError("block_plan() requires a lazy (block-directory) scorer")
        if self._block_plan is None:
            plan: List[Tuple[float, int, int, int]] = []
            ceilings = {
                keyword: self._blocks[keyword].max_weight for keyword in self.keywords
            }
            for kidx, keyword in enumerate(self.keywords):
                directory = self._blocks[keyword]
                if not directory.summaries:
                    continue
                idf = self._idf[keyword]
                other_max_idf = 0.0
                others_sum = 0.0
                for other in self.keywords:
                    if other == keyword:
                        continue
                    other_idf = self._idf[other]
                    if other_idf > other_max_idf:
                        other_max_idf = other_idf
                    others_sum += ceilings[other] * other_idf
                for block_no, summary in enumerate(directory.summaries):
                    ceiling = summary.max_weight
                    bound_split = max(
                        other_max_idf, ceiling * idf + (1.0 - ceiling) * other_max_idf
                    )
                    bound_sum = ceiling * idf + others_sum
                    plan.append(
                        (
                            min(bound_split, bound_sum) * _BOUND_INFLATION,
                            kidx,
                            block_no,
                            summary.count,
                        )
                    )
            self._block_plan = plan
        return self._block_plan

    def decode_block(self, keyword_index: int, block_no: int) -> Tuple[FragmentId, ...]:
        """Materialize one block's posting entries into the occurrence maps.

        Returns the block's fragment identifiers in impact order (duplicates
        included — the searcher counts them against the pruning identity).
        A duplicated (keyword, fragment) posting keeps its first — maximum —
        occurrence count.  On single-keyword queries the decoded entries are
        immediately *known*: their full query vector is this one entry, so
        no per-fragment vector fetch is ever needed.
        """
        keyword = self.keywords[keyword_index]
        per_fragment = self._occurrences[keyword]
        relevant = self._relevant
        single = len(self.keywords) == 1
        decoded: List[FragmentId] = []
        for posting in self._blocks[keyword].decode(block_no):
            identifier = posting.document_id
            per_fragment.setdefault(identifier, posting.term_frequency)
            relevant.add(identifier)
            if single:
                self._known.add(identifier)
            decoded.append(identifier)
        if not self._complete:
            self._decoded_blocks.add((keyword_index, block_no))
            if len(self._decoded_blocks) == self._total_blocks:
                self._complete = True
        return tuple(decoded)

    def ensure_known(self, identifiers: Iterable[FragmentId]) -> None:
        """Load the full query-keyword vectors of any unknown ``identifiers``.

        One batched store read per call; fragments already known (or every
        fragment, in eager mode) cost a set lookup.  The searcher calls this
        for each batch of seeds it materializes and for every expansion
        candidate before per-fragment occurrence lookups.
        """
        if not self._lazy or self._complete:
            return
        # Single pass, allocation-free when everything is already known —
        # the overwhelmingly common case on the expansion hot path.
        known = self._known
        missing: Optional[List[FragmentId]] = None
        for identifier in identifiers:
            if identifier not in known:
                if missing is None:
                    missing = [identifier]
                else:
                    missing.append(identifier)
        if missing:
            self._fetch_vectors(missing)

    def _ensure_one(self, identifier: FragmentId) -> None:
        if self._lazy and not self._complete and identifier not in self._known:
            self._fetch_vectors([identifier])

    def _fetch_vectors(self, missing: Sequence[FragmentId]) -> None:
        vectors = self.index.store.fragment_term_frequencies_for(tuple(missing))
        relevant = self._relevant
        for identifier in missing:
            vector = vectors.get(identifier, {})
            for keyword, per_fragment in zip(self.keywords, self._occ_maps):
                occurrences = vector.get(keyword)
                if occurrences:
                    per_fragment.setdefault(identifier, occurrences)
                    relevant.add(identifier)
            self._known.add(identifier)

    # ------------------------------------------------------------------
    def idf(self, keyword: str) -> float:
        return self._idf.get(keyword.lower(), 0.0)

    def relevant_fragments(self) -> Tuple[FragmentId, ...]:
        """All fragments containing at least one query keyword (search line 1)."""
        if self._lazy:
            raise RuntimeError(
                "relevant_fragments() requires an eager scorer - lazy scorers "
                "only materialize the fragments the bounded search touches"
            )
        seen: Dict[FragmentId, None] = {}
        for keyword in self.keywords:
            for identifier in self._occurrences[keyword]:
                seen.setdefault(identifier, None)
        return tuple(seen)

    def occurrences(self, keyword: str, identifier: FragmentId) -> int:
        identifier = tuple(identifier)
        self._ensure_one(identifier)
        return self._occurrences.get(keyword.lower(), {}).get(identifier, 0)

    def page_size(self, fragments: Sequence[FragmentId]) -> int:
        """Total keyword count of a page assembled from ``fragments``."""
        return sum(self._size_of(tuple(identifier)) for identifier in fragments)

    def page_occurrences(self, fragments: Sequence[FragmentId]) -> Dict[str, int]:
        """Per-query-keyword occurrence counts of the assembled page."""
        if self._lazy:
            self.ensure_known([tuple(identifier) for identifier in fragments])
        totals: Dict[str, int] = {}
        for keyword in self.keywords:
            per_fragment = self._occurrences[keyword]
            totals[keyword] = sum(per_fragment.get(tuple(identifier), 0) for identifier in fragments)
        return totals

    def score(self, fragments: Sequence[FragmentId]) -> float:
        """TF/IDF relevance of the db-page assembled from ``fragments``."""
        size = self.page_size(fragments)
        if size <= 0:
            return 0.0
        total = 0.0
        for keyword, occurrences in self.page_occurrences(fragments).items():
            if occurrences:
                total += (occurrences / size) * self._idf[keyword]
        return total

    def fragment_is_relevant(self, identifier: FragmentId) -> bool:
        """Whether ``identifier`` contains any query keyword."""
        identifier = tuple(identifier)
        if identifier in self._relevant:
            # A hit in the partially-filled set is already definitive:
            # presence implies at least one occurrence, known vector or not.
            return True
        if self._lazy and not self._complete and identifier not in self._known:
            self._fetch_vectors((identifier,))
            return identifier in self._relevant
        return False

    # ------------------------------------------------------------------
    # incremental page statistics (the top-k search hot path)
    # ------------------------------------------------------------------
    def seed_scores(self) -> Dict[FragmentId, float]:
        """Single-fragment scores of every relevant fragment, in one pass.

        Equivalent to ``{f: score([f]) for f in relevant_fragments()}`` but
        computed directly from the gathered inverted lists, without building a
        per-fragment occurrence dict for each seed.
        """
        if self._lazy:
            raise RuntimeError("seed_scores() requires an eager scorer")
        scores: Dict[FragmentId, float] = {}
        for keyword in self.keywords:
            idf = self._idf[keyword]
            for identifier, occurrences in self._occurrences[keyword].items():
                size = self._size_of(identifier)
                if size > 0:
                    scores[identifier] = scores.get(identifier, 0.0) + (occurrences / size) * idf
                else:
                    scores.setdefault(identifier, 0.0)
        return scores

    def seed_scores_for(self, identifiers: Sequence[FragmentId]) -> Dict[FragmentId, float]:
        """Single-fragment scores of just ``identifiers``.

        The per-identifier accumulation runs in keyword order, skipping zero
        totals, exactly like :meth:`score` — so a sharded searcher can score
        each shard's seeds in its own task and still merge bit-identical
        floats.
        """
        self.ensure_known(identifiers)
        scores: Dict[FragmentId, float] = {}
        for identifier in identifiers:
            size = self._size_of(identifier)
            total = 0.0
            if size > 0:
                for per_fragment, idf in zip(self._occ_maps, self._idf_list):
                    occurrences = per_fragment.get(identifier)
                    if occurrences:
                        total += (occurrences / size) * idf
            scores[identifier] = total
        return scores

    # ------------------------------------------------------------------
    # admissible score bounds (exact early termination)
    # ------------------------------------------------------------------
    def seed_score_bounds(self) -> Dict[FragmentId, float]:
        """An admissible score bound per relevant fragment, size-free.

        A seed's exact score is ``sum_w (tf_w/size) * idf_w``; its size is at
        least the sum of its query-keyword occurrences, so the IDF average
        weighted by those occurrences bounds the score from above using the
        gathered inverted lists alone — no store read.  The searcher only
        pays for a fragment's size once this bound says the seed could still
        beat the current frontier.  Keys iterate in relevant-fragment order;
        values are safety-inflated (see ``_BOUND_INFLATION``), so a bound
        never dips below the exact score it caps and over-pruning is
        impossible.  Computed once per scorer.
        """
        if self._lazy:
            raise RuntimeError("seed_score_bounds() requires an eager scorer")
        if self._seed_bounds is None:
            weighted: Dict[FragmentId, float] = {}
            totals: Dict[FragmentId, int] = {}
            for keyword in self.keywords:
                idf = self._idf[keyword]
                for identifier, occurrences in self._occurrences[keyword].items():
                    weighted[identifier] = weighted.get(identifier, 0.0) + occurrences * idf
                    totals[identifier] = totals.get(identifier, 0) + occurrences
            self._seed_bounds = {
                identifier: (
                    (weighted[identifier] / totals[identifier]) * _BOUND_INFLATION
                    if totals[identifier]
                    else 0.0
                )
                for identifier in weighted
            }
        return self._seed_bounds

    def extended_score_bound(self, stats: PageStats, candidate: FragmentId) -> float:
        """An admissible bound on the page's score once ``candidate`` joins.

        Uses only the gathered occurrence counts: the candidate's size is at
        least its query-keyword occurrence total, so substituting that total
        for the (unread) size bounds the exact extended score from above.
        Lets the expansion loop discard candidates that cannot beat the best
        one found so far without touching the store for their sizes.
        """
        if self._lazy and not self._complete and candidate not in self._known:
            self._fetch_vectors((candidate,))
        added = 0
        weighted = 0.0
        for per_fragment, idf, total in zip(self._occ_maps, self._idf_list, stats.occurrences):
            occurrences = per_fragment.get(candidate, 0)
            weighted += (total + occurrences) * idf
            added += occurrences
        denominator = stats.size + added
        if denominator <= 0:
            # Neither the page nor the candidate holds any query keyword:
            # the exact extended score is 0 whatever the candidate's size.
            return 0.0
        return (weighted / denominator) * _BOUND_INFLATION

    def page_stats(self, fragments: Sequence[FragmentId]) -> PageStats:
        """The integer statistics of the page assembled from ``fragments``."""
        if self._lazy:
            self.ensure_known(fragments)
        occurrences = tuple(
            sum(per_fragment.get(identifier, 0) for identifier in fragments)
            for per_fragment in self._occ_maps
        )
        return PageStats(occurrences=occurrences, size=self.page_size(fragments))

    def extended_stats(self, stats: PageStats, candidate: FragmentId) -> PageStats:
        """Statistics of ``stats``'s page extended by ``candidate`` — O(|W|)."""
        if self._lazy and not self._complete and candidate not in self._known:
            self._fetch_vectors((candidate,))
        occurrences = tuple(
            total + per_fragment.get(candidate, 0)
            for per_fragment, total in zip(self._occ_maps, stats.occurrences)
        )
        return PageStats(occurrences=occurrences, size=stats.size + self._size_of(candidate))

    def score_from_stats(self, stats: PageStats) -> float:
        """The page's TF/IDF relevance, from precomputed statistics.

        Accumulates in the same keyword order as :meth:`score`, over the same
        exact integer totals, so the result is bit-identical.
        """
        if stats.size <= 0:
            return 0.0
        total = 0.0
        size = stats.size
        for idf, occurrences in zip(self._idf_list, stats.occurrences):
            if occurrences:
                total += (occurrences / size) * idf
        return total
