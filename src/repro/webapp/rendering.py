"""Db-page rendering: turning a query result into an HTML page.

Step (c) of the generalized execution model (Section III): the application
query result is formatted as an HTML table and returned to the browser.  The
textual content of the page — the thing search engines index — is exactly the
projected attribute values of the result records, which is also what Dash's
db-page fragments carry.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.query import QueryResult
from repro.text.tokenizer import count_keywords, tokenize


@dataclass(frozen=True)
class DbPage:
    """A database-generated dynamic web page.

    ``url`` is the application URI with its query string appended; ``text`` is
    the page's plain-text content (projected attribute values); ``html`` is
    the rendered table the simulated web server returns.
    """

    url: str
    title: str
    text: str
    html: str
    record_count: int

    def keywords(self) -> List[str]:
        """All keywords of the page content."""
        return tokenize(self.text)

    def term_frequencies(self) -> Dict[str, int]:
        """Keyword occurrence counts of the page content."""
        return count_keywords(self.keywords())

    def size_in_words(self) -> int:
        """Number of keyword occurrences (the paper's db-page size measure)."""
        return len(self.keywords())

    def contains_keyword(self, keyword: str) -> bool:
        return keyword.lower() in self.term_frequencies()

    def __len__(self) -> int:
        return self.record_count


def render_page(url: str, title: str, result: QueryResult) -> DbPage:
    """Render ``result`` into a :class:`DbPage` served at ``url``."""
    column_names = result.schema.attribute_names
    text_lines: List[str] = []
    html_rows: List[str] = []
    for record in result:
        values = record.text_values()
        text_lines.append(" ".join(values))
        cells = "".join(f"<td>{html.escape(str(value))}</td>"
                        for value in (record[name] if record[name] is not None else ""
                                      for name in column_names))
        html_rows.append(f"<tr>{cells}</tr>")

    header = "".join(f"<th>{html.escape(name)}</th>" for name in column_names)
    body = "\n".join(html_rows)
    page_html = (
        f"<html><head><title>{html.escape(title)}</title></head><body>\n"
        f"<h1>{html.escape(title)}</h1>\n"
        f"<table>\n<tr>{header}</tr>\n{body}\n</table>\n"
        f"</body></html>"
    )
    return DbPage(
        url=url,
        title=title,
        text="\n".join(text_lines),
        html=page_html,
        record_count=len(result),
    )


def page_signature(page: DbPage) -> Tuple[str, ...]:
    """A content signature used to detect duplicate/overlapping pages.

    Two db-pages generated from the same records have identical signatures
    regardless of their URLs — the surfacing baseline uses this to discard
    pages with identical contents.
    """
    return tuple(sorted(line for line in page.text.splitlines() if line.strip()))
