"""Web-application substrate.

Models the execution environment that produces db-pages (Section III): a web
application receives a query string, parses it into query parameters,
evaluates its application query against the backend database and renders the
result as an HTML page.  The package also provides a simulated
:class:`~repro.webapp.server.WebServer` so that URLs suggested by Dash (and
trial query strings submitted by the surfacing baseline) can actually be
dereferenced into pages.
"""

from repro.webapp.application import WebApplication, coerce_bindings
from repro.webapp.rendering import DbPage, render_page
from repro.webapp.request import QueryString, QueryStringSpec
from repro.webapp.server import WebServer

__all__ = [
    "DbPage",
    "QueryString",
    "QueryStringSpec",
    "WebApplication",
    "WebServer",
    "coerce_bindings",
    "render_page",
]
