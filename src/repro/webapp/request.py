"""Query strings and the query-string ⇄ parameter mapping.

A *query string* is the ``c=American&l=10&u=15`` part of a db-page URL.  A
:class:`QueryStringSpec` records how an application's query-string fields map
to the parameters of its PSJ query (the output of the web-application
analysis), in both directions:

* ``parse``: query string → parameter bindings (what the application does at
  request time, step (a) of the execution model), and
* ``format``: parameter bindings → query string (the *reverse query-string
  parsing* Dash uses to suggest URLs, Section III).
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


class QueryStringError(Exception):
    """Raised for malformed query strings or incomplete bindings."""


@dataclass(frozen=True)
class QueryString:
    """An ordered multiset of ``field=value`` pairs."""

    pairs: Tuple[Tuple[str, str], ...]

    @classmethod
    def parse(cls, text: str) -> "QueryString":
        """Parse ``"c=American&l=10&u=15"`` (percent-encoding is honoured)."""
        if text is None:
            raise QueryStringError("query string must not be None")
        text = text.lstrip("?")
        pairs: List[Tuple[str, str]] = []
        if text:
            for chunk in text.split("&"):
                if not chunk:
                    continue
                if "=" not in chunk:
                    raise QueryStringError(f"malformed query-string component {chunk!r}")
                field, value = chunk.split("=", 1)
                pairs.append((urllib.parse.unquote_plus(field), urllib.parse.unquote_plus(value)))
        return cls(tuple(pairs))

    def get(self, field: str) -> Optional[str]:
        """The first value of ``field`` or ``None``."""
        for name, value in self.pairs:
            if name == field:
                return value
        return None

    def as_dict(self) -> Dict[str, str]:
        return {field: value for field, value in self.pairs}

    def __str__(self) -> str:
        return "&".join(
            f"{urllib.parse.quote_plus(field)}={urllib.parse.quote_plus(str(value))}"
            for field, value in self.pairs
        )

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass(frozen=True)
class QueryStringSpec:
    """Mapping between query-string fields and query parameters.

    ``fields`` is an ordered sequence of ``(field, parameter)`` pairs, e.g.
    ``(("c", "cuisine"), ("l", "min"), ("u", "max"))`` for the paper's
    ``Search`` application.
    """

    fields: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        field_names = [field for field, _parameter in self.fields]
        parameter_names = [parameter for _field, parameter in self.fields]
        if len(set(field_names)) != len(field_names):
            raise QueryStringError("duplicate query-string field in spec")
        if len(set(parameter_names)) != len(parameter_names):
            raise QueryStringError("duplicate parameter in query-string spec")

    # ------------------------------------------------------------------
    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(field for field, _parameter in self.fields)

    @property
    def parameter_names(self) -> Tuple[str, ...]:
        return tuple(parameter for _field, parameter in self.fields)

    def field_for(self, parameter: str) -> str:
        """The query-string field carrying ``parameter``."""
        for field, name in self.fields:
            if name == parameter:
                return field
        raise QueryStringError(f"no query-string field maps to parameter {parameter!r}")

    def parameter_for(self, field: str) -> str:
        """The parameter carried by ``field``."""
        for name, parameter in self.fields:
            if name == field:
                return parameter
        raise QueryStringError(f"unknown query-string field {field!r}")

    # ------------------------------------------------------------------
    def parse(self, query_string: Any) -> Dict[str, str]:
        """Query string → raw (string-valued) parameter bindings."""
        if isinstance(query_string, str):
            query_string = QueryString.parse(query_string)
        bindings: Dict[str, str] = {}
        for field, parameter in self.fields:
            value = query_string.get(field)
            if value is None:
                raise QueryStringError(f"query string is missing required field {field!r}")
            bindings[parameter] = value
        return bindings

    def format(self, bindings: Mapping[str, Any]) -> QueryString:
        """Parameter bindings → query string (reverse query-string parsing)."""
        pairs: List[Tuple[str, str]] = []
        for field, parameter in self.fields:
            if parameter not in bindings:
                raise QueryStringError(f"missing binding for parameter {parameter!r}")
            pairs.append((field, _render_value(bindings[parameter])))
        return QueryString(tuple(pairs))


def _render_value(value: Any) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
