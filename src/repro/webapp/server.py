"""A simulated web server hosting database-backed applications.

The server resolves a full db-page URL (``www.example.com/Search?c=...``) to
the hosted application and lets it generate the page against the backend
database.  Dash never needs the server while crawling (it works directly from
the application code and the database), but the server is essential for

* validating that URLs suggested by the top-k search really generate db-pages
  containing the queried keywords, and
* the trial-query-string *surfacing* baseline of Section I, which can only
  discover pages by invoking the applications.

The server counts every invocation so experiments can report how many
application executions each approach causes.
"""

from __future__ import annotations

import urllib.parse
from typing import Dict, Iterable, List, Optional, Tuple

from repro.db.database import Database
from repro.webapp.application import WebApplication
from repro.webapp.rendering import DbPage


class WebServerError(Exception):
    """Raised for unknown applications or malformed URLs."""


class WebServer:
    """Hosts :class:`WebApplication` instances over one backend database."""

    def __init__(self, database: Database, host: str = "www.example.com") -> None:
        self.database = database
        self.host = host
        self._applications: Dict[str, WebApplication] = {}
        self.invocation_count = 0
        self.pages_served = 0

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    def deploy(self, application: WebApplication) -> WebApplication:
        """Deploy ``application``; its URI must live under this server's host."""
        if not application.uri.startswith(self.host):
            raise WebServerError(
                f"application URI {application.uri!r} does not belong to host {self.host!r}"
            )
        path = self._path_of(application.uri)
        if path in self._applications:
            raise WebServerError(f"an application is already deployed at {path!r}")
        self._applications[path] = application
        return application

    def applications(self) -> Tuple[WebApplication, ...]:
        return tuple(self._applications.values())

    def application_at(self, uri: str) -> WebApplication:
        path = self._path_of(uri)
        try:
            return self._applications[path]
        except KeyError:
            raise WebServerError(f"no application deployed at {path!r}") from None

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def get(self, url: str) -> DbPage:
        """Dereference a db-page URL (GET semantics)."""
        uri, query_string = self._split_url(url)
        application = self.application_at(uri)
        self.invocation_count += 1
        page = application.generate_page(self.database, query_string)
        self.pages_served += 1
        return page

    def post(self, uri: str, form_fields: Dict[str, str]) -> DbPage:
        """Submit ``form_fields`` to the application at ``uri`` (POST semantics).

        The paper notes Dash supports both GET and POST; a POST submission is
        simply a query string carried in the request body.  Field names and
        values are percent-encoded exactly like a browser form submission
        (``application/x-www-form-urlencoded``) — a value containing ``&`` or
        ``=`` must not corrupt the synthesized query string — and the
        application's query-string parsing decodes symmetrically.
        """
        query_string = urllib.parse.urlencode(form_fields)
        application = self.application_at(uri)
        self.invocation_count += 1
        page = application.generate_page(self.database, query_string)
        self.pages_served += 1
        return page

    # ------------------------------------------------------------------
    def _split_url(self, url: str) -> Tuple[str, str]:
        if "?" not in url:
            raise WebServerError(f"db-page URL {url!r} carries no query string")
        uri, query_string = url.split("?", 1)
        return uri, query_string

    def _path_of(self, uri: str) -> str:
        if uri.startswith(self.host):
            return uri[len(self.host):] or "/"
        return uri

    def reset_counters(self) -> None:
        """Zero the invocation counters (between experiment runs)."""
        self.invocation_count = 0
        self.pages_served = 0
