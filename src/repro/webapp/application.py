"""The web-application execution model (Section III, Figure 3).

A :class:`WebApplication` wraps one parameterized PSJ query behind a
query-string interface: given a query string it (a) parses the string into
parameter values, (b) evaluates the application query on the backend database
and (c) renders the result as an HTML db-page.

Applications can be constructed directly from a query plus a
:class:`~repro.webapp.request.QueryStringSpec`, or recovered from servlet-like
source text by :mod:`repro.analysis` — the route Dash itself takes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.db.errors import QueryError
from repro.db.query import BetweenCondition, Comparison, Parameter, ParameterizedPSJQuery
from repro.db.types import AttributeType
from repro.webapp.rendering import DbPage, render_page
from repro.webapp.request import QueryString, QueryStringSpec


def parameter_types(query: ParameterizedPSJQuery, database: Database) -> Dict[str, AttributeType]:
    """The attribute domain each query parameter is compared against.

    Used to coerce the string values arriving in query strings into the types
    the selection conditions expect (a query string always carries text).
    """
    types: Dict[str, AttributeType] = {}
    for condition in query.conditions:
        attribute_type = _attribute_type(database, query, condition.attribute)
        if isinstance(condition, Comparison):
            for name in condition.parameters():
                types[name] = attribute_type
        elif isinstance(condition, BetweenCondition):
            for name in condition.parameters():
                types[name] = attribute_type
    return types


def _attribute_type(database: Database, query: ParameterizedPSJQuery, attribute: str) -> AttributeType:
    for relation_name in query.operand_relations:
        schema = database.relation(relation_name).schema
        if schema.has_attribute(attribute):
            return schema.attribute(attribute).type
    raise QueryError(f"attribute {attribute!r} not found in operand relations of {query.name!r}")


def coerce_bindings(
    query: ParameterizedPSJQuery,
    database: Database,
    raw_bindings: Mapping[str, Any],
) -> Dict[str, Any]:
    """Coerce string-valued bindings into the attribute domains they compare against."""
    types = parameter_types(query, database)
    coerced: Dict[str, Any] = {}
    for name, value in raw_bindings.items():
        attribute_type = types.get(name)
        coerced[name] = attribute_type.coerce(value) if attribute_type is not None else value
    return coerced


@dataclass
class WebApplication:
    """A database-backed web application.

    Parameters
    ----------
    name:
        Application name (``Search`` in the running example).
    uri:
        Base URI the application is served at
        (``www.example.com/Search``); db-page URLs are ``uri?query-string``.
    query:
        The application's parameterized PSJ query.
    query_string_spec:
        How query-string fields map to query parameters.
    source:
        Optional servlet-like source text (what the analyzer consumes).
    """

    name: str
    uri: str
    query: ParameterizedPSJQuery
    query_string_spec: QueryStringSpec
    source: Optional[str] = None

    # ------------------------------------------------------------------
    # execution model
    # ------------------------------------------------------------------
    def parse_query_string(self, query_string: Any, database: Database) -> Dict[str, Any]:
        """Step (a): query string → typed parameter bindings."""
        raw = self.query_string_spec.parse(query_string)
        return coerce_bindings(self.query, database, raw)

    def generate_page(self, database: Database, query_string: Any) -> DbPage:
        """Steps (a)–(c): produce the db-page for ``query_string``."""
        if isinstance(query_string, QueryString):
            query_string_text = str(query_string)
        else:
            query_string_text = str(query_string).lstrip("?")
        bindings = self.parse_query_string(query_string_text, database)
        result = self.query.evaluate(database, bindings)
        url = self.url_for_query_string(query_string_text)
        return render_page(url, f"{self.name} results", result)

    # ------------------------------------------------------------------
    # URL helpers (reverse query-string parsing lives in repro.core.urls,
    # which calls format_url with derived bindings)
    # ------------------------------------------------------------------
    def url_for_query_string(self, query_string: Any) -> str:
        return f"{self.uri}?{query_string}"

    def url_for_bindings(self, bindings: Mapping[str, Any]) -> str:
        """URL generating the db-page for ``bindings`` (reverse parsing)."""
        return self.url_for_query_string(self.query_string_spec.format(bindings))

    def query_string_for_bindings(self, bindings: Mapping[str, Any]) -> QueryString:
        return self.query_string_spec.format(bindings)

    # ------------------------------------------------------------------
    def enumerate_query_strings(self, database: Database) -> List[QueryString]:
        """Every query string deducible from the database contents.

        This is the exhaustive enumeration Section IV argues is infeasible at
        scale; it backs the materialize-all baseline and small-data tests.
        Equality parameters range over the distinct values of their selection
        attribute; BETWEEN parameter pairs range over ordered pairs of distinct
        values of theirs.
        """
        per_parameter: List[Tuple[str, List[Any]]] = []
        joined = self.query.join_operands(database)
        for condition in self.query.conditions:
            attribute = self.query.resolve_attribute(joined.schema, condition.attribute)
            values = joined.distinct_values(attribute)
            if isinstance(condition, BetweenCondition):
                low_name, high_name = condition.parameters()
                per_parameter.append((low_name, values))
                per_parameter.append((high_name, values))
            else:
                for name in condition.parameters():
                    per_parameter.append((name, values))

        query_strings: List[QueryString] = []
        for bindings in _enumerate_bindings(per_parameter):
            if self._valid_range_bindings(bindings):
                query_strings.append(self.query_string_spec.format(bindings))
        return query_strings

    def _valid_range_bindings(self, bindings: Mapping[str, Any]) -> bool:
        for condition in self.query.conditions:
            if isinstance(condition, BetweenCondition):
                names = condition.parameters()
                if len(names) == 2 and bindings[names[0]] > bindings[names[1]]:
                    return False
        return True


def _enumerate_bindings(per_parameter: Sequence[Tuple[str, List[Any]]]) -> List[Dict[str, Any]]:
    bindings_list: List[Dict[str, Any]] = [{}]
    for name, values in per_parameter:
        expanded: List[Dict[str, Any]] = []
        for partial in bindings_list:
            for value in values:
                candidate = dict(partial)
                candidate[name] = value
                expanded.append(candidate)
        bindings_list = expanded
    return bindings_list
