"""The application analyzer: servlet source → analysed application.

Combines the data-flow analysis (which variable carries which query-string
field) with symbolic execution of the SQL construction (which parameterized
query the application issues) and parses the recovered SQL against the backend
database.  The product — an :class:`AnalyzedApplication` — is everything the
rest of Dash needs:

* the :class:`~repro.db.query.ParameterizedPSJQuery` used for database
  crawling and fragment derivation, and
* the :class:`~repro.webapp.request.QueryStringSpec` used for reverse
  query-string parsing when the top-k search formulates result URLs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.dataflow import DataFlowAnalysis, DataFlowError
from repro.analysis.source import ServletSource
from repro.analysis.symbolic import SymbolicExecutionError, SymbolicString, symbolic_sql
from repro.db.database import Database
from repro.db.query import ParameterizedPSJQuery
from repro.db.sqlparse import parse_psj_query
from repro.webapp.application import WebApplication
from repro.webapp.request import QueryStringSpec


class AnalysisError(Exception):
    """Raised when an application cannot be analysed into a PSJ query."""


@dataclass(frozen=True)
class AnalyzedApplication:
    """The artefacts Dash extracts from one web application."""

    name: str
    query: ParameterizedPSJQuery
    query_string_spec: QueryStringSpec
    symbolic_sql: str
    dataflow: DataFlowAnalysis

    def parameter_fields(self) -> Dict[str, str]:
        """Mapping from query parameter to the query-string field carrying it."""
        return {parameter: field for field, parameter in self.query_string_spec.fields}

    def to_web_application(self, uri: str, source: Optional[str] = None) -> WebApplication:
        """Materialise a runnable :class:`WebApplication` from the analysis."""
        return WebApplication(
            name=self.name,
            uri=uri,
            query=self.query,
            query_string_spec=self.query_string_spec,
            source=source,
        )


class ApplicationAnalyzer:
    """Analyses servlet-like sources against one backend database."""

    def __init__(self, database: Database) -> None:
        self.database = database

    def analyze(self, source_text: str, name: Optional[str] = None) -> AnalyzedApplication:
        """Analyse ``source_text`` and return the extracted artefacts.

        Raises :class:`AnalysisError` when the source does not follow the
        query-string-parsing / query-evaluation / result-presentation shape the
        execution model assumes.
        """
        source = ServletSource(source_text)
        application_name = name or source.class_name or "application"

        dataflow = DataFlowAnalysis.analyze(source)
        if len(dataflow) == 0:
            raise AnalysisError(
                f"application {application_name!r}: no getParameter(...) calls found — "
                "cannot recover the query-string parsing step"
            )
        try:
            symbolic = symbolic_sql(source, dataflow.variables())
        except SymbolicExecutionError as exc:
            raise AnalysisError(f"application {application_name!r}: {exc}") from exc

        sql_text = symbolic.normalized_sql()
        try:
            query = parse_psj_query(sql_text, self.database, name=application_name)
        except Exception as exc:
            raise AnalysisError(
                f"application {application_name!r}: recovered SQL is not a supported "
                f"PSJ query ({exc}); SQL was: {sql_text!r}"
            ) from exc

        spec = self._build_query_string_spec(application_name, query, dataflow)
        return AnalyzedApplication(
            name=application_name,
            query=query,
            query_string_spec=spec,
            symbolic_sql=sql_text,
            dataflow=dataflow,
        )

    def analyze_application(self, application: WebApplication) -> AnalyzedApplication:
        """Analyse a deployed application from its attached source text."""
        if not application.source:
            raise AnalysisError(f"application {application.name!r} has no source attached")
        return self.analyze(application.source, name=application.name)

    # ------------------------------------------------------------------
    def _build_query_string_spec(
        self,
        application_name: str,
        query: ParameterizedPSJQuery,
        dataflow: DataFlowAnalysis,
    ) -> QueryStringSpec:
        fields: Tuple[Tuple[str, str], ...] = ()
        pairs = []
        for parameter in query.parameters():
            try:
                field = dataflow.require_field_of(parameter)
            except DataFlowError as exc:
                raise AnalysisError(f"application {application_name!r}: {exc}") from exc
            pairs.append((field, parameter))
        fields = tuple(pairs)
        return QueryStringSpec(fields)
