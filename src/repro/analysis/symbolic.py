"""Symbolic execution of the application-query construction.

Real applications build their SQL by concatenating string literals with the
variables recovered from the query string (Figure 3, line 5).  The analyzer
re-executes that concatenation *symbolically*: string literals evaluate to
themselves, tracked variables evaluate to symbolic markers ``$variable``, and
the result is the parameterized SQL text the application would issue — ready
to be parsed into a :class:`~repro.db.query.ParameterizedPSJQuery`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.source import ServletSource, Statement


class SymbolicExecutionError(Exception):
    """Raised when the query construction cannot be evaluated symbolically."""


_ASSIGNMENT_RE = re.compile(
    r"(?:String\s+)?(?P<variable>[A-Za-z_][A-Za-z_0-9]*)\s*=\s*(?P<expression>.+)$"
)
_EXECUTE_RE = re.compile(r"executeQuery\(\s*(?P<argument>[A-Za-z_][A-Za-z_0-9]*)\s*\)")
_QUOTED_MARKER_RE = re.compile(r"""['"]\s*\$(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*['"]""")


@dataclass(frozen=True)
class SymbolicString:
    """The outcome of symbolically evaluating one string expression."""

    text: str
    parameters: Tuple[str, ...]

    def normalized_sql(self) -> str:
        """The SQL text with quoted markers unwrapped and whitespace squeezed.

        Applications quote string-typed inputs (``cuisine = "<input>"``); after
        symbolic substitution that appears as ``cuisine = "$cuisine"``, which we
        normalise to ``cuisine = $cuisine`` so the SQL parser sees a parameter.
        """
        text = _QUOTED_MARKER_RE.sub(lambda match: f"${match.group('name')}", self.text)
        return " ".join(text.split())


def _tokenize_concatenation(expression: str) -> List[str]:
    """Split ``'a' + x + "b"`` into its literal and variable operands."""
    operands: List[str] = []
    current: List[str] = []
    quote: Optional[str] = None
    for character in expression:
        if quote is not None:
            current.append(character)
            if character == quote:
                quote = None
            continue
        if character in ("'", '"'):
            quote = character
            current.append(character)
            continue
        if character == "+":
            operand = "".join(current).strip()
            if operand:
                operands.append(operand)
            current = []
            continue
        current.append(character)
    operand = "".join(current).strip()
    if operand:
        operands.append(operand)
    if quote is not None:
        raise SymbolicExecutionError(f"unterminated string literal in expression: {expression!r}")
    return operands


def evaluate_concatenation(expression: str, symbolic_variables: Set[str]) -> SymbolicString:
    """Evaluate a concatenation expression with ``symbolic_variables`` as symbols."""
    parts: List[str] = []
    used: List[str] = []
    for operand in _tokenize_concatenation(expression):
        if operand.startswith("'") or operand.startswith('"'):
            if not (operand.endswith(operand[0]) and len(operand) >= 2):
                raise SymbolicExecutionError(f"malformed string literal {operand!r}")
            parts.append(operand[1:-1])
        elif re.match(r"^[A-Za-z_][A-Za-z_0-9]*$", operand):
            if operand not in symbolic_variables:
                raise SymbolicExecutionError(
                    f"expression uses variable {operand!r} with unknown (non-query-string) origin"
                )
            parts.append(f"${operand}")
            if operand not in used:
                used.append(operand)
        else:
            raise SymbolicExecutionError(f"unsupported operand {operand!r} in SQL construction")
    return SymbolicString(text="".join(parts), parameters=tuple(used))


def symbolic_sql(source: ServletSource, symbolic_variables: Sequence[str]) -> SymbolicString:
    """Recover the parameterized SQL text issued by ``source``.

    The function finds the ``executeQuery(<variable>)`` call, then symbolically
    evaluates the (possibly chained) assignments that build ``<variable>``,
    treating ``symbolic_variables`` (the query-string variables found by the
    data-flow analysis) as symbols.
    """
    query_variable = _find_query_variable(source)
    assignments = _collect_assignments(source)
    if query_variable not in assignments:
        raise SymbolicExecutionError(
            f"no assignment found for query variable {query_variable!r}"
        )
    symbols = set(symbolic_variables)
    resolved = evaluate_concatenation(assignments[query_variable], symbols)
    return SymbolicString(text=resolved.text, parameters=resolved.parameters)


def _find_query_variable(source: ServletSource) -> str:
    for statement in source:
        match = _EXECUTE_RE.search(statement.text)
        if match:
            return match.group("argument")
    raise SymbolicExecutionError("the application never calls executeQuery(...)")


def _collect_assignments(source: ServletSource) -> dict:
    assignments = {}
    for statement in source:
        if "getParameter" in statement.text or "executeQuery" in statement.text:
            continue
        match = _ASSIGNMENT_RE.match(statement.text)
        if match:
            variable = match.group("variable")
            expression = match.group("expression").strip()
            existing = assignments.get(variable)
            if existing is not None:
                # Applications often build the SQL incrementally with
                # `Q = Q + '...'` chains; splice the previous expression in.
                self_ref = re.match(rf"^{re.escape(variable)}\s*\+\s*(?P<rest>.+)$", expression)
                if self_ref:
                    expression = f"{existing} + {self_ref.group('rest')}"
            assignments[variable] = expression
    return assignments
