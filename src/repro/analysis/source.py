"""Servlet-like source representation.

The analyzer operates on a small Java-servlet-like dialect — the shape of the
paper's Figure 3.  A :class:`ServletSource` splits the raw text into
statements (``;``-terminated, comments and braces stripped) and exposes simple
pattern queries over them.  :func:`make_servlet_source` does the reverse: it
renders a servlet for a given SQL template and field mapping, which is how the
TPC-H experiment applications are produced so that the full
analyse → crawl → search pipeline is exercised on every dataset.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple


_CLASS_RE = re.compile(r"public\s+class\s+([A-Za-z_][A-Za-z_0-9]*)")
_LINE_COMMENT_RE = re.compile(r"//[^\n]*")
_BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)


@dataclass(frozen=True)
class Statement:
    """One ``;``-terminated statement of the servlet body."""

    text: str
    index: int

    def matches(self, pattern: "re.Pattern[str]") -> Optional["re.Match[str]"]:
        return pattern.search(self.text)


class ServletSource:
    """A parsed view over servlet-like source text."""

    def __init__(self, text: str) -> None:
        self.text = text
        cleaned = _BLOCK_COMMENT_RE.sub(" ", text)
        cleaned = _LINE_COMMENT_RE.sub(" ", cleaned)
        self._cleaned = cleaned
        self.statements: Tuple[Statement, ...] = tuple(self._split_statements(cleaned))

    @staticmethod
    def _split_statements(cleaned: str) -> Iterator[Statement]:
        # Split on ';' that are not inside single- or double-quoted literals.
        statements: List[str] = []
        current: List[str] = []
        quote: Optional[str] = None
        for character in cleaned:
            if quote is not None:
                current.append(character)
                if character == quote:
                    quote = None
                continue
            if character in ("'", '"'):
                quote = character
                current.append(character)
                continue
            if character == ";":
                statements.append("".join(current))
                current = []
                continue
            current.append(character)
        if current:
            statements.append("".join(current))
        index = 0
        for raw in statements:
            text = " ".join(raw.split())
            text = text.strip("{} \t")
            if text:
                yield Statement(text=text, index=index)
                index += 1

    # ------------------------------------------------------------------
    @property
    def class_name(self) -> Optional[str]:
        match = _CLASS_RE.search(self._cleaned)
        return match.group(1) if match else None

    def find_all(self, pattern: "re.Pattern[str]") -> List[Tuple[Statement, "re.Match[str]"]]:
        """Every (statement, match) pair where ``pattern`` matches the statement."""
        found = []
        for statement in self.statements:
            match = pattern.search(statement.text)
            if match:
                found.append((statement, match))
        return found

    def __iter__(self) -> Iterator[Statement]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)


def make_servlet_source(
    class_name: str,
    field_to_variable: Sequence[Tuple[str, str]],
    sql_template: str,
    query_variable: str = "Q",
) -> str:
    """Render servlet-like source for an application.

    Parameters
    ----------
    class_name:
        Java class name (also used as the application name).
    field_to_variable:
        Ordered ``(query_string_field, variable)`` pairs; each becomes a
        ``String var = q.getParameter('field');`` statement.
    sql_template:
        SQL text whose ``$variable`` placeholders are replaced by string
        concatenation with the corresponding servlet variables — mirroring how
        real applications splice user input into their queries.
    query_variable:
        Name of the variable the SQL string is assigned to and that is passed
        to ``executeQuery``.

    Example
    -------
    >>> text = make_servlet_source(
    ...     "Search", [("c", "cuisine")], "SELECT * FROM r WHERE cuisine = '$cuisine'")
    >>> "q.getParameter('c')" in text
    True
    """
    parameter_lines = [
        f"    String {variable} = q.getParameter('{field}');"
        for field, variable in field_to_variable
    ]
    concatenation = _template_to_concatenation(sql_template, [v for _f, v in field_to_variable])
    lines = [
        f"public class {class_name} extends HttpServlet {{",
        "  public void doGet(HttpServletRequest q, HttpServletResponse p) {",
        *parameter_lines,
        "    Connection cn = DriverManager.getConnection(db);",
        f"    {query_variable} = {concatenation};",
        f"    ResultSet r = cn.createStatement().executeQuery({query_variable});",
        "    output(p, r);",
        "  }",
        "}",
    ]
    return "\n".join(lines)


def _template_to_concatenation(sql_template: str, variables: Sequence[str]) -> str:
    """Turn ``... WHERE x = $v ...`` into ``'... WHERE x = ' + v + ' ...'``."""
    pattern = re.compile(r"\$([A-Za-z_][A-Za-z_0-9]*)")
    parts: List[str] = []
    cursor = 0
    for match in pattern.finditer(sql_template):
        literal = sql_template[cursor:match.start()]
        variable = match.group(1)
        if variable not in variables:
            raise ValueError(f"SQL template references unknown variable ${variable}")
        if literal:
            parts.append(f"'{literal}'")
        parts.append(variable)
        cursor = match.end()
    tail = sql_template[cursor:]
    if tail:
        parts.append(f"'{tail}'")
    return " + ".join(parts) if parts else "''"
