"""Web-application analysis (Section III / Figure 4, "Web Application Analysis").

Dash reverse-engineers db-page generation from the application implementation:
it identifies (a) the query-string parsing logic, (b) the application query and
(c) the result-presentation step, then inverts (a) so query strings can be
*formulated* from database values instead of parsed from requests.

This package implements that analysis for servlet-like source text (the mini
dialect of Figure 3):

* :mod:`repro.analysis.source` — statement-level source representation and a
  template generator producing servlet sources for arbitrary PSJ queries.
* :mod:`repro.analysis.dataflow` — data-flow analysis of
  ``getParameter``/copy assignments (which variable carries which field).
* :mod:`repro.analysis.symbolic` — symbolic execution of the SQL string
  concatenation (which parameterized SQL text the application issues).
* :mod:`repro.analysis.analyzer` — ties the pieces together into an
  :class:`AnalyzedApplication` holding the parameterized PSJ query and the
  query-string field mapping.
"""

from repro.analysis.analyzer import AnalyzedApplication, ApplicationAnalyzer
from repro.analysis.dataflow import DataFlowAnalysis, ParameterBinding
from repro.analysis.source import ServletSource, make_servlet_source
from repro.analysis.symbolic import SymbolicString, symbolic_sql

__all__ = [
    "AnalyzedApplication",
    "ApplicationAnalyzer",
    "DataFlowAnalysis",
    "ParameterBinding",
    "ServletSource",
    "SymbolicString",
    "make_servlet_source",
    "symbolic_sql",
]
