"""Data-flow analysis of the query-string parsing step.

The analysis answers one question: *which servlet variable carries which
query-string field?*  It tracks two statement forms —

* ``String cuisine = q.getParameter('c');`` (a field read), and
* ``String min = lower;`` (a straight copy of another tracked variable),

propagating field provenance through copies.  The result is the set of
:class:`ParameterBinding` facts the analyzer later matches against the
parameters appearing in the symbolic SQL.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.source import ServletSource


class DataFlowError(Exception):
    """Raised when the query-string parsing step cannot be recovered."""


_GET_PARAMETER_RE = re.compile(
    r"(?:String\s+)?(?P<variable>[A-Za-z_][A-Za-z_0-9]*)\s*=\s*"
    r"[A-Za-z_][A-Za-z_0-9]*\.getParameter\(\s*['\"](?P<field>[^'\"]+)['\"]\s*\)"
)
_COPY_RE = re.compile(
    r"(?:String\s+)?(?P<target>[A-Za-z_][A-Za-z_0-9]*)\s*=\s*(?P<source>[A-Za-z_][A-Za-z_0-9]*)\s*$"
)


@dataclass(frozen=True)
class ParameterBinding:
    """One fact: servlet ``variable`` carries the query-string ``field``."""

    variable: str
    field: str
    statement_index: int


class DataFlowAnalysis:
    """Field provenance of servlet variables."""

    def __init__(self, bindings: List[ParameterBinding]) -> None:
        self.bindings = list(bindings)
        self._by_variable: Dict[str, ParameterBinding] = {
            binding.variable: binding for binding in bindings
        }

    # ------------------------------------------------------------------
    @classmethod
    def analyze(cls, source: ServletSource) -> "DataFlowAnalysis":
        """Run the analysis over ``source``."""
        bindings: Dict[str, ParameterBinding] = {}
        for statement in source:
            match = _GET_PARAMETER_RE.search(statement.text)
            if match:
                variable = match.group("variable")
                field = match.group("field")
                bindings[variable] = ParameterBinding(variable, field, statement.index)
                continue
            copy_match = _COPY_RE.search(statement.text)
            if copy_match:
                source_variable = copy_match.group("source")
                target_variable = copy_match.group("target")
                if source_variable in bindings:
                    provenance = bindings[source_variable]
                    bindings[target_variable] = ParameterBinding(
                        target_variable, provenance.field, statement.index
                    )
        return cls(sorted(bindings.values(), key=lambda binding: binding.statement_index))

    # ------------------------------------------------------------------
    def field_of(self, variable: str) -> Optional[str]:
        """The query-string field carried by ``variable`` (None when untracked)."""
        binding = self._by_variable.get(variable)
        return binding.field if binding else None

    def variables(self) -> Tuple[str, ...]:
        return tuple(binding.variable for binding in self.bindings)

    def field_variable_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """Ordered ``(field, variable)`` pairs, in source order."""
        return tuple((binding.field, binding.variable) for binding in self.bindings)

    def require_field_of(self, variable: str) -> str:
        field = self.field_of(variable)
        if field is None:
            raise DataFlowError(
                f"variable {variable!r} is used as a query parameter but never "
                "assigned from a query-string field"
            )
        return field

    def __len__(self) -> int:
        return len(self.bindings)
