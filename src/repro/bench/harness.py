"""Helpers shared by the benchmark suite (benchmarks/ directory).

Kept inside the installed package (rather than in ``benchmarks/conftest.py``)
so that benchmark modules and example scripts can import them without relying
on pytest's conftest discovery.
"""

from __future__ import annotations

import os
from typing import Dict, Mapping, Tuple

from repro.core.crawler import CrawlResult, IntegratedCrawler, StepwiseCrawler
from repro.mapreduce import Cluster, CostModel, DistributedFileSystem, MapReduceRuntime

#: Calibration factor mapping laptop-scale data volumes back into the paper's
#: elapsed-time regime (see DESIGN.md, substitution table).  Override with the
#: ``REPRO_BENCH_TIME_SCALE`` environment variable.
DATA_TIME_SCALE = float(os.environ.get("REPRO_BENCH_TIME_SCALE", "400"))


def calibrated_runtime(num_nodes: int = 4, data_time_scale: float = None) -> MapReduceRuntime:
    """A fresh simulated cluster runtime with the calibrated cost model."""
    cluster = Cluster.default(num_nodes=num_nodes)
    scale = DATA_TIME_SCALE if data_time_scale is None else data_time_scale
    return MapReduceRuntime(
        cluster,
        DistributedFileSystem(cluster),
        CostModel(data_time_scale=scale),
    )


def run_crawl(
    cache: Dict,
    databases: Mapping[str, object],
    query_sets: Mapping[str, Mapping[str, object]],
    scale: str,
    query_name: str,
    algorithm: str,
    num_reducers: int = 4,
    num_nodes: int = 4,
) -> CrawlResult:
    """Run (or reuse from ``cache``) one crawling/indexing workflow."""
    key = (scale, query_name, algorithm, num_reducers, num_nodes)
    if key not in cache:
        crawler_cls = StepwiseCrawler if algorithm == "stepwise" else IntegratedCrawler
        crawler = crawler_cls(
            query_sets[scale][query_name],
            databases[scale],
            runtime=calibrated_runtime(num_nodes=num_nodes),
            num_reduce_tasks=num_reducers,
        )
        cache[key] = crawler.crawl()
    return cache[key]
