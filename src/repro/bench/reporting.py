"""Plain-text tables and machine-readable JSON for benchmark output.

Every benchmark prints the rows/series of the paper table or figure it
reproduces; these helpers keep that output aligned and consistent so
``EXPERIMENTS.md`` can quote it directly.  :func:`write_json` emits the same
measurements as a ``BENCH_*.json`` artifact for tooling and CI.

For serving-style benchmarks (many individual request latencies rather than
one figure), :func:`summarize_latencies` condenses a latency sample into the
distribution numbers a serving deployment is judged by — p50/p95/p99 tail
latency plus throughput.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = "") -> str:
    """Format ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows: List[List[str]] = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(format_row(row))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = "") -> None:
    """Print a formatted table (with a leading blank line for readability)."""
    print()
    print(format_table(headers, rows, title=title))


def write_json(path: str, payload: Mapping[str, Any]) -> str:
    """Write a benchmark's measurements as pretty-printed JSON; returns the path.

    ``REPRO_BENCH_OUTPUT_DIR`` redirects relative paths (defaults to the
    current working directory, i.e. the repo root under pytest).
    """
    if not os.path.isabs(path):
        path = os.path.join(os.environ.get("REPRO_BENCH_OUTPUT_DIR", "."), path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The ``fraction`` percentile of ``samples`` (linear interpolation).

    ``fraction`` is in ``[0, 1]`` — ``percentile(s, 0.95)`` is p95.  Raises
    ``ValueError`` on an empty sample or an out-of-range fraction.
    """
    if not samples:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def summarize_latencies(
    samples_seconds: Sequence[float],
    elapsed_seconds: Optional[float] = None,
) -> Dict[str, float]:
    """Latency-distribution summary of one benchmark run.

    ``samples_seconds`` holds one per-request latency each; the returned
    mapping reports milliseconds (``mean_ms``, ``p50_ms``, ``p95_ms``,
    ``p99_ms``, ``max_ms``) plus ``requests`` and ``throughput_qps``.
    Throughput divides by ``elapsed_seconds`` — the wall-clock time of the
    whole run, which differs from the latency sum whenever requests ran
    concurrently — falling back to the sum for sequential runs.
    """
    if not samples_seconds:
        raise ValueError("cannot summarize an empty latency sample")
    total = elapsed_seconds if elapsed_seconds is not None else sum(samples_seconds)
    return {
        "requests": len(samples_seconds),
        "mean_ms": sum(samples_seconds) / len(samples_seconds) * 1000.0,
        "p50_ms": percentile(samples_seconds, 0.50) * 1000.0,
        "p95_ms": percentile(samples_seconds, 0.95) * 1000.0,
        "p99_ms": percentile(samples_seconds, 0.99) * 1000.0,
        "max_ms": max(samples_seconds) * 1000.0,
        "throughput_qps": (len(samples_seconds) / total) if total > 0 else float("inf"),
    }


def _render(cell: Any) -> str:
    if isinstance(cell, float):
        if cell != 0 and abs(cell) < 0.01:
            return f"{cell:.5f}"
        return f"{cell:,.2f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)
