"""Plain-text tables and machine-readable JSON for benchmark output.

Every benchmark prints the rows/series of the paper table or figure it
reproduces; these helpers keep that output aligned and consistent so
``EXPERIMENTS.md`` can quote it directly.  :func:`write_json` emits the same
measurements as a ``BENCH_*.json`` artifact for tooling and CI.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = "") -> str:
    """Format ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows: List[List[str]] = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(format_row(row))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = "") -> None:
    """Print a formatted table (with a leading blank line for readability)."""
    print()
    print(format_table(headers, rows, title=title))


def write_json(path: str, payload: Mapping[str, Any]) -> str:
    """Write a benchmark's measurements as pretty-printed JSON; returns the path.

    ``REPRO_BENCH_OUTPUT_DIR`` redirects relative paths (defaults to the
    current working directory, i.e. the repo root under pytest).
    """
    if not os.path.isabs(path):
        path = os.path.join(os.environ.get("REPRO_BENCH_OUTPUT_DIR", "."), path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _render(cell: Any) -> str:
    if isinstance(cell, float):
        if cell != 0 and abs(cell) < 0.01:
            return f"{cell:.5f}"
        return f"{cell:,.2f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)
