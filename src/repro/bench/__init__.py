"""Shared benchmark support: experiment settings (Table I/III) and reporting."""

from repro.bench.settings import (
    DATASET_NAMES,
    K_VALUES,
    KEYWORD_TEMPERATURES,
    QUERY_NAMES,
    SIZE_THRESHOLDS,
    ExperimentSettings,
    default_settings,
    quick_settings,
)
from repro.bench.reporting import format_table, print_table

__all__ = [
    "DATASET_NAMES",
    "ExperimentSettings",
    "K_VALUES",
    "KEYWORD_TEMPERATURES",
    "QUERY_NAMES",
    "SIZE_THRESHOLDS",
    "default_settings",
    "format_table",
    "print_table",
    "quick_settings",
]
