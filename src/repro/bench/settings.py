"""Experiment settings (the paper's Table I and Table III).

The benchmark modules under ``benchmarks/`` all read their parameter space
from here so that the whole evaluation uses one consistent configuration, and
so tests can swap in a smaller configuration (``quick_settings``) without
editing the benchmarks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Table I — the experiment parameter space.
DATASET_NAMES: Tuple[str, ...] = ("small", "medium", "large")
QUERY_NAMES: Tuple[str, ...] = ("Q1", "Q2", "Q3")
K_VALUES: Tuple[int, ...] = (1, 5, 10, 20)
SIZE_THRESHOLDS: Tuple[int, ...] = (100, 200, 500, 1000)
KEYWORD_TEMPERATURES: Tuple[str, ...] = ("cold", "warm", "hot")

#: Number of keywords sampled per temperature group (Section VII-B uses 30).
KEYWORDS_PER_GROUP = 30


@dataclass(frozen=True)
class ExperimentSettings:
    """One benchmark configuration."""

    datasets: Tuple[str, ...] = DATASET_NAMES
    queries: Tuple[str, ...] = QUERY_NAMES
    k_values: Tuple[int, ...] = K_VALUES
    size_thresholds: Tuple[int, ...] = SIZE_THRESHOLDS
    temperatures: Tuple[str, ...] = KEYWORD_TEMPERATURES
    keywords_per_group: int = KEYWORDS_PER_GROUP
    #: scale factor applied to the dataset tiers (1.0 = the tiers in
    #: repro.datasets.tpch.SCALES; benchmarks shrink it via REPRO_BENCH_SCALE).
    dataset_scale: float = 1.0
    cluster_nodes: int = 4
    num_reduce_tasks: int = 4


def default_settings() -> ExperimentSettings:
    """The full evaluation configuration (honours ``REPRO_BENCH_SCALE``)."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return ExperimentSettings(dataset_scale=scale)


def quick_settings() -> ExperimentSettings:
    """A much smaller configuration for smoke-testing the benchmark harness."""
    return ExperimentSettings(
        datasets=("small",),
        queries=("Q1", "Q2"),
        k_values=(1, 10),
        size_thresholds=(100, 500),
        dataset_scale=0.25,
    )
