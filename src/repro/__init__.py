"""Reproduction of "Dash: A Novel Search Engine for Database-Generated
Dynamic Web Pages" (Lee, Bankar, Zheng, Chow, Wang — ICDCS 2012).

The public API most users need:

* :class:`repro.core.DashEngine` — analyse a web application, crawl its
  database into db-page fragments, build the fragment index and answer
  top-k keyword searches with db-page URLs.
* :mod:`repro.datasets` — the paper's ``fooddb`` running example and the
  TPC-H-like evaluation datasets.
* :mod:`repro.webapp` — the web-application model and the simulated web
  server used to validate suggested URLs.
* :mod:`repro.baselines` — the approaches the paper compares against.

See ``README.md`` for a quickstart and ``DESIGN.md`` for the full system
inventory and the experiment index.
"""

from repro.core.engine import DashEngine
from repro.core.search import SearchResult

__version__ = "1.0.0"

__all__ = ["DashEngine", "SearchResult", "__version__"]
