"""The materialize-everything baseline (the "intuitive approach" of Section IV).

Enumerate every query string the application admits, generate every db-page,
treat each page as an independent document and index them with a conventional
inverted file.  The paper argues this is infeasible at scale — the number of
pages is quadratic in the number of distinct range values, their contents
overlap massively, and overlapping pages pollute the search results — and the
ablation benchmark (``bench_ablation_fragments``) quantifies exactly that
against Dash's fragment index.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.text.inverted_index import InvertedIndex
from repro.webapp.application import WebApplication
from repro.webapp.rendering import DbPage


@dataclass
class MaterializationReport:
    """Costs of the exhaustive materialisation."""

    pages_generated: int = 0
    total_page_keywords: int = 0
    index_bytes: int = 0
    build_seconds: float = 0.0


class MaterializedPageSearch:
    """Materialises all db-pages of one application and searches them."""

    def __init__(self, application: WebApplication, database: Database) -> None:
        self.application = application
        self.database = database
        self.index = InvertedIndex()
        self.pages: Dict[str, DbPage] = {}
        self.report = MaterializationReport()
        self._built = False

    # ------------------------------------------------------------------
    def build(self, max_pages: Optional[int] = None) -> MaterializationReport:
        """Generate and index every db-page (optionally capped at ``max_pages``)."""
        started = time.perf_counter()
        query_strings = self.application.enumerate_query_strings(self.database)
        for query_string in query_strings:
            if max_pages is not None and self.report.pages_generated >= max_pages:
                break
            page = self.application.generate_page(self.database, query_string)
            if page.record_count == 0:
                # Empty pages are the valueless results the paper says trial
                # invocation floods search engines with; skip them like a
                # sensible implementation would.
                continue
            self.pages[page.url] = page
            self.index.add_term_frequencies(page.url, page.term_frequencies())
            self.report.pages_generated += 1
            self.report.total_page_keywords += page.size_in_words()
        self.index.finalize()
        self.report.index_bytes = self.index.approximate_bytes()
        self.report.build_seconds = time.perf_counter() - started
        self._built = True
        return self.report

    # ------------------------------------------------------------------
    def search(self, keywords: Iterable[str], k: int = 10) -> List[Tuple[str, float]]:
        """Top-``k`` page URLs by conventional TF/IDF."""
        if not self._built:
            raise RuntimeError("call build() before search()")
        return self.index.search(keywords, k=k)

    def page(self, url: str) -> DbPage:
        return self.pages[url]

    def redundancy_of_results(self, results: Sequence[Tuple[str, float]]) -> float:
        """Fraction of result pages whose content is contained in another result.

        This is the search-quality defect Section I illustrates with P1 ⊆ P2:
        overlapping db-pages are all relevant and all returned together.
        """
        if len(results) < 2:
            return 0.0
        texts = [set(self.pages[url].text.splitlines()) for url, _score in results]
        contained = 0
        for i, lines in enumerate(texts):
            for j, other in enumerate(texts):
                if i != j and lines and lines <= other:
                    contained += 1
                    break
        return contained / len(results)
