"""Baselines the paper positions Dash against.

* :mod:`repro.baselines.materialize` — the "intuitive approach" of Section IV:
  enumerate every query string, materialise every db-page and index them with a
  conventional inverted file.
* :mod:`repro.baselines.discover` — keyword search in relational databases
  (DISCOVER-style record joins, Section II).
* :mod:`repro.baselines.single_relation` — Google-Search-Appliance-style
  search over a single derived (outer-joined) relation (Section II).
* :mod:`repro.baselines.surfacing` — deep-web surfacing by submitting trial
  query strings to the live application (Section I's second existing
  approach), running against the simulated web server.
"""

from repro.baselines.discover import JoinedResult, RelationalKeywordSearch
from repro.baselines.materialize import MaterializedPageSearch
from repro.baselines.single_relation import SingleRelationSearch
from repro.baselines.surfacing import SurfacingCrawler, SurfacingReport

__all__ = [
    "JoinedResult",
    "MaterializedPageSearch",
    "RelationalKeywordSearch",
    "SingleRelationSearch",
    "SurfacingCrawler",
    "SurfacingReport",
]
