"""Deep-web surfacing by trial query strings (Section I).

The second existing approach the paper describes: a crawler that "submits as
many trial query strings as possible to web applications to generate
db-pages".  The crawler below probes the simulated web server with query
strings assembled from value samples (optionally the true value domains, which
is the best case for this baseline), discards empty and duplicate pages, and
indexes the survivors with a conventional inverted file.

The interesting outputs are the report counters: how many application
invocations were spent, how many pages turned out valueless, and how much of
the application's true page space was actually discovered — the completeness
and cost problems that motivate Dash.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.webapp.application import WebApplication
from repro.webapp.rendering import DbPage, page_signature
from repro.webapp.request import QueryString
from repro.webapp.server import WebServer
from repro.text.inverted_index import InvertedIndex


@dataclass
class SurfacingReport:
    """Outcome counters of one surfacing crawl."""

    trial_query_strings: int = 0
    application_invocations: int = 0
    empty_pages: int = 0
    duplicate_pages: int = 0
    indexed_pages: int = 0
    elapsed_seconds: float = 0.0


class SurfacingCrawler:
    """Probes a web application with trial query strings and indexes the results."""

    def __init__(self, server: WebServer, application: WebApplication, seed: int = 3) -> None:
        self.server = server
        self.application = application
        self.index = InvertedIndex()
        self.pages: Dict[str, DbPage] = {}
        self.report = SurfacingReport()
        self._signatures: set = set()
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def crawl_with_values(
        self,
        field_values: Mapping[str, Sequence[object]],
        max_trials: Optional[int] = None,
    ) -> SurfacingReport:
        """Probe with the cartesian product of per-field value samples.

        ``field_values`` maps each query-string field to the candidate values
        the crawler will try (e.g. guessed form fill-ins).  ``max_trials``
        caps the number of submissions, sampling uniformly from the product.
        """
        started = time.perf_counter()
        fields = list(self.application.query_string_spec.field_names)
        missing = [field for field in fields if field not in field_values]
        if missing:
            raise ValueError(f"no candidate values supplied for fields {missing}")

        combinations = self._combinations(fields, field_values)
        if max_trials is not None and len(combinations) > max_trials:
            combinations = self._rng.sample(combinations, max_trials)

        for combination in combinations:
            query_string = QueryString(tuple(zip(fields, [str(value) for value in combination])))
            self._probe(query_string)
        self.index.finalize()
        self.report.elapsed_seconds = time.perf_counter() - started
        return self.report

    def _combinations(
        self, fields: Sequence[str], field_values: Mapping[str, Sequence[object]]
    ) -> List[Tuple[object, ...]]:
        combinations: List[Tuple[object, ...]] = [()]
        for field in fields:
            combinations = [existing + (value,) for existing in combinations for value in field_values[field]]
        return combinations

    def _probe(self, query_string: QueryString) -> None:
        self.report.trial_query_strings += 1
        url = self.application.url_for_query_string(query_string)
        self.report.application_invocations += 1
        page = self.server.get(url)
        if page.record_count == 0:
            self.report.empty_pages += 1
            return
        signature = page_signature(page)
        if signature in self._signatures:
            self.report.duplicate_pages += 1
            return
        self._signatures.add(signature)
        self.pages[page.url] = page
        self.index.add_term_frequencies(page.url, page.term_frequencies())
        self.report.indexed_pages += 1

    # ------------------------------------------------------------------
    def search(self, keywords: Iterable[str], k: int = 10) -> List[Tuple[str, float]]:
        """Top-``k`` discovered page URLs by conventional TF/IDF."""
        return self.index.search(keywords, k=k)

    def coverage_of(self, all_page_signatures: Iterable[Tuple[str, ...]]) -> float:
        """Fraction of the application's distinct page contents that were discovered."""
        universe = set(all_page_signatures)
        if not universe:
            return 1.0
        return len(self._signatures & universe) / len(universe)
