"""Single-derived-relation keyword search (Google Search Appliance style).

Section II: "Google Search Appliance performs keyword search in a single
relation, which may be derived from other relations.  Then, all the attribute
values of each record in the relation collectively resemble a document."  The
baseline materialises that derived relation (the application query's join with
outer joins preserved), indexes every derived record as one document and
answers keyword queries with conventional TF/IDF — each *record*, not each
db-page, is a result, which is exactly the limitation the paper points out
(groups of records, e.g. all comments of one restaurant, are never assembled).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.db.query import ParameterizedPSJQuery
from repro.db.relation import Record
from repro.text.inverted_index import InvertedIndex
from repro.text.tokenizer import count_keywords, tokenize


@dataclass
class DerivedRelationReport:
    """Costs of building the derived relation index."""

    derived_records: int = 0
    index_bytes: int = 0
    build_seconds: float = 0.0


class SingleRelationSearch:
    """Keyword search over the single derived relation of one application query."""

    def __init__(self, query: ParameterizedPSJQuery, database: Database) -> None:
        self.query = query
        self.database = database
        self.index = InvertedIndex()
        self._records: Dict[int, Record] = {}
        self.report = DerivedRelationReport()
        self._built = False

    # ------------------------------------------------------------------
    def build(self) -> DerivedRelationReport:
        """Materialise the derived relation and index each record as a document."""
        started = time.perf_counter()
        joined = self.query.join_operands(self.database)
        projected_attributes = list(self.query.output_attributes(joined.schema))
        for position, record in enumerate(joined):
            text = " ".join(
                str(record[attribute])
                for attribute in projected_attributes
                if record[attribute] is not None
            )
            self.index.add_term_frequencies(position, count_keywords(tokenize(text)))
            self._records[position] = record
        self.index.finalize()
        self.report.derived_records = len(self._records)
        self.report.index_bytes = self.index.approximate_bytes()
        self.report.build_seconds = time.perf_counter() - started
        self._built = True
        return self.report

    # ------------------------------------------------------------------
    def search(self, keywords: Iterable[str], k: int = 10) -> List[Tuple[Record, float]]:
        """Top-``k`` derived records by conventional TF/IDF."""
        if not self._built:
            raise RuntimeError("call build() before search()")
        ranked = self.index.search(keywords, k=k)
        return [(self._records[record_id], score) for record_id, score in ranked]

    def record_count(self) -> int:
        return len(self._records)
