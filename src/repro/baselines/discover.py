"""Keyword search in relational databases (DISCOVER-style, Section II).

The common idea of the systems the paper reviews (DISCOVER and follow-ups):

1. find the records whose attribute values contain any queried keyword, and
2. join matching records whenever they are linked through foreign keys,
   producing *joined result records* rather than db-pages.

The paper criticises the output (partial views, surrogate keys exposed, one
result per record combination rather than grouped db-pages); the baseline is
implemented here so those comparisons can be made concrete in the examples and
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.db.database import Database
from repro.db.relation import Record
from repro.db.schema import ForeignKey
from repro.text.tfidf import TfIdfScorer
from repro.text.tokenizer import count_keywords, tokenize


@dataclass(frozen=True)
class JoinedResult:
    """One joined result record: the matched record plus records reachable
    through foreign keys that were joined onto it."""

    relations: Tuple[str, ...]
    values: Tuple[Tuple[str, object], ...]
    score: float

    def as_dict(self) -> Dict[str, object]:
        return dict(self.values)

    def text(self) -> str:
        return " ".join(str(value) for _name, value in self.values if value is not None)


class RelationalKeywordSearch:
    """DISCOVER-style keyword search over one database."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._keyword_cache: Dict[str, Dict[str, List[int]]] = {}

    # ------------------------------------------------------------------
    def matching_records(self, relation_name: str, keywords: Sequence[str]) -> List[Record]:
        """Records of ``relation_name`` containing at least one of ``keywords``."""
        wanted = {keyword.lower() for keyword in keywords}
        matches: List[Record] = []
        for record in self.database.relation(relation_name):
            text = " ".join(record.text_values())
            if wanted & set(tokenize(text)):
                matches.append(record)
        return matches

    def search(self, keywords: Iterable[str], k: Optional[int] = None) -> List[JoinedResult]:
        """Top results: matched records joined with their FK-linked neighbours."""
        keyword_list = [keyword.lower() for keyword in list(keywords)]
        results: List[JoinedResult] = []
        document_frequencies = self._document_frequencies(keyword_list)
        scorer = TfIdfScorer(document_frequencies, total_documents=self.database.total_records())
        for relation_name in self.database.relation_names:
            for record in self.matching_records(relation_name, keyword_list):
                joined = self._expand_through_foreign_keys(relation_name, record)
                text = " ".join(str(value) for _name, value in joined if value is not None)
                score = scorer.score(count_keywords(tokenize(text)), keyword_list)
                if score > 0.0:
                    results.append(
                        JoinedResult(
                            relations=self._relations_of(relation_name, record),
                            values=joined,
                            score=score,
                        )
                    )
        results.sort(key=lambda result: (-result.score, result.relations, str(result.values)))
        if k is not None:
            results = results[:k]
        return results

    # ------------------------------------------------------------------
    def _document_frequencies(self, keywords: Sequence[str]) -> Dict[str, int]:
        frequencies: Dict[str, int] = {}
        for keyword in keywords:
            frequency = 0
            for relation_name in self.database.relation_names:
                for record in self.database.relation(relation_name):
                    if keyword in tokenize(" ".join(record.text_values())):
                        frequency += 1
            frequencies[keyword] = frequency
        return frequencies

    def _relations_of(self, relation_name: str, record: Record) -> Tuple[str, ...]:
        relations = [relation_name]
        for foreign_key in self.database.relation(relation_name).schema.foreign_keys:
            if record[foreign_key.attribute] is not None:
                relations.append(foreign_key.referenced_relation)
        return tuple(relations)

    def _expand_through_foreign_keys(
        self, relation_name: str, record: Record
    ) -> Tuple[Tuple[str, object], ...]:
        """The record's values plus the values of FK-referenced records."""
        values: List[Tuple[str, object]] = [
            (f"{relation_name}.{name}", record[name])
            for name in record.schema.attribute_names
        ]
        for foreign_key in self.database.relation(relation_name).schema.foreign_keys:
            referenced = self._lookup(foreign_key, record[foreign_key.attribute])
            if referenced is not None:
                values.extend(
                    (f"{foreign_key.referenced_relation}.{name}", referenced[name])
                    for name in referenced.schema.attribute_names
                )
        return tuple(values)

    def _lookup(self, foreign_key: ForeignKey, value) -> Optional[Record]:
        if value is None:
            return None
        for record in self.database.relation(foreign_key.referenced_relation):
            if record[foreign_key.referenced_attribute] == value:
                return record
        return None
