"""Keyword-workload selection (Section VII-B of the paper).

The top-k search experiments use three groups of 30 keywords each, chosen by
document frequency (DF): *hot* keywords come from the top 10 % of the DF
ranking, *warm* from the middle 10 % and *cold* from the bottom 10 %.  Hot
keywords therefore appear in many db-page fragments, cold ones in few.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class KeywordWorkload:
    """One temperature class of query keywords."""

    temperature: str
    keywords: Tuple[str, ...]

    def __iter__(self):
        return iter(self.keywords)

    def __len__(self) -> int:
        return len(self.keywords)


def select_keyword_workloads(
    document_frequencies: Mapping[str, int],
    group_size: int = 30,
    band_fraction: float = 0.10,
    seed: int = 11,
) -> Dict[str, KeywordWorkload]:
    """Pick hot / warm / cold keyword groups from a DF table.

    Keywords are ranked by descending DF.  ``hot`` samples from the top
    ``band_fraction`` of the ranking, ``warm`` from the middle band and
    ``cold`` from the bottom band.  Sampling within each band is seeded so the
    same workload is produced run to run.

    Raises ``ValueError`` when the vocabulary is empty.
    """
    if not document_frequencies:
        raise ValueError("cannot select keyword workloads from an empty vocabulary")
    ranked = sorted(document_frequencies.items(), key=lambda item: (-item[1], item[0]))
    vocabulary = [keyword for keyword, _frequency in ranked]
    band_size = max(1, int(len(vocabulary) * band_fraction))

    bands = {
        "hot": vocabulary[:band_size],
        "warm": _middle_slice(vocabulary, band_size),
        "cold": vocabulary[-band_size:],
    }
    rng = random.Random(seed)
    workloads: Dict[str, KeywordWorkload] = {}
    for temperature, band in bands.items():
        size = min(group_size, len(band))
        sample = sorted(rng.sample(band, size)) if size < len(band) else sorted(band)
        workloads[temperature] = KeywordWorkload(temperature, tuple(sample))
    return workloads


def _middle_slice(vocabulary: Sequence[str], band_size: int) -> List[str]:
    middle = len(vocabulary) // 2
    start = max(0, middle - band_size // 2)
    return list(vocabulary[start:start + band_size])
