"""Keyword-workload selection (Section VII-B of the paper) and query streams.

The top-k search experiments use three groups of 30 keywords each, chosen by
document frequency (DF): *hot* keywords come from the top 10 % of the DF
ranking, *warm* from the middle 10 % and *cold* from the bottom 10 %.  Hot
keywords therefore appear in many db-page fragments, cold ones in few.

For the serving-layer experiments, :func:`zipf_keyword_queries` additionally
generates a *query stream*: a seeded sequence of keyword queries whose
popularity follows a Zipf distribution over the DF ranking, the standard
model of web-search traffic (a few queries dominate, with a long tail).  The
serving benchmarks and cache tests drive :class:`~repro.serving.SearchService`
with it.

For the write-path experiments, :func:`zipf_mutation_stream` generates the
matching *mutation stream*: a seeded insert/delete sequence over one of a
database's relations whose target popularity is Zipf-skewed over the
relation's existing records — a few hot records (and therefore a few hot
fragments) absorb most of the churn, which is exactly the regime batched
maintenance coalesces.  ``benchmarks/bench_maintenance.py`` and the
maintenance tests drive :class:`~repro.serving.MaintenanceService` with it.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class KeywordWorkload:
    """One temperature class of query keywords."""

    temperature: str
    keywords: Tuple[str, ...]

    def __iter__(self):
        return iter(self.keywords)

    def __len__(self) -> int:
        return len(self.keywords)


def select_keyword_workloads(
    document_frequencies: Mapping[str, int],
    group_size: int = 30,
    band_fraction: float = 0.10,
    seed: int = 11,
) -> Dict[str, KeywordWorkload]:
    """Pick hot / warm / cold keyword groups from a DF table.

    Keywords are ranked by descending DF.  ``hot`` samples from the top
    ``band_fraction`` of the ranking, ``warm`` from the middle band and
    ``cold`` from the bottom band.  Sampling within each band is seeded so the
    same workload is produced run to run.

    Raises ``ValueError`` when the vocabulary is empty.
    """
    if not document_frequencies:
        raise ValueError("cannot select keyword workloads from an empty vocabulary")
    ranked = sorted(document_frequencies.items(), key=lambda item: (-item[1], item[0]))
    vocabulary = [keyword for keyword, _frequency in ranked]
    band_size = max(1, int(len(vocabulary) * band_fraction))

    bands = {
        "hot": vocabulary[:band_size],
        "warm": _middle_slice(vocabulary, band_size),
        "cold": vocabulary[-band_size:],
    }
    rng = random.Random(seed)
    workloads: Dict[str, KeywordWorkload] = {}
    for temperature, band in bands.items():
        size = min(group_size, len(band))
        sample = sorted(rng.sample(band, size)) if size < len(band) else sorted(band)
        workloads[temperature] = KeywordWorkload(temperature, tuple(sample))
    return workloads


def _middle_slice(vocabulary: Sequence[str], band_size: int) -> List[str]:
    middle = len(vocabulary) // 2
    start = max(0, middle - band_size // 2)
    return list(vocabulary[start:start + band_size])


# ----------------------------------------------------------------------
# Zipf-distributed keyword-query streams (serving workloads)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryWorkload:
    """A generated stream of keyword queries (each query a keyword tuple)."""

    skew: float
    queries: Tuple[Tuple[str, ...], ...]

    def __iter__(self):
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def unique_queries(self) -> Tuple[Tuple[str, ...], ...]:
        """The distinct queries, in first-appearance order."""
        return tuple(dict.fromkeys(self.queries))


def zipf_keyword_queries(
    document_frequencies: Mapping[str, int],
    count: int,
    skew: float = 1.1,
    keywords_per_query: Union[int, Tuple[int, int]] = (1, 2),
    seed: int = 17,
) -> QueryWorkload:
    """Generate ``count`` keyword queries with Zipf-distributed popularity.

    Keywords are ranked by descending DF (the ranking
    :func:`select_keyword_workloads` also uses); the probability of drawing
    the rank-``i`` keyword is proportional to ``1 / i**skew``, so higher
    ``skew`` concentrates the stream on fewer hot keywords (``skew`` around
    1 matches classic web-query traces).  ``keywords_per_query`` is either a
    fixed query length or an inclusive ``(minimum, maximum)`` range sampled
    uniformly; the keywords within one query are distinct.

    Fully seeded: the same arguments always produce the same stream.
    """
    if count < 0:
        raise ValueError(f"query count must be non-negative, got {count}")
    if skew <= 0:
        raise ValueError(f"the Zipf skew must be positive, got {skew}")
    if not document_frequencies:
        raise ValueError("cannot generate queries from an empty vocabulary")
    if isinstance(keywords_per_query, int):
        minimum = maximum = keywords_per_query
    else:
        minimum, maximum = keywords_per_query
    if not 1 <= minimum <= maximum:
        raise ValueError(
            f"keywords_per_query must satisfy 1 <= minimum <= maximum, got {keywords_per_query!r}"
        )

    ranked = sorted(document_frequencies.items(), key=lambda item: (-item[1], item[0]))
    vocabulary = [keyword for keyword, _frequency in ranked]
    maximum = min(maximum, len(vocabulary))
    minimum = min(minimum, maximum)
    cumulative_weights = list(
        itertools.accumulate(1.0 / (rank ** skew) for rank in range(1, len(vocabulary) + 1))
    )

    rng = random.Random(seed)
    queries: List[Tuple[str, ...]] = []
    for _ in range(count):
        length = rng.randint(minimum, maximum)
        chosen: Dict[str, None] = {}
        # Rejection sampling for distinct keywords, with a bounded number of
        # draws: at extreme skew the non-head mass collapses and rejection
        # alone could spin nearly forever, so the remainder fills
        # deterministically from the hottest not-yet-chosen ranks.
        for _attempt in range(64 * length):
            if len(chosen) == length:
                break
            keyword = rng.choices(vocabulary, cum_weights=cumulative_weights, k=1)[0]
            chosen.setdefault(keyword, None)
        for keyword in vocabulary:
            if len(chosen) == length:
                break
            chosen.setdefault(keyword, None)
        queries.append(tuple(chosen))
    return QueryWorkload(skew=skew, queries=tuple(queries))


# ----------------------------------------------------------------------
# Zipf-distributed insert/delete streams (write-path workloads)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MutationWorkload:
    """A generated stream of database updates (the write-path workload).

    ``updates`` holds :class:`~repro.core.incremental.InsertRecord` /
    :class:`~repro.core.incremental.DeleteRecords` ops, directly consumable
    by :meth:`~repro.core.incremental.IncrementalMaintainer.apply_updates`
    and :meth:`~repro.serving.MaintenanceService.submit`.
    """

    skew: float
    relation: str
    updates: Tuple[object, ...]

    def __iter__(self):
        return iter(self.updates)

    def __len__(self) -> int:
        return len(self.updates)


#: Filler tokens appended to mutated text attributes so every insert
#: actually changes term frequencies (drawn Zipf-skewed, like real chatter).
_MUTATION_TOKENS = (
    "tasty", "crowded", "quiet", "fresh", "stale", "cosy", "loud", "spicy",
    "bland", "quick", "slow", "cheap", "fancy", "crispy", "greasy", "sweet",
)


def zipf_mutation_stream(
    database,
    relation: str,
    count: int,
    skew: float = 1.1,
    delete_fraction: float = 0.25,
    mutate_attribute: Optional[str] = None,
    seed: int = 19,
) -> MutationWorkload:
    """Generate ``count`` insert/delete updates over ``relation``.

    Inserts clone an existing record chosen with Zipf-distributed
    popularity over the relation's current contents (rank 1 = first
    record), give the clone a fresh primary-key value, and perturb one text
    attribute (``mutate_attribute``, defaulting to the first non-key string
    attribute) with a Zipf-chosen filler token — so the hot records' pages
    keep churning, the regime batched maintenance coalesces.  With
    probability ``delete_fraction`` the stream instead deletes one of *its
    own* earlier inserts (by primary key), so replaying a stream leaves the
    original records intact and the stream is safe to apply to any copy of
    the database.

    Fully seeded: the same arguments always produce the same stream.  The
    returned updates plug straight into
    :meth:`~repro.core.incremental.IncrementalMaintainer.apply_updates` and
    :class:`~repro.serving.MaintenanceService`.
    """
    # Imported here: repro.core.incremental imports the db layer, and this
    # module is otherwise dependency-free; keeping the import local avoids
    # widening the package's import graph for query-only users.
    from repro.core.incremental import DeleteRecords, InsertRecord

    if count < 0:
        raise ValueError(f"update count must be non-negative, got {count}")
    if skew <= 0:
        raise ValueError(f"the Zipf skew must be positive, got {skew}")
    if not 0.0 <= delete_fraction < 1.0:
        raise ValueError(
            f"delete_fraction must be in [0, 1), got {delete_fraction}"
        )
    source = database.relation(relation)
    schema = source.schema
    templates = list(source)
    if not templates:
        raise ValueError(f"relation {relation!r} holds no records to mutate")
    key_attributes = schema.primary_key or [schema.attribute_names[0]]
    primary_key = key_attributes[0]
    foreign_sources = {
        foreign_key.attribute for foreign_key in getattr(schema, "foreign_keys", ())
    }
    if mutate_attribute is None:
        for attribute in schema.attribute_names:
            if attribute == primary_key or attribute in foreign_sources:
                continue
            value = templates[0][attribute]
            if isinstance(value, str):
                mutate_attribute = attribute
                break
    elif not schema.has_attribute(mutate_attribute):
        raise ValueError(
            f"relation {relation!r} has no attribute {mutate_attribute!r}"
        )

    cumulative_weights = list(
        itertools.accumulate(1.0 / (rank ** skew) for rank in range(1, len(templates) + 1))
    )
    token_weights = list(
        itertools.accumulate(
            1.0 / (rank ** skew) for rank in range(1, len(_MUTATION_TOKENS) + 1)
        )
    )
    rng = random.Random(seed)
    sample_key = templates[0][primary_key]
    updates: List[object] = []
    inserted_keys: List[object] = []
    for index in range(count):
        if inserted_keys and rng.random() < delete_fraction:
            victim = inserted_keys.pop(rng.randrange(len(inserted_keys)))
            updates.append(
                DeleteRecords(
                    relation,
                    lambda record, attribute=primary_key, value=victim: (
                        record[attribute] == value
                    ),
                )
            )
            continue
        template = rng.choices(templates, cum_weights=cumulative_weights, k=1)[0]
        fresh_key = (
            f"zmut{seed}x{index:06d}"
            if isinstance(sample_key, str)
            else 10_000_000 + seed * 100_000 + index
        )
        record = {attribute: template[attribute] for attribute in schema.attribute_names}
        record[primary_key] = fresh_key
        if mutate_attribute is not None:
            token = rng.choices(_MUTATION_TOKENS, cum_weights=token_weights, k=1)[0]
            record[mutate_attribute] = f"{template[mutate_attribute]} {token}"
        updates.append(
            InsertRecord(
                relation, tuple(record[attribute] for attribute in schema.attribute_names)
            )
        )
        inserted_keys.append(fresh_key)
    return MutationWorkload(skew=skew, relation=relation, updates=tuple(updates))
