"""A deterministic TPC-H-like data generator.

The paper evaluates Dash on three TPC-H dbgen datasets (Table II: small ≈ 1 GB,
medium ≈ 5 GB, large ≈ 10 GB) and three application queries Q1–Q3 (Table III)
over the relations region (R), nation (N), customer (C), orders (O),
lineitem (L) and part (P).  dbgen itself and multi-gigabyte datasets are not
available here, so this module generates laptop-scale datasets with

* the same schema and foreign-key structure,
* text-bearing comment/name attributes built from a fixed vocabulary (so that
  keyword search has realistic hot/warm/cold term frequencies), and
* the same ~1 : 5 : 10 relative sizing between the small, medium and large
  tiers, which is what drives the scaling behaviour in Figure 10.

Generation is fully deterministic for a given scale (seeded PRNG), so every
test and benchmark sees identical data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.db.database import Database
from repro.db.query import ParameterizedPSJQuery
from repro.db.schema import Attribute, ForeignKey, Schema
from repro.db.sqlparse import parse_psj_query
from repro.db.types import AttributeType


# ----------------------------------------------------------------------
# scale tiers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TpchScale:
    """Row counts of one dataset tier."""

    name: str
    customers: int
    orders_per_customer: int
    lineitems_per_order: int
    parts: int
    nations: int = 25
    regions: int = 5
    #: size of the L_QUANTITY domain (1..quantity_values).  Real TPC-H uses
    #: 1..50; the laptop-scale tiers shrink the domain proportionally so the
    #: joined-rows-per-fragment ratio matches the paper's datasets.
    quantity_values: int = 10

    @property
    def orders(self) -> int:
        return self.customers * self.orders_per_customer

    @property
    def lineitems(self) -> int:
        return self.orders * self.lineitems_per_order

    def scaled(self, factor: float) -> "TpchScale":
        """A proportionally resized tier (used by tests to shrink datasets)."""
        return TpchScale(
            name=f"{self.name}-x{factor:g}",
            customers=max(1, int(self.customers * factor)),
            orders_per_customer=self.orders_per_customer,
            lineitems_per_order=self.lineitems_per_order,
            parts=max(1, int(self.parts * factor)),
            nations=self.nations,
            regions=self.regions,
            quantity_values=self.quantity_values,
        )


#: The three dataset tiers of Table II, shrunk to laptop scale but keeping the
#: paper's ~1 : 5 : 10 relative sizes between small, medium and large and
#: TPC-H's ~10 orders per customer / ~4 lineitems per order fan-out.
SCALES: Dict[str, TpchScale] = {
    "small": TpchScale("small", customers=80, orders_per_customer=10, lineitems_per_order=5, parts=200),
    "medium": TpchScale("medium", customers=400, orders_per_customer=10, lineitems_per_order=5, parts=1000),
    "large": TpchScale("large", customers=800, orders_per_customer=10, lineitems_per_order=5, parts=2000),
}

#: A tiny tier for unit tests that need the schema but not the volume.
TINY = TpchScale("tiny", customers=12, orders_per_customer=3, lineitems_per_order=2, parts=20)


# ----------------------------------------------------------------------
# vocabulary for text attributes
# ----------------------------------------------------------------------
_ADJECTIVES = [
    "quick", "silent", "furious", "ironic", "pending", "final", "express", "special",
    "regular", "bold", "careful", "blithe", "daring", "even", "fluffy", "unusual",
]
_NOUNS = [
    "deposits", "packages", "requests", "accounts", "instructions", "theodolites",
    "pinto", "beans", "foxes", "platelets", "ideas", "excuses", "asymptotes",
    "dependencies", "warhorse", "courts",
]
_VERBS = [
    "sleep", "haggle", "nag", "wake", "cajole", "boost", "detect", "integrate",
    "engage", "doze", "affix", "unwind",
]
_RARE_WORDS = [
    "ziggurat", "quixotic", "obsidian", "maelstrom", "palimpsest", "zephyr",
    "labyrinth", "arbalest", "tessellate", "vermilion", "sibilant", "petrichor",
]
_REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
    "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_BRANDS = ["Brand#11", "Brand#12", "Brand#23", "Brand#34", "Brand#45", "Brand#55"]
_TYPES = ["ECONOMY", "STANDARD", "PROMO", "LARGE", "SMALL", "MEDIUM"]
_MATERIALS = ["BRASS", "COPPER", "NICKEL", "STEEL", "TIN"]


def _comment(
    rng: random.Random,
    min_words: int = 4,
    max_words: int = 8,
    rare_probability: float = 0.02,
) -> str:
    """A dbgen-style comment; occasionally includes a rare (cold) word.

    dbgen's text columns differ in length (customer comments are the longest,
    lineitem comments the shortest); callers pass the word-count range so the
    generated datasets show the same per-relation text-volume skew, which is
    what the stepwise-vs-integrated comparison is sensitive to.
    """
    length = rng.randint(min_words, max_words)
    words = []
    for position in range(length):
        bucket = position % 3
        if bucket == 0:
            words.append(rng.choice(_ADJECTIVES))
        elif bucket == 1:
            words.append(rng.choice(_NOUNS))
        else:
            words.append(rng.choice(_VERBS))
    if rng.random() < rare_probability:
        words.append(rng.choice(_RARE_WORDS))
    return " ".join(words)


# ----------------------------------------------------------------------
# schemas
# ----------------------------------------------------------------------
def tpch_schemas() -> List[Schema]:
    """All six TPC-H relation schemas used by Q1–Q3."""
    return [
        Schema(
            "region",
            [
                Attribute("r_regionkey", AttributeType.INT),
                Attribute("r_name", AttributeType.STRING),
                Attribute("r_comment", AttributeType.STRING),
            ],
            primary_key=["r_regionkey"],
        ),
        Schema(
            "nation",
            [
                Attribute("n_nationkey", AttributeType.INT),
                Attribute("n_name", AttributeType.STRING),
                Attribute("n_regionkey", AttributeType.INT),
                Attribute("n_comment", AttributeType.STRING),
            ],
            primary_key=["n_nationkey"],
            foreign_keys=[ForeignKey("n_regionkey", "region", "r_regionkey")],
        ),
        Schema(
            "customer",
            [
                Attribute("c_custkey", AttributeType.INT),
                Attribute("c_name", AttributeType.STRING),
                Attribute("c_address", AttributeType.STRING),
                Attribute("c_nationkey", AttributeType.INT),
                Attribute("c_phone", AttributeType.STRING),
                Attribute("c_acctbal", AttributeType.FLOAT),
                Attribute("c_mktsegment", AttributeType.STRING),
                Attribute("c_comment", AttributeType.STRING),
            ],
            primary_key=["c_custkey"],
            foreign_keys=[ForeignKey("c_nationkey", "nation", "n_nationkey")],
        ),
        Schema(
            "orders",
            [
                Attribute("o_orderkey", AttributeType.INT),
                Attribute("o_custkey", AttributeType.INT),
                Attribute("o_orderstatus", AttributeType.STRING),
                Attribute("o_totalprice", AttributeType.FLOAT),
                Attribute("o_orderdate", AttributeType.DATE),
                Attribute("o_orderpriority", AttributeType.STRING),
                Attribute("o_clerk", AttributeType.STRING),
                Attribute("o_comment", AttributeType.STRING),
            ],
            primary_key=["o_orderkey"],
            foreign_keys=[ForeignKey("o_custkey", "customer", "c_custkey")],
        ),
        Schema(
            "lineitem",
            [
                Attribute("l_orderkey", AttributeType.INT),
                Attribute("l_linenumber", AttributeType.INT),
                Attribute("l_partkey", AttributeType.INT),
                Attribute("l_quantity", AttributeType.INT),
                Attribute("l_extendedprice", AttributeType.FLOAT),
                Attribute("l_returnflag", AttributeType.STRING),
                Attribute("l_shipdate", AttributeType.DATE),
                Attribute("l_shipinstruct", AttributeType.STRING),
                Attribute("l_shipmode", AttributeType.STRING),
                Attribute("l_comment", AttributeType.STRING),
            ],
            primary_key=["l_orderkey", "l_linenumber"],
            foreign_keys=[
                ForeignKey("l_orderkey", "orders", "o_orderkey"),
                ForeignKey("l_partkey", "part", "p_partkey"),
            ],
        ),
        Schema(
            "part",
            [
                Attribute("p_partkey", AttributeType.INT),
                Attribute("p_name", AttributeType.STRING),
                Attribute("p_mfgr", AttributeType.STRING),
                Attribute("p_brand", AttributeType.STRING),
                Attribute("p_type", AttributeType.STRING),
                Attribute("p_container", AttributeType.STRING),
                Attribute("p_retailprice", AttributeType.FLOAT),
                Attribute("p_comment", AttributeType.STRING),
            ],
            primary_key=["p_partkey"],
        ),
    ]


# ----------------------------------------------------------------------
# data generation
# ----------------------------------------------------------------------
def build_tpch(scale="small", seed: int = 7) -> Database:
    """Generate a TPC-H-like database at the requested scale.

    ``scale`` is either a tier name (``"small"``, ``"medium"``, ``"large"``) or
    a :class:`TpchScale` instance.
    """
    tier = SCALES[scale] if isinstance(scale, str) else scale
    rng = random.Random(seed)
    database = Database(f"tpch-{tier.name}", enforce_integrity=False)
    for schema in tpch_schemas():
        database.create_relation(schema)

    for region_key in range(tier.regions):
        database.insert(
            "region",
            (
                region_key,
                _REGION_NAMES[region_key % len(_REGION_NAMES)],
                _comment(rng, min_words=6, max_words=12),
            ),
        )

    for nation_key in range(tier.nations):
        database.insert(
            "nation",
            (
                nation_key,
                _NATION_NAMES[nation_key % len(_NATION_NAMES)],
                nation_key % tier.regions,
                _comment(rng, min_words=6, max_words=14),
            ),
        )

    for part_key in range(1, tier.parts + 1):
        database.insert(
            "part",
            (
                part_key,
                f"{rng.choice(_ADJECTIVES)} {rng.choice(_MATERIALS).lower()} {rng.choice(_NOUNS)}",
                f"Manufacturer#{rng.randrange(1, 6)}",
                rng.choice(_BRANDS),
                f"{rng.choice(_TYPES)} {rng.choice(_MATERIALS)}",
                f"{rng.choice(['SM', 'MED', 'LG', 'JUMBO'])} {rng.choice(['BOX', 'BAG', 'CAN', 'DRUM'])}",
                round(900.0 + part_key % 1000, 2),
                _comment(rng, min_words=3, max_words=5),
            ),
        )

    # dbgen text-volume skew: customer comments are the longest (~117 chars),
    # orders comments medium (~78), lineitem comments the shortest (~43).
    for customer_key in range(1, tier.customers + 1):
        database.insert(
            "customer",
            (
                customer_key,
                f"Customer#{customer_key:09d}",
                f"{rng.randrange(10, 9999)} {rng.choice(_NOUNS).title()} Street Apt {rng.randrange(1, 99)}",
                rng.randrange(tier.nations),
                f"{rng.randrange(10, 35)}-{rng.randrange(100, 999)}-{rng.randrange(100, 999)}-{rng.randrange(1000, 9999)}",
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(_SEGMENTS),
                _comment(rng, min_words=10, max_words=17),
            ),
        )

    order_key = 0
    for customer_key in range(1, tier.customers + 1):
        for _ in range(tier.orders_per_customer):
            order_key += 1
            database.insert(
                "orders",
                (
                    order_key,
                    customer_key,
                    rng.choice(["O", "F", "P"]),
                    round(rng.uniform(1000.0, 400000.0), 2),
                    f"199{rng.randrange(2, 9)}-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}",
                    rng.choice(["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]),
                    f"Clerk#{rng.randrange(1, 1000):09d}",
                    _comment(rng, min_words=7, max_words=12),
                ),
            )
            for line_number in range(1, tier.lineitems_per_order + 1):
                database.insert(
                    "lineitem",
                    (
                        order_key,
                        line_number,
                        rng.randrange(1, tier.parts + 1),
                        rng.randrange(1, tier.quantity_values + 1),
                        round(rng.uniform(900.0, 100000.0), 2),
                        rng.choice(["N", "R", "A"]),
                        f"199{rng.randrange(2, 9)}-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}",
                        rng.choice(["DELIVER IN PERSON", "COLLECT COD", "TAKE BACK RETURN", "NONE"]),
                        rng.choice(["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]),
                        _comment(rng, min_words=3, max_words=6),
                    ),
                )
    return database


# ----------------------------------------------------------------------
# the three application queries of Table III
# ----------------------------------------------------------------------
TPCH_QUERY_SQL: Dict[str, str] = {
    # Q1: select * from (R JOIN N) JOIN C where R.RID = $r and C.ACCBAL between $min and $max
    "Q1": (
        "SELECT * FROM (region JOIN nation) JOIN customer "
        "WHERE r_regionkey = $r AND c_acctbal BETWEEN $min AND $max"
    ),
    # Q2: select * from (C JOIN O) JOIN L where C.CID = $r and L.QTY between $min and $max
    "Q2": (
        "SELECT * FROM (customer JOIN orders) JOIN lineitem "
        "WHERE c_custkey = $r AND l_quantity BETWEEN $min AND $max"
    ),
    # Q3: select * from (C JOIN O) JOIN (L JOIN P) where C.CID = $r and L.QTY between $min and $max
    "Q3": (
        "SELECT * FROM (customer JOIN orders) JOIN (lineitem JOIN part) "
        "WHERE c_custkey = $r AND l_quantity BETWEEN $min AND $max"
    ),
}


def tpch_queries(database: Database) -> Dict[str, ParameterizedPSJQuery]:
    """Parse Q1, Q2 and Q3 against ``database`` and return them by name."""
    return {
        name: parse_psj_query(sql, database, name=name) for name, sql in TPCH_QUERY_SQL.items()
    }
