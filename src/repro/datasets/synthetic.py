"""Deterministic synthetic fragment corpora for scale tests and benchmarks.

The real datasets (fooddb, the TPC-H generator) top out at a few thousand
fragments; the build-pipeline benchmark needs 100k+.  :class:`SyntheticCorpus`
streams an arbitrary number of fooddb-shaped fragments — identifiers are
``(cuisine, budget)`` pairs so the standard ``Search`` query, graph chains and
URL formulation all apply unchanged — without ever materializing the corpus.

Determinism is per fragment, not per pass: fragment ``i``'s content comes from
``random.Random(seed * PRIME + i)``, so any partitioning of the index space
(the build pipeline's map partitions) regenerates exactly the same fragments
in any order, and two corpora with equal parameters are identical.
"""

from __future__ import annotations

from random import Random
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from repro.core.fragments import FragmentId

#: Mixes the corpus seed with the fragment index; any odd prime well above the
#: largest corpus keeps per-fragment streams independent.
_SEED_STRIDE = 1_000_003

#: Query keywords planted with ~50% probability, mirroring the hot terms of
#: the store-backend benchmark's corpus.
HOT_KEYWORDS: Tuple[str, ...] = ("burger", "noodle", "coffee")


class SyntheticCorpus:
    """A seeded, streaming corpus of ``count`` synthetic db-page fragments.

    ``groups`` controls the equality-chain shape: fragment ``i`` gets
    identifier ``(f"cuisine{i % groups}", budget)`` with budgets increasing
    along each chain, so ``count // groups`` fragments share each cuisine —
    the same chains-of-40 layout the 12k-fragment benchmarks use by default.
    Identifiers are unique per index.

    Iterating the corpus (or any of its :meth:`partitions`) yields
    ``(identifier, term_frequencies)`` pairs with lower-cased keywords —
    exactly what :meth:`InvertedFragmentIndex.add_fragment` and the build
    pipeline consume.
    """

    def __init__(
        self,
        count: int,
        seed: int = 7,
        vocabulary_size: int = 1500,
        chain_length: int = 40,
        min_terms: int = 6,
        max_terms: int = 14,
        hot_keywords: Sequence[str] = HOT_KEYWORDS,
    ) -> None:
        if count < 0:
            raise ValueError("count must be >= 0")
        if not 0 < min_terms <= max_terms:
            raise ValueError("need 0 < min_terms <= max_terms")
        self.count = count
        self.seed = seed
        self.vocabulary_size = max(1, vocabulary_size)
        self.groups = max(1, count // max(1, chain_length))
        self.min_terms = min_terms
        self.max_terms = max_terms
        self.hot_keywords = tuple(hot_keywords)

    # ------------------------------------------------------------------
    def fragment(self, index: int) -> Tuple[FragmentId, Dict[str, int]]:
        """Fragment ``index``, regenerated independently of any other."""
        if not 0 <= index < self.count:
            raise IndexError(f"fragment index {index} out of range [0, {self.count})")
        rng = Random(self.seed * _SEED_STRIDE + index)
        identifier = (f"cuisine{index % self.groups:05d}", 5 + index // self.groups)
        terms: Dict[str, int] = {}
        for _ in range(rng.randint(self.min_terms, self.max_terms)):
            keyword = f"kw{rng.randrange(self.vocabulary_size):04d}"
            terms[keyword] = terms.get(keyword, 0) + rng.randint(1, 4)
        if self.hot_keywords and rng.random() < 0.5:
            hot = self.hot_keywords[rng.randrange(len(self.hot_keywords))]
            terms[hot] = terms.get(hot, 0) + rng.randint(1, 3)
        return identifier, terms

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[Tuple[FragmentId, Dict[str, int]]]:
        for index in range(self.count):
            yield self.fragment(index)

    # ------------------------------------------------------------------
    # the build pipeline's fragment-source protocol
    # ------------------------------------------------------------------
    def partitions(
        self, count: int
    ) -> List[Callable[[], Iterator[Tuple[FragmentId, Dict[str, int]]]]]:
        """``count`` independent streaming jobs covering the corpus disjointly.

        Partition ``j`` owns indexes ``j, j + count, j + 2*count, ...`` —
        each fragment belongs to exactly one partition, and per-fragment
        seeding makes every partition's content independent of ``count``.
        """
        if count < 1:
            raise ValueError("need at least one partition")

        def job(start: int) -> Callable[[], Iterator[Tuple[FragmentId, Dict[str, int]]]]:
            def stream() -> Iterator[Tuple[FragmentId, Dict[str, int]]]:
                for index in range(start, self.count, count):
                    yield self.fragment(index)

            return stream

        return [job(start) for start in range(count)]
