"""The paper's running example: the ``fooddb`` database (Figure 2).

Three relations:

* ``restaurant(rid, name, cuisine, budget, rate)``
* ``comment(cid, rid, uid, comment, date)`` with foreign keys to restaurant
  and customer
* ``customer(uid, uname)``

and the ``Search`` web application's query (Figure 3)::

    SELECT name, budget, rate, comment, uname, date
    FROM (restaurant LEFT JOIN comment) JOIN customer
    WHERE cuisine = $cuisine AND budget BETWEEN $min AND $max

Every example, most unit tests and the worked examples of Sections III–VI are
checked against this data, so the records match the paper's figures exactly.
"""

from __future__ import annotations

from repro.db.database import Database
from repro.db.query import ParameterizedPSJQuery
from repro.db.schema import Attribute, ForeignKey, Schema
from repro.db.sqlparse import parse_psj_query
from repro.db.types import AttributeType


FOODDB_SEARCH_SQL = (
    "SELECT name, budget, rate, comment, uname, date "
    "FROM (restaurant LEFT JOIN comment) JOIN customer "
    "WHERE cuisine = $cuisine AND budget BETWEEN $min AND $max"
)


def restaurant_schema() -> Schema:
    """Schema of the ``restaurant`` relation."""
    return Schema(
        "restaurant",
        [
            Attribute("rid", AttributeType.STRING),
            Attribute("name", AttributeType.STRING),
            Attribute("cuisine", AttributeType.STRING),
            Attribute("budget", AttributeType.INT),
            Attribute("rate", AttributeType.FLOAT),
        ],
        primary_key=["rid"],
    )


def comment_schema() -> Schema:
    """Schema of the ``comment`` relation."""
    return Schema(
        "comment",
        [
            Attribute("cid", AttributeType.STRING),
            Attribute("rid", AttributeType.STRING),
            Attribute("uid", AttributeType.STRING),
            Attribute("comment", AttributeType.STRING),
            Attribute("date", AttributeType.STRING),
        ],
        primary_key=["cid"],
        foreign_keys=[
            ForeignKey("rid", "restaurant", "rid"),
            ForeignKey("uid", "customer", "uid"),
        ],
    )


def customer_schema() -> Schema:
    """Schema of the ``customer`` relation."""
    return Schema(
        "customer",
        [
            Attribute("uid", AttributeType.STRING),
            Attribute("uname", AttributeType.STRING),
        ],
        primary_key=["uid"],
    )


_RESTAURANTS = [
    ("001", "Burger Queen", "American", 10, 4.3),
    ("002", "McRonald's", "American", 18, 2.2),
    ("003", "Wandy's", "American", 12, 4.1),
    ("004", "Wandy's", "American", 12, 4.2),
    ("005", "Thaifood", "Thai", 10, 4.8),
    ("006", "Bangkok", "Thai", 10, 3.9),
    ("007", "Bond's Cafe", "American", 9, 4.3),
]

_CUSTOMERS = [
    ("109", "David"),
    ("120", "Ben"),
    ("132", "Bill"),
    ("171", "James"),
    ("180", "Alan"),
]

_COMMENTS = [
    ("201", "001", "109", "Burger experts", "06/10"),
    ("202", "004", "132", "Unique burger", "05/10"),
    ("203", "004", "132", "Bad fries", "06/10"),
    ("204", "002", "109", "Regret taking it", "06/10"),
    ("205", "006", "180", "Thai burger", "08/11"),
    ("206", "007", "171", "Nice coffee", "01/11"),
]


def build_fooddb(enforce_integrity: bool = True) -> Database:
    """Construct the ``fooddb`` database with exactly the paper's records."""
    database = Database("fooddb", enforce_integrity=enforce_integrity)
    database.create_relation(restaurant_schema())
    database.create_relation(customer_schema())
    database.create_relation(comment_schema())
    for row in _RESTAURANTS:
        database.insert("restaurant", row)
    for row in _CUSTOMERS:
        database.insert("customer", row)
    for row in _COMMENTS:
        database.insert("comment", row)
    return database


def fooddb_search_query(database: Database) -> ParameterizedPSJQuery:
    """The parameterized PSJ query issued by the ``Search`` application."""
    return parse_psj_query(FOODDB_SEARCH_SQL, database, name="Search")


FOODDB_SEARCH_SERVLET_SOURCE = """
public class Search extends HttpServlet {
  public void doGet(HttpServletRequest q, HttpServletResponse p) {
    String cuisine = q.getParameter('c');
    String min = q.getParameter('l');
    String max = q.getParameter('u');
    Connection cn = DriverManager.getConnection(fooddb);
    Q = 'SELECT name, budget, rate, comment, uname, date' +
        ' FROM (restaurant LEFT JOIN comment) JOIN customer' +
        ' WHERE (cuisine = "' + cuisine + '")' +
        ' AND (budget BETWEEN ' + min + ' AND ' + max + ')';
    ResultSet r = cn.createStatement().executeQuery(Q);
    output(p, r);
  }
}
"""
