"""Datasets used by the reproduction.

* :mod:`repro.datasets.fooddb` — the paper's running example database
  (Figure 2) together with the ``Search`` web application's query.
* :mod:`repro.datasets.tpch` — a deterministic TPC-H-like generator standing
  in for the paper's small/medium/large dbgen datasets (Table II).
* :mod:`repro.datasets.workloads` — keyword-workload selection (hot / warm /
  cold terms by document frequency, Section VII-B).
* :mod:`repro.datasets.synthetic` — a seeded, streaming fragment-corpus
  generator (up to 100k fragments) shared by the build-pipeline tests and
  benchmark.
"""

from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.datasets.synthetic import HOT_KEYWORDS, SyntheticCorpus
from repro.datasets.tpch import TpchScale, build_tpch, tpch_queries
from repro.datasets.workloads import KeywordWorkload, select_keyword_workloads

__all__ = [
    "HOT_KEYWORDS",
    "KeywordWorkload",
    "SyntheticCorpus",
    "TpchScale",
    "build_fooddb",
    "build_tpch",
    "fooddb_search_query",
    "select_keyword_workloads",
    "tpch_queries",
]
