"""Store mutation epochs (the serving layer's invalidation substrate).

Every :class:`~repro.store.FragmentStore` backend owns one :class:`EpochClock`
and ticks it on every mutation.  The clock keeps three views of the same
monotonic counter:

* the **store epoch** — bumped by every mutation, the coarse "has anything
  changed at all" signal a serving cache checks on its fast path;
* **keyword epochs** — the epoch at which each keyword's inverted list last
  changed (a posting added or removed).  A cached search result for keywords
  ``W`` can only gain or lose *seed* fragments through a mutation of some
  ``w in W``'s postings, so comparing the entry's stamp against
  ``max(keyword_epoch(w))`` detects seed-set and IDF staleness exactly;
* **fragment epochs** — the epoch at which each fragment last changed in any
  way: its postings (and therefore its size), its graph node or its adjacency.
  A cached result also depends on every fragment the search *consulted*
  (members of result pages, rejected expansion candidates, neighbour sets);
  the searcher reports that dependency set and the cache compares each
  member's fragment epoch against the entry's stamp.

Together the two fine views make invalidation precise: a maintenance run
bumps only the keywords and fragments it actually rewrote, so cached entries
for untouched queries keep validating (and re-stamp to the current epoch to
stay on the fast path) while any entry whose seeds, pages or neighbourhoods
were touched is dropped.

Epoch reads and ticks are plain int/dict operations — atomic under the GIL.
The intended regime is many concurrent readers with maintenance applied from
one writer at a time (matching :class:`IncrementalMaintainer`).  Every
mutator ticks the clock *after* its data writes complete — the tick is the
mutation's commit point.  A search captures its stamp before its first data
read, so a search that raced a writer necessarily carries a stamp older than
the completed mutation's tick and its cached entry fails revalidation; the
ordering can only over-invalidate (a search that read post-mutation data but
stamped pre-tick), never validate stale data as fresh.  The one permitted
race is a lookup revalidating inside a writer's write window: it may serve
the pre-update entry once — equivalent to the read arriving just before the
not-yet-committed update — and the tick retires the entry immediately after.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.core.fragments import FragmentId


class EpochClock:
    """Monotonic mutation counter with per-keyword and per-fragment views."""

    __slots__ = ("_epoch", "_keywords", "_fragments", "_floor")

    def __init__(self) -> None:
        self._epoch = 0
        self._keywords: Dict[str, int] = {}
        self._fragments: Dict[FragmentId, int] = {}
        # The highest sweep bound ever applied: entries at or below it were
        # pruned, so an *unknown* key answers the floor rather than 0.  This
        # is what keeps the clock sound for consumers the sweep could not
        # see (a reader process refreshing its clock from a swept file): any
        # entry stamped below the floor fails revalidation against a pruned
        # dependency instead of silently validating against the 0 default.
        self._floor = 0

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The store-wide epoch (0 for a store never mutated)."""
        return self._epoch

    @property
    def floor(self) -> int:
        """The highest sweep bound applied (unknown keys answer this)."""
        return self._floor

    def keyword_epoch(self, keyword: str) -> int:
        """Epoch of the keyword's last postings change (the sweep floor if
        never touched or pruned)."""
        return self._keywords.get(keyword, self._floor)

    def fragment_epoch(self, identifier: FragmentId) -> int:
        """Epoch of the fragment's last change of any kind (0 if never touched).

        Removed fragments keep their final epoch: cached entries that depended
        on them must keep failing the freshness check, not see a reset to 0.
        The deliberate cost is O(fragments ever seen) resident entries — a
        tombstone only becomes prunable once no cache entry stamped before
        the removal survives, which the clock cannot observe by itself; the
        serving layer drives that pruning through :meth:`sweep` (see
        :meth:`repro.serving.SearchService.sweep_epochs`).  Unknown (or
        pruned) identifiers answer the sweep floor.
        """
        return self._fragments.get(identifier, self._floor)

    # ------------------------------------------------------------------
    # ticks (one per store mutation)
    # ------------------------------------------------------------------
    def tick_posting(self, keyword: str, identifier: FragmentId) -> int:
        """One posting of ``keyword`` in ``identifier`` added or removed."""
        self._epoch += 1
        self._keywords[keyword] = self._epoch
        self._fragments[identifier] = self._epoch
        return self._epoch

    def tick_fragment(self, identifier: FragmentId) -> int:
        """The fragment changed without touching postings (node, adjacency)."""
        self._epoch += 1
        self._fragments[identifier] = self._epoch
        return self._epoch

    def tick_removal(self, identifier: FragmentId, keywords: Iterable[str]) -> int:
        """The fragment's postings were dropped from ``keywords``' lists."""
        self._epoch += 1
        for keyword in keywords:
            self._keywords[keyword] = self._epoch
        self._fragments[identifier] = self._epoch
        return self._epoch

    def tick_batch(
        self, keywords: Iterable[str], fragments: Iterable[FragmentId]
    ) -> int:
        """One applied mutation batch: a single epoch for everything it touched.

        This is the commit point of
        :meth:`~repro.store.FragmentStore.apply_mutations` — every keyword
        whose inverted list the batch changed and every fragment it replaced,
        removed or registered is stamped with the same new epoch, so the
        clock grows by one epoch per batch instead of one per posting while
        invalidation stays exactly as precise.
        """
        self._epoch += 1
        for keyword in keywords:
            self._keywords[keyword] = self._epoch
        for identifier in fragments:
            self._fragments[identifier] = self._epoch
        return self._epoch

    # ------------------------------------------------------------------
    # persistence and bounding
    # ------------------------------------------------------------------
    def load(
        self,
        epoch: int,
        keywords: Mapping[str, int],
        fragments: Mapping[FragmentId, int],
        floor: int = 0,
    ) -> None:
        """Replace the clock's state wholesale (snapshot/disk restore).

        A persistent store that survived a restart restores its clock with
        this, so cache stamps handed out before the restart keep comparing
        correctly against mutations applied after it.  ``epoch`` must be at
        least every restored per-keyword/per-fragment epoch; anything else is
        a corrupt snapshot and raises ``ValueError``.  ``floor`` restores the
        sweep floor persisted alongside (see :meth:`sweep`).
        """
        views = list(keywords.values()) + list(fragments.values())
        if views and epoch < max(views):
            raise ValueError(
                f"corrupt epoch state: store epoch {epoch} is older than a "
                f"restored fine-grained epoch {max(views)}"
            )
        if floor > epoch:
            raise ValueError(
                f"corrupt epoch state: sweep floor {floor} is newer than the "
                f"store epoch {epoch}"
            )
        self._epoch = int(epoch)
        self._keywords = {keyword: int(value) for keyword, value in keywords.items()}
        self._fragments = {
            tuple(identifier): int(value) for identifier, value in fragments.items()
        }
        self._floor = int(floor)

    def sweep(self, oldest_live_stamp: int) -> int:
        """Prune every per-keyword/per-fragment entry at or below the stamp.

        This is the generation sweep that bounds tombstone memory: removed
        fragments (and vanished keywords) keep their final epoch forever so
        stale cache entries keep failing revalidation — O(fragments ever
        seen) entries under continuous maintenance churn.  Once the serving
        layer knows the *oldest stamp any live cache entry carries*, every
        entry with ``epoch <= oldest_live_stamp`` is dead weight: for any
        surviving stamp ``t >= oldest_live_stamp`` the freshness comparison
        ``entry_epoch > t`` is false whether the entry reads its recorded
        epoch or the unknown-entry default of 0, so dropping it can never
        flip a revalidation verdict.  Returns the number of entries pruned.

        Callers must pass a stamp no newer than any stamp still being
        compared — :meth:`repro.serving.SearchService.sweep_epochs` derives
        it from the result cache and the live session.
        """
        if oldest_live_stamp < 0:
            raise ValueError(f"oldest live stamp must be non-negative, got {oldest_live_stamp}")
        # Record the bound so unknown keys answer it from now on: a consumer
        # the sweep could not see (a reader process syncing its clock from a
        # swept file) then fails revalidation for anything stamped below the
        # bound instead of trusting the 0 default.
        if oldest_live_stamp > self._floor:
            self._floor = oldest_live_stamp
        pruned = 0
        for keyword in [k for k, value in self._keywords.items() if value <= oldest_live_stamp]:
            del self._keywords[keyword]
            pruned += 1
        for identifier in [
            f for f, value in self._fragments.items() if value <= oldest_live_stamp
        ]:
            del self._fragments[identifier]
            pruned += 1
        return pruned

    def state(self) -> Tuple[int, Dict[str, int], Dict[FragmentId, int]]:
        """The full clock state (store epoch + both fine-grained views).

        Used by snapshot writers; the returned dicts are copies.
        """
        return (self._epoch, dict(self._keywords), dict(self._fragments))

    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[int, int, int]:
        """(epoch, tracked keywords, tracked fragments) — diagnostics."""
        return (self._epoch, len(self._keywords), len(self._fragments))
