"""Batched store mutations (the write path's unit of work).

The read path batches its store round-trips (``postings_for_many``,
``fragment_sizes_for``); this module is the write-side counterpart.  A
*mutation batch* is an ordered sequence of three op kinds over the postings
section:

* :class:`ReplaceFragment` — atomically swap one fragment's postings for a
  new set of ``(keyword, occurrences)`` pairs (registering the fragment even
  when the new set is empty),
* :class:`RemoveFragment` — drop one fragment's size entry and every posting
  of it (a no-op when the fragment is unknown),
* :class:`TouchFragment` — register a fragment with size 0 when it is not
  stored yet (a no-op otherwise).

:meth:`repro.store.FragmentStore.apply_mutations` applies a whole batch as
one store operation: a single dictionary pass in
:class:`~repro.store.InMemoryStore`, one grouped fan-out over the owning
shards in :class:`~repro.store.ShardedStore`, and a single crash-safe sqlite
transaction (data *and* epoch write-through together) in
:class:`~repro.store.DiskStore`.  Each applied batch ticks the store's
:class:`~repro.store.EpochClock` once, stamping every keyword and fragment
the batch touched with the same new epoch — which is what lets the serving
layer invalidate exactly the cached entries one maintenance round could
have changed, at one epoch of clock growth per round.

Ops within one batch apply in order, but ops on *different* fragments
commute (a fragment's postings never depend on another's), which is why
:func:`coalesce_mutations` can fold a batch down to at most a handful of
ops per fragment before the store sees it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.core.fragments import FragmentId


@dataclass(frozen=True)
class ReplaceFragment:
    """Swap one fragment's postings for ``term_frequencies``.

    ``term_frequencies`` is a tuple of canonical ``(keyword, occurrences)``
    pairs (keywords already lower-cased, occurrences positive); duplicate
    keywords accumulate as separate postings, exactly like repeated
    ``add_posting`` calls.  Unlike bare
    :meth:`~repro.store.FragmentStore.replace_fragment`, a replace op always
    registers the fragment, so a fragment whose records survive with zero
    indexable keywords stays known to the store.
    """

    identifier: FragmentId
    term_frequencies: Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class RemoveFragment:
    """Drop one fragment's size entry and all of its postings."""

    identifier: FragmentId


@dataclass(frozen=True)
class TouchFragment:
    """Register one fragment with size 0 if it is not stored yet."""

    identifier: FragmentId


#: Everything a mutation batch may contain.
Mutation = Union[ReplaceFragment, RemoveFragment, TouchFragment]


def _as_pairs(term_frequencies) -> Tuple[Tuple[str, int], ...]:
    items = (
        term_frequencies.items()
        if hasattr(term_frequencies, "items")
        else term_frequencies
    )
    return tuple(
        (keyword, int(occurrences))
        for keyword, occurrences in items
        if occurrences > 0
    )


def replace_op(identifier: FragmentId, term_frequencies) -> ReplaceFragment:
    """Build a canonical :class:`ReplaceFragment` from a mapping or pair iterable.

    Coerces the identifier to a tuple and drops non-positive occurrence
    counts (matching what the per-fragment ``replace_fragment`` path skips).
    Keyword case is preserved — lower-casing is the
    :class:`~repro.core.fragment_index.InvertedFragmentIndex` facade's job.
    """
    return ReplaceFragment(tuple(identifier), _as_pairs(term_frequencies))


def coalesce_mutations(batch: Iterable[Mutation]) -> List[Mutation]:
    """Fold a batch down to the minimal op sequence with the same final state.

    Later :class:`ReplaceFragment`/:class:`RemoveFragment` ops override every
    earlier op on the same fragment; duplicate touches collapse.  A touch is
    only kept when it can still matter — first op for its fragment, or
    following a remove (where it re-registers the fragment empty).  Relative
    order *between* fragments is first-occurrence order, which is sound
    because ops on distinct fragments commute.

    This is what makes Zipf-skewed mutation streams cheap: a burst that
    rewrites the same hot fragment N times reaches the store as one swap.
    """
    slots: Dict[FragmentId, List[Mutation]] = {}
    for op in batch:
        identifier = tuple(op.identifier)
        ops = slots.setdefault(identifier, [])
        if isinstance(op, (ReplaceFragment, RemoveFragment)):
            ops.clear()
            ops.append(op)
        elif not ops or isinstance(ops[-1], RemoveFragment):
            # A touch after a replace is always a no-op (replace registers);
            # after a remove it re-registers the fragment empty.
            ops.append(op)
    coalesced: List[Mutation] = []
    for ops in slots.values():
        coalesced.extend(ops)
    return coalesced


def normalize_mutations(batch: Sequence[Mutation]) -> List[Mutation]:
    """Validate, canonicalise and coalesce one batch (every backend's entry).

    Identifiers are coerced to tuples, replace pair sets to canonical tuples
    with non-positive counts dropped, unknown op types rejected, and the
    result coalesced with :func:`coalesce_mutations`.
    """
    canonical: List[Mutation] = []
    for op in batch:
        if isinstance(op, ReplaceFragment):
            canonical.append(replace_op(op.identifier, op.term_frequencies))
        elif isinstance(op, RemoveFragment):
            canonical.append(RemoveFragment(tuple(op.identifier)))
        elif isinstance(op, TouchFragment):
            canonical.append(TouchFragment(tuple(op.identifier)))
        else:
            raise TypeError(
                f"unknown mutation op {op!r}; expected ReplaceFragment, "
                "RemoveFragment or TouchFragment"
            )
    return coalesce_mutations(canonical)
