"""The pluggable fragment-storage interface.

Every serving-side structure of the reproduction — the inverted fragment
index, the fragment graph, the top-k searcher and the incremental
maintainer — programs against :class:`FragmentStore` instead of private
dictionaries, so the storage backend can be swapped (single in-memory blob,
hash-sharded partitions, ...) without touching the algorithms.

The store keeps two sections that the paper's serving pipeline needs:

* the **postings section** — keyword -> inverted list of
  ``(fragment identifier, occurrences)`` postings plus every fragment's total
  keyword count (its *size*), and
* the **graph section** — one node per fragment (annotated with the keyword
  count shown in Figure 9) and the combinability adjacency between them.

Contract notes shared by all backends:

* callers pass *canonical* keys — keywords already lower-cased and fragment
  identifiers already coerced to tuples (the :class:`InvertedFragmentIndex`
  and :class:`FragmentGraph` facades take care of that);
* :meth:`postings` and :meth:`iter_items` return lists sorted by descending
  occurrence count with ``str(identifier)`` as the tie-break, exactly like the
  conventional inverted file of Section II;
* :meth:`replace_fragment` removes and re-adds one fragment's postings as a
  single store operation, which is what makes incremental maintenance
  (Section VIII) safe on partitioned backends: the fragment's postings never
  straddle two partitions, so the swap happens entirely inside one shard.
"""

from __future__ import annotations

import contextlib
import threading
import weakref
from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, TypeVar

from repro.core.fragments import FragmentId
from repro.store.epochs import EpochClock
from repro.store.mutations import (
    Mutation,
    RemoveFragment,
    ReplaceFragment,
    TouchFragment,
    normalize_mutations,
)
from repro.text.inverted_index import Posting

T = TypeVar("T")


class StoreError(Exception):
    """Raised for invalid store configuration or inconsistent operations."""


class FragmentStore(ABC):
    """Abstract storage for fragment postings, sizes and graph adjacency.

    Every store owns an :class:`~repro.store.EpochClock` (created here, or
    injected so an embedding store can share one with its partitions).
    Ticking it **after every completed write** is part of the write-method
    contract: the serving layer's caches revalidate against it, and a
    backend whose writes do not tick would be read as permanently fresh.
    """

    def __init__(self, clock: Optional["EpochClock"] = None) -> None:
        self._epoch_clock = clock if clock is not None else EpochClock()
        # Resolvers yielding the oldest-stamp callback of each live consumer
        # revalidating against the clock (weak for bound methods);
        # sweep_epochs takes their minimum (see register_stamp_provider).
        # The lock keeps a registration racing a sweep's list rebuild from
        # being silently dropped.
        self._stamp_providers: List[Callable[[], Optional[Callable[[], Optional[int]]]]] = []
        self._stamp_providers_lock = threading.Lock()

    # ------------------------------------------------------------------
    # mutation epochs (serving-layer invalidation)
    # ------------------------------------------------------------------
    @property
    def epochs(self) -> EpochClock:
        """The store's mutation clock (see :mod:`repro.store.epochs`)."""
        return self._epoch_clock

    @property
    def epoch(self) -> int:
        """Store-wide mutation epoch (bumped by every write)."""
        return self._epoch_clock.epoch

    def keyword_epoch(self, keyword: str) -> int:
        """Epoch of ``keyword``'s last postings change (0 if never touched)."""
        return self._epoch_clock.keyword_epoch(keyword)

    def fragment_epoch(self, identifier: FragmentId) -> int:
        """Epoch of ``identifier``'s last change — postings, node or adjacency."""
        return self._epoch_clock.fragment_epoch(identifier)

    def load_epochs(
        self,
        epoch: int,
        keyword_epochs: Mapping[str, int],
        fragment_epochs: Mapping[FragmentId, int],
        floor: int = 0,
    ) -> None:
        """Replace the clock state wholesale (snapshot restore).

        Persistent backends override this to also write the restored state
        through to their storage.
        """
        self._epoch_clock.load(epoch, keyword_epochs, fragment_epochs, floor=floor)

    def register_stamp_provider(self, provider: Callable[[], Optional[int]]) -> None:
        """Register a callback reporting the oldest epoch stamp a consumer
        still compares against (``None`` when it holds none).

        Every cache revalidating against this store's clock — each
        :class:`~repro.serving.SearchService` registers on construction —
        must be represented here: :meth:`sweep_epochs` clamps its prune
        bound to the minimum over all providers, so a sweep driven by one
        consumer can never erase a tombstone another consumer's older
        entries still need to fail revalidation against.

        Bound methods are held through a weak reference to their instance:
        a consumer dropped without :meth:`unregister_stamp_provider` (an
        abandoned, never-closed service) stops pinning the sweep bound as
        soon as it is collected, instead of freezing it forever.
        """
        resolver = (
            weakref.WeakMethod(provider)
            if hasattr(provider, "__self__")
            else (lambda: provider)
        )
        with self._stamp_providers_lock:
            self._stamp_providers.append(resolver)

    def unregister_stamp_provider(self, provider: Callable[[], Optional[int]]) -> None:
        """Remove a provider added by :meth:`register_stamp_provider`.

        Entries whose consumer has been garbage-collected are dropped too.
        """
        with self._stamp_providers_lock:
            self._stamp_providers = [
                resolver
                for resolver in self._stamp_providers
                if resolver() not in (None, provider)
            ]

    def _effective_sweep_bound(self, oldest_live_stamp: int) -> int:
        with self._stamp_providers_lock:
            resolvers = list(self._stamp_providers)
        bounds = [oldest_live_stamp]
        dead: List[Callable[[], Optional[Callable[[], Optional[int]]]]] = []
        for resolver in resolvers:
            provider = resolver()
            if provider is None:
                dead.append(resolver)  # consumer collected — stop honouring it
                continue
            stamp = provider()
            if stamp is not None:
                bounds.append(stamp)
        if dead:
            with self._stamp_providers_lock:
                self._stamp_providers = [
                    resolver for resolver in self._stamp_providers if resolver not in dead
                ]
        return min(bounds)

    def sweep_epochs(self, oldest_live_stamp: int) -> int:
        """Prune clock tombstones no registered consumer can still see.

        The prune bound is ``oldest_live_stamp`` clamped by every registered
        stamp provider (see :meth:`register_stamp_provider`), so the sweep
        stays sound when several serving caches share one store.  See
        :meth:`~repro.store.EpochClock.sweep` for the safety argument;
        persistent backends override this to also prune their persisted
        epoch tables.  Returns the number of entries pruned.
        """
        return self._epoch_clock.sweep(self._effective_sweep_bound(oldest_live_stamp))

    # ------------------------------------------------------------------
    # postings section — writes
    # ------------------------------------------------------------------
    @abstractmethod
    def touch_fragment(self, identifier: FragmentId) -> None:
        """Register ``identifier`` with size 0 if it is not stored yet."""

    @abstractmethod
    def add_posting(self, keyword: str, identifier: FragmentId, occurrences: int) -> None:
        """Append one posting and add ``occurrences`` to the fragment's size."""

    @abstractmethod
    def remove_fragment(self, identifier: FragmentId) -> None:
        """Drop the fragment's size entry and every posting of it (no-op when absent)."""

    def replace_fragment(self, identifier: FragmentId, term_frequencies) -> None:
        """Atomically swap one fragment's postings for ``term_frequencies``.

        Accepts a mapping or an iterable of ``(keyword, occurrences)`` pairs;
        duplicate keywords in the pair form accumulate (matching repeated
        :meth:`add_posting` calls) rather than last-wins.
        """
        self.remove_fragment(identifier)
        items = term_frequencies.items() if hasattr(term_frequencies, "items") else term_frequencies
        for keyword, occurrences in items:
            if occurrences > 0:
                self.add_posting(keyword, identifier, occurrences)

    @abstractmethod
    def finalize(self) -> None:
        """Sort every inverted list by descending occurrence count."""

    def bulk_load(self, fragments, finalize: bool = True) -> int:
        """Load whole fragments in one batch (the build pipeline's entry point).

        ``fragments`` is an iterable of ``(identifier, term_frequencies)``
        pairs — canonical identifiers, lower-cased keywords, positive
        occurrence counts — for fragments **not yet stored**; a fragment with
        an empty term map is registered at size 0.  The base implementation
        loops :meth:`touch_fragment`/:meth:`add_posting` and finalizes once;
        :class:`~repro.store.DiskStore` replaces the loop with batched
        staged-log inserts so a bulk build never pays the per-posting write
        path.  ``finalize=False`` lets a caller chain several loads before
        one :meth:`finalize`.  Returns the number of fragments loaded.
        """
        count = 0
        for identifier, term_frequencies in fragments:
            count += 1
            self.touch_fragment(identifier)
            items = (
                term_frequencies.items()
                if hasattr(term_frequencies, "items")
                else term_frequencies
            )
            for keyword, occurrences in items:
                if occurrences > 0:
                    self.add_posting(keyword, identifier, occurrences)
        if finalize:
            self.finalize()
        return count

    # ------------------------------------------------------------------
    # postings section — batched writes
    # ------------------------------------------------------------------
    def write_batch(self):
        """Context manager scoping one atomic write batch.

        The base implementation is a no-op scope (in-memory backends need no
        transaction bracket); :class:`~repro.store.DiskStore` overrides it so
        that every write issued inside the scope — including graph-section
        writes — commits as **one** sqlite transaction with the epoch
        write-through for the whole batch in that same transaction, and the
        clock ticks once after the commit.  Nesting is allowed; only the
        outermost scope commits.
        """
        return contextlib.nullcontext(self)

    def apply_mutations(self, batch: Sequence[Mutation]) -> int:
        """Apply one batch of replace/remove/touch ops as a single operation.

        ``batch`` holds :class:`~repro.store.mutations.ReplaceFragment`,
        :class:`~repro.store.mutations.RemoveFragment` and
        :class:`~repro.store.mutations.TouchFragment` ops (see
        :mod:`repro.store.mutations`); repeated ops on one fragment coalesce
        before anything is written.  Returns the number of ops actually
        applied after coalescing.

        This is the write path's throughput primitive: the base
        implementation brackets a per-op loop in :meth:`write_batch` and
        finalizes once at the end, and the concrete backends replace the
        loop with their native bulk form — a single locked dictionary pass
        (:class:`~repro.store.InMemoryStore`), a per-shard grouped fan-out
        (:class:`~repro.store.ShardedStore`), or one crash-safe transaction
        (:class:`~repro.store.DiskStore`).  Every backend leaves the
        inverted lists canonical (sorted); the shipped backends additionally
        tick the epoch clock exactly once for the whole batch (the base
        per-op loop inherits each op's own ticks, which over-counts epochs
        but never under-invalidates).
        """
        ops = normalize_mutations(batch)
        if not ops:
            return 0
        with self.write_batch():
            for op in ops:
                if isinstance(op, ReplaceFragment):
                    self.replace_fragment(op.identifier, op.term_frequencies)
                    # A replace op registers its fragment even when the new
                    # posting set is empty (see repro.store.mutations).
                    self.touch_fragment(op.identifier)
                elif isinstance(op, RemoveFragment):
                    self.remove_fragment(op.identifier)
                else:
                    self.touch_fragment(op.identifier)
        self.finalize()
        return len(ops)

    # ------------------------------------------------------------------
    # postings section — reads
    # ------------------------------------------------------------------
    @abstractmethod
    def postings(self, keyword: str) -> Tuple[Posting, ...]:
        """The sorted (possibly empty) inverted list of ``keyword``."""

    def postings_for_many(self, keywords: Sequence[str]) -> Dict[str, Tuple[Posting, ...]]:
        """The inverted lists of all ``keywords`` in one batched read.

        Returns ``keyword -> sorted postings`` (empty tuple for unknown
        keywords; duplicate inputs collapse).  The base implementation loops
        :meth:`postings`; partitioned and on-disk backends override it to
        answer the whole batch with a single fan-out / a single query, which
        is what makes scorer construction one store round-trip instead of
        one per query keyword.
        """
        return {keyword: self.postings(keyword) for keyword in dict.fromkeys(keywords)}

    def posting_blocks_for_many(self, keywords: Sequence[str]):
        """Block directories of all ``keywords`` in one batched read.

        Returns ``keyword -> `` :class:`~repro.store.blocks.KeywordBlocks`
        (an empty directory for unknown keywords; duplicate inputs
        collapse).  Every backend must derive its summaries with
        :func:`~repro.store.blocks.build_summaries` over the keyword's
        current sorted list and the current fragment sizes, so the bound
        floats — and therefore the searcher's skip/decode statistics — are
        backend-independent.  The base implementation gathers the full lists
        and chunks them; the shipped backends cache directories
        (epoch-revalidated) and :class:`~repro.store.DiskStore` serves its
        persisted ``posting_blocks`` rows without decoding any entries.
        """
        from repro.store.blocks import keyword_blocks_from_postings

        gathered = self.postings_for_many(keywords)
        directories = {}
        for keyword, postings in gathered.items():
            sizes = (
                self.fragment_sizes_for([posting.document_id for posting in postings])
                if postings
                else {}
            )
            directories[keyword] = keyword_blocks_from_postings(
                keyword, postings, lambda identifier, sizes=sizes: sizes.get(identifier, 0)
            )
        return directories

    @abstractmethod
    def fragment_frequency(self, keyword: str) -> int:
        """Number of postings of ``keyword`` (the DF Dash inverts for IDF)."""

    @abstractmethod
    def document_frequencies(self) -> Dict[str, int]:
        """DF of every keyword in the vocabulary."""

    @abstractmethod
    def term_frequency(self, keyword: str, identifier: FragmentId) -> int:
        """Occurrences of ``keyword`` in fragment ``identifier`` (0 when absent)."""

    @abstractmethod
    def fragment_term_frequencies(self, identifier: FragmentId) -> Dict[str, int]:
        """All keyword counts of one fragment."""

    def fragment_term_frequencies_for(
        self, identifiers: Sequence[FragmentId]
    ) -> Dict[FragmentId, Dict[str, int]]:
        """Keyword counts of all ``identifiers`` in one batched read.

        Unknown fragments map to ``{}``; duplicate inputs collapse.  This is
        the lazy scorer's vector-fill path: a fragment materialized from one
        keyword's decoded block needs its other query keywords' counts
        without decoding those keywords' lists.  The base implementation
        loops :meth:`fragment_term_frequencies`; partitioned and on-disk
        backends batch per shard / per query.
        """
        return {
            identifier: self.fragment_term_frequencies(identifier)
            for identifier in dict.fromkeys(identifiers)
        }

    @abstractmethod
    def fragment_size(self, identifier: FragmentId) -> int:
        """Total keyword occurrences of ``identifier`` (0 when unknown)."""

    @abstractmethod
    def fragment_sizes(self) -> Dict[FragmentId, int]:
        """Identifier -> size of every stored fragment."""

    def fragment_sizes_for(self, identifiers: Sequence[FragmentId]) -> Dict[FragmentId, int]:
        """Sizes of just ``identifiers`` (partitioned backends batch per shard)."""
        return {identifier: self.fragment_size(identifier) for identifier in identifiers}

    @abstractmethod
    def fragment_ids(self) -> Tuple[FragmentId, ...]:
        """Every stored fragment identifier."""

    @abstractmethod
    def has_fragment(self, identifier: FragmentId) -> bool:
        """Whether the postings section knows ``identifier``."""

    @abstractmethod
    def fragment_count(self) -> int:
        """Number of stored fragments."""

    @abstractmethod
    def vocabulary(self) -> Tuple[str, ...]:
        """Every indexed keyword."""

    @abstractmethod
    def vocabulary_size(self) -> int:
        """Number of distinct indexed keywords."""

    def approximate_bytes(self) -> int:
        """Rough serialized size of the postings section (ablation benchmarks).

        Counts each keyword header once globally, regardless of how many
        partitions its postings are spread over.
        """
        total = 0
        for keyword, postings in self.iter_items():
            total += len(keyword) + 1
            for posting in postings:
                total += 8
                for component in posting.document_id:
                    total += len(str(component)) + 1
        return total

    @abstractmethod
    def iter_items(self) -> Iterator[Tuple[str, Tuple[Posting, ...]]]:
        """Iterate ``(keyword, postings)`` in keyword order."""

    # ------------------------------------------------------------------
    # graph section — nodes
    # ------------------------------------------------------------------
    @abstractmethod
    def add_node(self, identifier: FragmentId, keyword_count: int) -> None:
        """Create a graph node (with an empty neighbour set)."""

    @abstractmethod
    def remove_node(self, identifier: FragmentId) -> None:
        """Drop a node and its neighbour set (callers detach edges first)."""

    @abstractmethod
    def has_node(self, identifier: FragmentId) -> bool:
        """Whether the graph section knows ``identifier``."""

    @abstractmethod
    def node_keyword_count(self, identifier: FragmentId) -> int:
        """The node's keyword-count annotation (raises KeyError when unknown)."""

    @abstractmethod
    def set_node_keyword_count(self, identifier: FragmentId, keyword_count: int) -> None:
        """Change a node's keyword-count annotation."""

    @abstractmethod
    def node_ids(self) -> Tuple[FragmentId, ...]:
        """Every graph node identifier."""

    @abstractmethod
    def node_count(self) -> int:
        """Number of graph nodes."""

    # ------------------------------------------------------------------
    # graph section — adjacency
    # ------------------------------------------------------------------
    @abstractmethod
    def add_neighbor(self, identifier: FragmentId, neighbor: FragmentId) -> None:
        """Record ``neighbor`` in ``identifier``'s neighbour set (one direction)."""

    @abstractmethod
    def discard_neighbor(self, identifier: FragmentId, neighbor: FragmentId) -> None:
        """Remove ``neighbor`` from ``identifier``'s neighbour set (one direction)."""

    def add_edge(self, left: FragmentId, right: FragmentId) -> None:
        """Connect two fragments (both directions)."""
        self.add_neighbor(left, right)
        self.add_neighbor(right, left)

    def remove_edge(self, left: FragmentId, right: FragmentId) -> None:
        """Disconnect two fragments (both directions)."""
        self.discard_neighbor(left, right)
        self.discard_neighbor(right, left)

    @abstractmethod
    def neighbors(self, identifier: FragmentId) -> Tuple[FragmentId, ...]:
        """The node's neighbour set, in storage order (raises KeyError when unknown)."""

    @abstractmethod
    def edge_count(self) -> int:
        """Number of undirected edges."""

    # ------------------------------------------------------------------
    # snapshots (dataset reuse across runs and processes)
    # ------------------------------------------------------------------
    def snapshot(self, path: str) -> str:
        """Serialize the whole store (both sections + clock) to ``path``.

        Works for every backend: the snapshot captures postings, fragment
        sizes, graph nodes, adjacency and the full :class:`EpochClock` state,
        and is written atomically (temp file + ``os.replace``) so a crash
        mid-write never leaves a truncated snapshot behind.  Returns the
        written path.  Restore with :meth:`from_snapshot`.
        """
        from repro.store.snapshot import write_snapshot

        return write_snapshot(self, path)

    @staticmethod
    def from_snapshot(
        path: str,
        store=None,
        shards: Optional[int] = None,
        store_path: Optional[str] = None,
    ) -> "FragmentStore":
        """Load a snapshot written by :meth:`snapshot` into a fresh backend.

        ``store``/``shards``/``store_path`` accept everything
        :func:`repro.store.resolve_store` does, so a snapshot taken from an
        in-memory store can be restored into a sharded or on-disk one (and
        vice versa) — ``store_path`` picks where a ``store="disk"`` restore
        lands its sqlite file.  The restored store's epoch clock matches the
        snapshotted one exactly, so serving-layer cache stamps taken against
        the original store stay comparable.
        """
        from repro.store.snapshot import load_snapshot

        return load_snapshot(path, store=store, shards=shards, store_path=store_path)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release any resources the backend holds (thread pools, files).

        The base implementation is a no-op; :class:`ShardedStore` shuts its
        read executor down and :class:`DiskStore` closes its sqlite
        connections (the write connection and every pooled reader).  Closing
        is idempotent; reads after ``close()`` are undefined for backends
        that hold external resources.
        """

    # ------------------------------------------------------------------
    # partitioning
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of partitions (1 for unpartitioned backends)."""
        return 1

    def shard_of(self, identifier: FragmentId) -> int:
        """The partition owning ``identifier``."""
        return 0

    def run_parallel(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Run independent read tasks, fanning out when the backend supports it.

        The base implementation runs them serially; :class:`ShardedStore`
        dispatches them to its thread pool.  Results keep task order either
        way, so callers stay deterministic.
        """
        return [task() for task in tasks]
