"""The single-partition in-memory backend.

Holds exactly the dictionaries that used to live inside
:class:`~repro.core.fragment_index.InvertedFragmentIndex` and
:class:`~repro.core.fragment_graph.FragmentGraph`, plus a fragment -> keywords
reverse map so that removing a fragment only touches the inverted lists it
actually appears in (the seed implementation re-scanned every posting list on
each removal, O(keywords x postings) per incremental delete).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.fragments import FragmentId
from repro.store.base import FragmentStore
from repro.store.blocks import KeywordBlocks, keyword_blocks_from_postings
from repro.store.epochs import EpochClock
from repro.store.mutations import RemoveFragment, ReplaceFragment, normalize_mutations
from repro.text.inverted_index import Posting


def posting_sort_key(posting: Posting):
    """Descending occurrence count, ``str(identifier)`` tie-break (Figure 6)."""
    return (-posting.term_frequency, str(posting.document_id))


class InMemoryStore(FragmentStore):
    """All postings, sizes and adjacency in plain dictionaries."""

    def __init__(self, clock: Optional[EpochClock] = None) -> None:
        # ``clock`` lets an embedding store (ShardedStore) share one
        # authoritative clock with all of its shards.
        super().__init__(clock)
        # Serializes postings-section mutators against finalize's sort-swap.
        # Reads stay lock-free: every mutation replaces whole lists (or
        # appends), so a racing reader sees a complete list, never a torn
        # one, and the epoch stamp retires anything it computed mid-write.
        self._postings_lock = threading.Lock()
        self._postings: Dict[str, List[Posting]] = {}
        self._fragment_sizes: Dict[FragmentId, int] = {}
        # Reverse map: fragment -> keyword -> occurrence count, insertion
        # ordered.  The keys make removals touch only the inverted lists the
        # fragment appears in; the values answer per-fragment term-vector
        # reads (fragment_term_frequencies and the lazy scorer's batched
        # vector fill) without scanning any posting list.  Duplicate
        # (keyword, fragment) postings keep the maximum count — the entry a
        # descending-sorted list scan finds first.
        self._fragment_keywords: Dict[FragmentId, Dict[str, int]] = {}
        self._sorted = True
        # keyword -> (epoch stamp, block directory).  Validated against the
        # store-wide epoch: block summaries depend on fragment sizes, which
        # change without ticking the keyword's own epoch, so any write
        # invalidates every cached directory.  Entries pin the sorted tuple
        # their summaries were derived from (KeywordBlocks.decode slices it).
        self._block_cache: Dict[str, Tuple[int, KeywordBlocks]] = {}
        self._nodes: Dict[FragmentId, int] = {}
        self._adjacency: Dict[FragmentId, Set[FragmentId]] = {}

    # ------------------------------------------------------------------
    # postings section — writes
    # ------------------------------------------------------------------
    def touch_fragment(self, identifier: FragmentId) -> None:
        new = identifier not in self._fragment_sizes
        self._fragment_sizes.setdefault(identifier, 0)
        self._fragment_keywords.setdefault(identifier, {})
        if new:
            self._epoch_clock.tick_fragment(identifier)

    def add_posting(self, keyword: str, identifier: FragmentId, occurrences: int) -> None:
        # Every mutator ticks the clock *after* its data writes complete (the
        # tick is the mutation's commit point): search stamps are captured
        # before the search's first data read, so any search that raced this
        # write carries a pre-tick stamp and the tick invalidates it.
        with self._postings_lock:
            self._postings.setdefault(keyword, []).append(Posting(identifier, occurrences))
            self._fragment_sizes[identifier] = self._fragment_sizes.get(identifier, 0) + occurrences
            keyword_map = self._fragment_keywords.setdefault(identifier, {})
            if occurrences > keyword_map.get(keyword, 0):
                keyword_map[keyword] = occurrences
            self._sorted = False
        self._epoch_clock.tick_posting(keyword, identifier)

    def remove_fragment(self, identifier: FragmentId) -> None:
        if identifier not in self._fragment_sizes:
            return
        with self._postings_lock:
            del self._fragment_sizes[identifier]
            keywords = self._fragment_keywords.pop(identifier, {})
            for keyword in keywords:
                postings = self._postings.get(keyword)
                if postings is None:
                    continue
                kept = [posting for posting in postings if posting.document_id != identifier]
                if kept:
                    self._postings[keyword] = kept
                else:
                    del self._postings[keyword]
        self._epoch_clock.tick_removal(identifier, keywords)

    def apply_mutations(self, batch) -> int:
        """Apply a whole replace/remove/touch batch in one dictionary pass.

        All ops run under a single acquisition of the postings lock, only
        the inverted lists the batch touched are re-sorted, and the epoch
        clock ticks once for the whole batch (every affected keyword and
        fragment stamped with the same new epoch).  A reader racing the pass
        can observe partially-applied lists with a pre-batch stamp — the
        final tick retires anything it computed, the same write-window rule
        every single mutator follows.
        """
        ops = normalize_mutations(batch)
        if not ops:
            return 0
        count, keywords, fragments = self.apply_mutation_ops(ops)
        if keywords or fragments:
            self._epoch_clock.tick_batch(keywords, fragments)
        return count

    def apply_mutation_ops(self, ops) -> Tuple[int, Set[str], Set[FragmentId]]:
        """The tick-free core of :meth:`apply_mutations` (shard-internal).

        Applies already-normalized ops and returns ``(count, affected
        keywords, affected fragments)`` *without* ticking the clock — the
        caller owns the batch's single tick, which is how
        :class:`~repro.store.ShardedStore` fans a batch out over its shards
        and still commits it as one epoch on the shared clock.
        """
        affected_keywords: Set[str] = set()
        affected_fragments: Set[FragmentId] = set()
        with self._postings_lock:
            was_sorted = self._sorted
            self._sorted = False
            for op in ops:
                identifier = op.identifier
                if isinstance(op, (ReplaceFragment, RemoveFragment)):
                    if identifier in self._fragment_sizes:
                        del self._fragment_sizes[identifier]
                        outgoing = self._fragment_keywords.pop(identifier, {})
                        for keyword in outgoing:
                            postings = self._postings.get(keyword)
                            if postings is None:
                                continue
                            kept = [p for p in postings if p.document_id != identifier]
                            if kept:
                                self._postings[keyword] = kept
                            else:
                                del self._postings[keyword]
                            affected_keywords.add(keyword)
                        affected_fragments.add(identifier)
                    if isinstance(op, RemoveFragment):
                        continue
                    # Replace: register (even when empty) and append the new
                    # postings exactly like repeated add_posting calls.
                    size = 0
                    keyword_map: Dict[str, int] = {}
                    for keyword, occurrences in op.term_frequencies:
                        self._postings.setdefault(keyword, []).append(
                            Posting(identifier, occurrences)
                        )
                        size += occurrences
                        if occurrences > keyword_map.get(keyword, 0):
                            keyword_map[keyword] = occurrences
                        affected_keywords.add(keyword)
                    self._fragment_sizes[identifier] = size
                    self._fragment_keywords[identifier] = keyword_map
                    affected_fragments.add(identifier)
                else:  # TouchFragment: a no-op unless the fragment is new
                    if identifier not in self._fragment_sizes:
                        self._fragment_sizes[identifier] = 0
                        self._fragment_keywords[identifier] = {}
                        affected_fragments.add(identifier)
            if was_sorted:
                # Only the touched lists lost their order; restore it here so
                # the batch needs no store-wide finalize afterwards.
                for keyword in affected_keywords:
                    postings = self._postings.get(keyword)
                    if postings is not None:
                        self._postings[keyword] = sorted(postings, key=posting_sort_key)
                self._sorted = True
        return len(ops), affected_keywords, affected_fragments

    def finalize(self) -> None:
        if self._sorted:
            return
        with self._postings_lock:
            if self._sorted:
                return
            for keyword in list(self._postings):
                # Sort into a fresh list and swap in one assignment: a
                # lock-free reader racing this sees either the complete
                # unsorted list or the complete sorted one, never the
                # emptied-out state CPython's in-place list.sort exposes.
                self._postings[keyword] = sorted(self._postings[keyword], key=posting_sort_key)
            self._sorted = True

    # ------------------------------------------------------------------
    # postings section — reads
    # ------------------------------------------------------------------
    def postings(self, keyword: str) -> Tuple[Posting, ...]:
        self.finalize()
        return tuple(self._postings.get(keyword, ()))

    def postings_for_many(self, keywords) -> Dict[str, Tuple[Posting, ...]]:
        """All requested inverted lists behind a single finalize check."""
        self.finalize()
        return {keyword: tuple(self._postings.get(keyword, ())) for keyword in dict.fromkeys(keywords)}

    def posting_blocks_for_many(self, keywords) -> Dict[str, KeywordBlocks]:
        """Block directories, cached per keyword and epoch-revalidated.

        A cached directory survives exactly until the store's next write of
        any kind (block maxima depend on fragment sizes, which can change
        without the keyword's own epoch moving), after which the directory
        is rebuilt from the current sorted list and current sizes — the
        cross-backend determinism contract of
        :meth:`~repro.store.base.FragmentStore.posting_blocks_for_many`.
        """
        self.finalize()
        directories: Dict[str, KeywordBlocks] = {}
        sizes = self._fragment_sizes
        for keyword in dict.fromkeys(keywords):
            cached = self._block_cache.get(keyword)
            if cached is not None and self._epoch_clock.epoch <= cached[0]:
                directories[keyword] = cached[1]
                continue
            # The stamp is captured before the build: a write racing the
            # build ticks past it, so the (possibly torn) entry can never
            # outlive the write.
            stamp = self._epoch_clock.epoch
            postings = tuple(self._postings.get(keyword, ()))
            blocks = keyword_blocks_from_postings(
                keyword, postings, lambda identifier: sizes.get(identifier, 0)
            )
            if postings:
                # Never cache misses (unknown-keyword floods would grow the
                # cache without bound); stale hits self-replace above.
                self._block_cache[keyword] = (stamp, blocks)
            else:
                self._block_cache.pop(keyword, None)
            directories[keyword] = blocks
        return directories

    def raw_postings(self, keyword: str) -> List[Posting]:
        """The keyword's posting list without sorting (shard-merge internal)."""
        return self._postings.get(keyword, [])

    def fragment_frequency(self, keyword: str) -> int:
        return len(self._postings.get(keyword, ()))

    def document_frequencies(self) -> Dict[str, int]:
        return {keyword: len(postings) for keyword, postings in self._postings.items()}

    def term_frequency(self, keyword: str, identifier: FragmentId) -> int:
        for posting in self._postings.get(keyword, ()):
            if posting.document_id == identifier:
                return posting.term_frequency
        return 0

    def fragment_term_frequencies(self, identifier: FragmentId) -> Dict[str, int]:
        # The reverse map carries the counts, so no posting list is scanned.
        return dict(self._fragment_keywords.get(identifier, {}))

    def fragment_term_frequencies_for(self, identifiers) -> Dict[FragmentId, Dict[str, int]]:
        keyword_maps = self._fragment_keywords
        return {
            identifier: dict(keyword_maps.get(identifier, {}))
            for identifier in dict.fromkeys(identifiers)
        }

    def fragment_keywords(self, identifier: FragmentId) -> Tuple[str, ...]:
        """The keywords whose inverted lists mention ``identifier``."""
        return tuple(self._fragment_keywords.get(identifier, ()))

    def fragment_size(self, identifier: FragmentId) -> int:
        return self._fragment_sizes.get(identifier, 0)

    def fragment_sizes(self) -> Dict[FragmentId, int]:
        return dict(self._fragment_sizes)

    def fragment_sizes_for(self, identifiers) -> Dict[FragmentId, int]:
        """Sizes of just ``identifiers`` in one dictionary pass."""
        sizes = self._fragment_sizes
        return {identifier: sizes.get(identifier, 0) for identifier in identifiers}

    def fragment_ids(self) -> Tuple[FragmentId, ...]:
        return tuple(self._fragment_sizes)

    def has_fragment(self, identifier: FragmentId) -> bool:
        return identifier in self._fragment_sizes

    def fragment_count(self) -> int:
        return len(self._fragment_sizes)

    def vocabulary(self) -> Tuple[str, ...]:
        return tuple(self._postings)

    def vocabulary_size(self) -> int:
        return len(self._postings)

    def approximate_bytes(self) -> int:
        total = 0
        for keyword, postings in self._postings.items():
            total += len(keyword) + 1
            for posting in postings:
                total += 8
                for component in posting.document_id:
                    total += len(str(component)) + 1
        return total

    def iter_items(self) -> Iterator[Tuple[str, Tuple[Posting, ...]]]:
        self.finalize()
        for keyword in sorted(self._postings):
            yield keyword, tuple(self._postings[keyword])

    # ------------------------------------------------------------------
    # graph section
    # ------------------------------------------------------------------
    def add_node(self, identifier: FragmentId, keyword_count: int) -> None:
        self._nodes[identifier] = keyword_count
        self._adjacency[identifier] = set()
        self._epoch_clock.tick_fragment(identifier)

    def remove_node(self, identifier: FragmentId) -> None:
        del self._adjacency[identifier]
        del self._nodes[identifier]
        self._epoch_clock.tick_fragment(identifier)

    def has_node(self, identifier: FragmentId) -> bool:
        return identifier in self._nodes

    def node_keyword_count(self, identifier: FragmentId) -> int:
        return self._nodes[identifier]

    def set_node_keyword_count(self, identifier: FragmentId, keyword_count: int) -> None:
        if identifier not in self._nodes:
            raise KeyError(identifier)
        self._nodes[identifier] = keyword_count
        self._epoch_clock.tick_fragment(identifier)

    def node_ids(self) -> Tuple[FragmentId, ...]:
        return tuple(self._nodes)

    def node_count(self) -> int:
        return len(self._nodes)

    def add_neighbor(self, identifier: FragmentId, neighbor: FragmentId) -> None:
        # Only ``identifier``'s neighbour set changes here; add_edge ticks the
        # other endpoint through its own add_neighbor call.
        self._adjacency[identifier].add(neighbor)
        self._epoch_clock.tick_fragment(identifier)

    def discard_neighbor(self, identifier: FragmentId, neighbor: FragmentId) -> None:
        self._adjacency[identifier].discard(neighbor)
        self._epoch_clock.tick_fragment(identifier)

    def neighbors(self, identifier: FragmentId) -> Tuple[FragmentId, ...]:
        return tuple(self._adjacency[identifier])

    def half_edge_count(self) -> int:
        """Directed neighbour entries (a sharded store halves the global sum)."""
        return sum(len(neighbors) for neighbors in self._adjacency.values())

    def edge_count(self) -> int:
        return self.half_edge_count() // 2
