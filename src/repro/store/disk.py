"""The persistent on-disk backend (sqlite3, standard library only).

:class:`DiskStore` keeps the entire serving state — keyword postings,
fragment sizes, graph nodes, adjacency *and* the store's
:class:`~repro.store.EpochClock` — in one sqlite database file, so a crawl
survives process exit: a restarted server re-attaches with
``DiskStore(path)`` (or :meth:`repro.core.engine.DashEngine.open`) and
serves exactly the results it served before, without re-crawling, and with
cache stamps handed out before the restart still comparing correctly
against mutations applied after it.

Consistency model
-----------------

* **Bulk loads batch, maintenance commits.**  Crawl-time writes
  (``add_posting`` streams of ``InvertedFragmentIndex``) accumulate in one
  open sqlite transaction and are flushed by :meth:`finalize` (and by every
  explicit commit point), which keeps loading fast; losing an in-flight
  crawl to a crash just means re-crawling.
* **``replace_fragment`` is one transaction per swap.**  Incremental
  maintenance must never leave a fragment half-replaced on disk: the swap
  (postings delete + re-insert, size update, epoch write-through) commits
  as a single sqlite transaction, so after a crash the file holds either
  the old fragment or the new one — never a mix.  ``remove_fragment``
  commits the same way.  Crash-safety is sqlite's journal: the database
  runs in WAL mode with ``synchronous=NORMAL``.
* **A mutation batch is one transaction.**  :meth:`DiskStore.write_batch`
  (which backs :meth:`~repro.store.FragmentStore.apply_mutations` and the
  maintainer's whole refresh round, graph updates included) stages every
  write inside the scope and commits once: a crash loses the whole batch,
  never half, and a WAL reader — in this process or another — sees the
  batch exactly at its commit boundary.  The epoch write-through for
  everything the batch touched lands in that same transaction, and the
  in-memory clock ticks once, after the commit.
* **The clock is write-through.**  Every tick lands in the ``meta`` /
  ``keyword_epochs`` / ``fragment_epochs`` tables inside the same
  transaction as the data write it stamps, and is restored into the
  in-memory clock on open — reads stay dict-fast, restarts stay exact.

Single-writer multi-process serving
-----------------------------------

One process opens the file with ``exclusive_writer=True`` (an advisory
lock on ``<path>.writer-lock`` makes a second writer fail fast) and owns
every mutation; any number of other processes open it with
``read_only=True`` and serve WAL snapshot reads.  A reader process calls
:meth:`refresh_epochs` to pull the epochs the writer committed — cheap
when nothing changed — after which its serving caches invalidate exactly
like the writer's own.  Sweep bounds persist in ``meta`` so a reader that
re-syncs after a tombstone sweep retires everything it stamped before the
sweep instead of trusting the pruned rows.

Identifiers are flat tuples of scalars (strings, numbers, booleans,
``None``); they are stored JSON-encoded, together with the ``str()`` form
the posting sort order tie-breaks on, so ``ORDER BY occurrences DESC, tie``
reproduces the canonical inverted-list order byte for byte.

Block layout (schema v2)
------------------------

Schema v2 replaces the row-per-posting table with the block-max layout of
:mod:`repro.store.blocks`: each keyword's impact-ordered list is stored as
``posting_blocks`` rows — one delta+varint BLOB per :data:`~repro.store.blocks.BLOCK_SIZE`
postings, with the block's ``count`` / ``max_occurrences`` / ``max_weight``
summary alongside as plain columns so a block-skipping search reads only
the tiny directory until a block's bound survives.  A per-fragment varint
forward index (``fragment_terms``) replaces the old ``fragment`` column
scans.  Mutations never rewrite blocks in place: they append to a
``staged_postings`` log (plus a ``pending_removals`` set), and **every
commit point compacts first** — the affected keywords' blocks are rebuilt
from stored-minus-removed plus staged under the canonical sort, inside the
same transaction.  A *committed* file therefore always has an empty staged
log and fully fresh block summaries: pooled readers decode blocks without
ever merging, and the stored ``max_weight`` values are bit-identical to
what the in-memory backends compute fresh (cross-backend skip statistics
stay equal).  Between commits a stale summary can only be stale-*high*
(sizes grow monotonically within a transaction), which loosens bounds but
never breaks exactness.  Opening a v1 file with a writer migrates it to v2
in one transaction (readers refuse v1 files and ask for a writer open).

Thread-safety and the read-connection pool
------------------------------------------

Writes go through one shared connection guarded by an
:class:`~threading.RLock` (sqlite serializes writers anyway).  Reads do
**not** share it: every reader thread lazily opens its own read-only
connection (``PRAGMA query_only=ON``) the first time it touches the store
and keeps it for the thread's life, so concurrent serving-layer readers —
``SearchService.search_many`` workers, the sharded fan-out pattern — run
their SQL genuinely in parallel under WAL instead of convoying behind one
lock.  ``close()`` closes the write connection *and* every pooled reader.

Two read paths fall back to the locked write connection on purpose:

* while a bulk load's batched transaction is open (``finalize()`` not yet
  called), readers must see the staged rows, which only the writing
  connection can — ``_read_connection`` detects the open transaction;
* a store that never sees a second thread only ever creates the one
  pooled reader, so the single-threaded cost is one extra ``connect``.

Hot reads are additionally cached in memory with epoch validation, the
same scheme :class:`~repro.store.ShardedStore` uses for merged postings:
keyword -> postings and fragment -> size entries are stamped with the
store epoch and revalidated against the clock per lookup, so a warm
searcher reads dictionaries, not SQL, until maintenance actually touches
the data it cached.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
import threading
import time
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.core.fragments import FragmentId
from repro.store.base import FragmentStore, StoreError
from repro.store.blocks import (
    BlockSummary,
    KeywordBlocks,
    build_summaries,
    decode_block,
    decode_uvarint,
    encode_block,
    encode_uvarint,
)
from repro.text.inverted_index import Posting

try:  # POSIX advisory locks back the single-writer mode; absent on Windows
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: Bump when the table layout changes; stored in ``PRAGMA user_version``.
SCHEMA_VERSION = 2

#: The pre-block row-per-posting layout; migrated in place on writer open.
_V1_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS fragments (
    id   TEXT PRIMARY KEY,
    size INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS posting_blocks (
    keyword         TEXT NOT NULL,
    block_no        INTEGER NOT NULL,
    count           INTEGER NOT NULL,
    max_occurrences INTEGER NOT NULL,
    max_weight      REAL NOT NULL,
    entries         BLOB NOT NULL,
    PRIMARY KEY (keyword, block_no)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS fragment_terms (
    fragment TEXT PRIMARY KEY,
    terms    BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS staged_postings (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    keyword     TEXT NOT NULL,
    fragment    TEXT NOT NULL,
    tie         TEXT NOT NULL,
    occurrences INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS staged_by_keyword ON staged_postings (keyword, occurrences DESC, tie);
CREATE INDEX IF NOT EXISTS staged_by_fragment ON staged_postings (fragment);
CREATE TABLE IF NOT EXISTS pending_removals (
    fragment TEXT PRIMARY KEY
);
CREATE TABLE IF NOT EXISTS nodes (
    id            TEXT PRIMARY KEY,
    keyword_count INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS edges (
    src TEXT NOT NULL,
    dst TEXT NOT NULL,
    PRIMARY KEY (src, dst)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS keyword_epochs (
    keyword TEXT PRIMARY KEY,
    epoch   INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS fragment_epochs (
    fragment TEXT PRIMARY KEY,
    epoch    INTEGER NOT NULL
);
"""


#: Identifier component types that survive the JSON round trip unchanged.
SCALAR_COMPONENT_TYPES = (str, int, float, bool, type(None))


def check_identifier_components(identifier: FragmentId) -> None:
    """Reject identifiers whose components would not round-trip through JSON.

    Identifiers are flat tuples of scalars by contract; a nested tuple would
    *serialize* fine (json writes it as an array) but decode as a list —
    an unequal, unhashable value that would brick the store on reopen.
    Failing the write keeps the file always reopenable.
    """
    for component in identifier:
        if not isinstance(component, SCALAR_COMPONENT_TYPES):
            raise StoreError(
                f"fragment identifier {identifier!r} has non-scalar component "
                f"{component!r} ({type(component).__name__}); persistent stores "
                "require flat tuples of str/int/float/bool/None"
            )


def encode_identifier(identifier: FragmentId) -> str:
    """One fragment identifier as a canonical JSON string (the row key)."""
    check_identifier_components(identifier)
    return json.dumps(list(identifier), separators=(",", ":"))


def decode_identifier(encoded: str) -> FragmentId:
    """The inverse of :func:`encode_identifier`."""
    return tuple(json.loads(encoded))


def encode_fragment_terms(items) -> bytes:
    """One fragment's term vector as an *appendable* varint BLOB.

    Each ``(keyword, occurrences)`` pair is ``varint(len) + utf-8 +
    varint(occurrences)`` with no count header, so ``add_posting`` extends a
    stored vector by concatenating one encoded pair instead of re-encoding
    the whole row.  Duplicate keywords may therefore appear; decoders take
    the maximum per keyword (the same winner ``ORDER BY occurrences DESC``
    picked in the v1 row layout).
    """
    out = bytearray()
    for keyword, occurrences in items:
        raw = keyword.encode("utf-8")
        encode_uvarint(len(raw), out)
        out += raw
        encode_uvarint(occurrences, out)
    return bytes(out)


def decode_fragment_terms(blob: bytes) -> List[Tuple[str, int]]:
    """The ``(keyword, occurrences)`` pairs of one ``fragment_terms`` BLOB,
    duplicates preserved in append order."""
    pairs: List[Tuple[str, int]] = []
    position = 0
    end = len(blob)
    while position < end:
        length, position = decode_uvarint(blob, position)
        raw = blob[position : position + length]
        if len(raw) != length:
            raise ValueError("truncated fragment term keyword")
        position += length
        occurrences, position = decode_uvarint(blob, position)
        pairs.append((raw.decode("utf-8"), occurrences))
    return pairs


class DiskStore(FragmentStore):
    """All serving state in one sqlite database file.

    ``path`` — the database file; created (with parent directories) when
    missing unless ``create=False``, in which case opening a non-existent
    path raises :class:`~repro.store.StoreError` (the ``DashEngine.open``
    re-attach path, where silently creating an empty store would mask a
    typo'd path as an empty dataset).

    ``read_only`` — open in the multi-process *reader* role: every
    connection is ``PRAGMA query_only``, write methods raise
    :class:`~repro.store.StoreError`, and :meth:`refresh_epochs` re-syncs
    the in-memory clock with mutations another process committed.  WAL
    readers see each committed writer transaction atomically, so a reader
    process never observes half of an applied mutation batch.

    ``exclusive_writer`` — take the single-writer role: a POSIX advisory
    lock on ``<path>.writer-lock`` is held for the store's life, so a second
    process asking for the writer role fails fast instead of interleaving
    transactions.  The lock dies with the process (no stale-lock cleanup
    after a crash).
    """

    def __init__(
        self,
        path: str,
        create: bool = True,
        read_only: bool = False,
        exclusive_writer: bool = False,
    ) -> None:
        super().__init__()
        self.path = os.fspath(path)
        self.read_only = read_only
        existed = os.path.exists(self.path)
        if read_only and exclusive_writer:
            raise StoreError("a read-only disk store cannot take the writer role")
        if not existed and (not create or read_only):
            raise StoreError(f"no disk store at {self.path!r} (create=False)")
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._writer_lock_fd: Optional[int] = None
        if exclusive_writer:
            self._acquire_writer_lock()
        self._lock = threading.RLock()
        # One shared *write* connection: sqlite serializes writers anyway,
        # and the RLock keeps its cursor use race-free.  Reads go through a
        # per-thread read-only pool (see _read_connection).
        self._connection = sqlite3.connect(self.path, check_same_thread=False)
        self._pool_lock = threading.Lock()
        # (owning thread, connection) pairs: the thread reference is what
        # lets _read_connection reclaim connections whose thread exited.
        self._pooled_readers: List[Tuple[threading.Thread, sqlite3.Connection]] = []
        self._thread_reader = threading.local()
        self._closed = False
        # Atomic-batch bookkeeping (see write_batch): depth of nested batch
        # scopes, the thread that owns the open batch, and the keywords/
        # fragments it touched, whose single deferred tick is the batch's
        # in-process commit point.
        self._batch_depth = 0
        self._batch_owner: Optional[threading.Thread] = None
        self._batch_keywords: Set[str] = set()
        self._batch_fragments: Dict[str, FragmentId] = {}
        # Keywords whose posting_blocks rows are stale relative to the
        # staged log / current sizes; _compact() rebuilds exactly these
        # before any commit.  In-memory only on purpose: a crash discards
        # the uncommitted staged rows wholesale, and a rollback that
        # resurrects staged rows re-marks the set (_restage_dirty).
        self._dirty_keywords: Set[str] = set()
        # Highest persisted meta epoch whose commits the loaded clock views
        # are known to cover (see refresh_epochs).
        self._refreshed_meta_epoch = 0
        try:
            if read_only:
                # The reader role never writes: query_only enforces it at
                # the SQL layer (while still participating in WAL locking,
                # which a mode=ro URI open could not on a missing -shm).
                self._connection.execute("PRAGMA query_only=ON")
            else:
                self._connection.execute("PRAGMA journal_mode=WAL")
                self._connection.execute("PRAGMA synchronous=NORMAL")
            # A writer checkpointing (or a reader racing one) may find the
            # file briefly busy in multi-process serving; wait, don't throw.
            self._connection.execute("PRAGMA busy_timeout=5000")
            self._ensure_schema(existed)
            # Decoded-identifier memo (encoded text -> tuple) plus
            # epoch-validated read caches, mirroring ShardedStore's merged
            # postings: hot keywords and hot fragment sizes skip the SQL
            # round-trip until their epoch moves.  Guarded by their own lock
            # so pooled readers never serialize behind the write lock.
            self._decoded: Dict[str, FragmentId] = {}
            self._cache_lock = threading.Lock()
            self._postings_cache: Dict[str, Tuple[int, Tuple[Posting, ...]]] = {}
            self._sizes_cache: Dict[FragmentId, Tuple[int, int]] = {}
            self._neighbors_cache: Dict[FragmentId, Tuple[int, Tuple[FragmentId, ...]]] = {}
            # Block-layout caches.  Directory handles and decoded blocks are
            # validated against the *store-wide* epoch, not the keyword
            # epoch: a fragment-size change stales a block's max_weight
            # without ticking the keyword, and the store epoch is the one
            # stamp that moves on every mutation (same rule the in-memory
            # backends apply to their block directories).
            self._blocks_cache: Dict[str, Tuple[int, KeywordBlocks]] = {}
            self._block_cache: Dict[str, Tuple[int, Dict[int, Tuple[Posting, ...]]]] = {}
            self._terms_cache: Dict[FragmentId, Tuple[int, Dict[str, int]]] = {}
            self._restore_clock()
        except BaseException:
            # A failed open (schema mismatch, corrupt file) must not leave the
            # connection dangling — the caller may want to delete or rebuild
            # the file, which a held lock would block on some platforms.
            self._connection.close()
            self._release_writer_lock()
            raise

    # ------------------------------------------------------------------
    # schema / lifecycle
    # ------------------------------------------------------------------
    @property
    def writer_lock_path(self) -> str:
        """The advisory lock file backing the exclusive-writer role."""
        return self.path + ".writer-lock"

    def _acquire_writer_lock(self) -> None:
        descriptor = os.open(self.writer_lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            if fcntl is not None:
                try:
                    fcntl.flock(descriptor, fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    raise StoreError(
                        f"another process already owns writes to {self.path!r} "
                        f"(writer lock {self.writer_lock_path!r} is held)"
                    ) from None
            os.ftruncate(descriptor, 0)
            os.write(descriptor, str(os.getpid()).encode("ascii"))
        except BaseException:
            os.close(descriptor)
            raise
        self._writer_lock_fd = descriptor

    def _release_writer_lock(self) -> None:
        descriptor, self._writer_lock_fd = self._writer_lock_fd, None
        if descriptor is not None:
            # Closing drops the flock; the lock file itself stays behind (a
            # successor writer locks the same inode, so no unlink race).
            os.close(descriptor)

    def _assert_writable(self) -> None:
        if self.read_only:
            raise StoreError(
                f"disk store {self.path!r} was opened read-only; writes belong "
                "to the process holding the writer role"
            )

    def _ensure_schema(self, existed: bool) -> None:
        with self._lock:
            version = self._connection.execute("PRAGMA user_version").fetchone()[0]
            if existed and version not in (0, _V1_SCHEMA_VERSION, SCHEMA_VERSION):
                raise StoreError(
                    f"disk store {self.path!r} uses schema version {version}, "
                    f"this build reads version {SCHEMA_VERSION}"
                )
            if self.read_only:
                # A reader cannot create what is missing — and must not
                # migrate a v1 file either (migration writes).
                if version != SCHEMA_VERSION:
                    raise StoreError(
                        f"disk store {self.path!r} holds no readable "
                        f"version-{SCHEMA_VERSION} schema (open it with a "
                        "writer once to build or migrate it)"
                    )
                return
            self._connection.executescript(_SCHEMA)
            # The migration's data moves, the DROP of the v1 table and the
            # user_version bump all join one implicit transaction: a crash
            # mid-migration leaves the file at v1 and the next writer open
            # redoes it from scratch (the migration's leading DELETEs make
            # the redo idempotent).
            if version == _V1_SCHEMA_VERSION:
                self._migrate_v1_postings()
            self._connection.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
            self._connection.commit()

    def _migrate_v1_postings(self) -> None:
        """One-time v1 -> v2 migration: fold the row-per-posting table into
        block BLOBs plus the per-fragment forward index, then drop it."""
        connection = self._connection
        for table in ("posting_blocks", "fragment_terms", "staged_postings", "pending_removals"):
            connection.execute(f"DELETE FROM {table}")
        sizes = dict(connection.execute("SELECT id, size FROM fragments"))
        # Forward index first: pairs land occurrences-descending per
        # fragment, so the decoder's max-wins fold picks the same winner the
        # v1 ``ORDER BY occurrences DESC LIMIT 1`` queries did.
        vectors: Dict[str, bytearray] = {}
        for encoded, keyword, occurrences in connection.execute(
            "SELECT fragment, keyword, occurrences FROM postings "
            "ORDER BY fragment, occurrences DESC, seq ASC"
        ).fetchall():
            blob = vectors.setdefault(encoded, bytearray())
            raw = keyword.encode("utf-8")
            encode_uvarint(len(raw), blob)
            blob += raw
            encode_uvarint(occurrences, blob)
        connection.executemany(
            "INSERT INTO fragment_terms (fragment, terms) VALUES (?, ?)",
            [(encoded, bytes(blob)) for encoded, blob in vectors.items()],
        )
        # Inverted lists in canonical order, cut into blocks per keyword.
        current: Optional[str] = None
        entries: List[Tuple[str, int]] = []
        for keyword, encoded, occurrences in connection.execute(
            "SELECT keyword, fragment, occurrences FROM postings "
            "ORDER BY keyword, occurrences DESC, tie ASC, seq ASC"
        ).fetchall():
            if keyword != current:
                if current is not None:
                    self._write_keyword_blocks(current, entries, sizes)
                current = keyword
                entries = []
            entries.append((encoded, occurrences))
        if current is not None:
            self._write_keyword_blocks(current, entries, sizes)
        connection.execute("DROP TABLE postings")

    def _write_keyword_blocks(
        self,
        keyword: str,
        entries: List[Tuple[str, int]],
        sizes: Mapping[str, int],
    ) -> None:
        """Replace one keyword's ``posting_blocks`` rows.

        ``entries`` is the keyword's complete inverted list in canonical
        order as ``(encoded identifier, occurrences)`` pairs; ``sizes`` maps
        encoded identifiers to *current* fragment sizes.  The summaries are
        built through the shared :func:`~repro.store.blocks.build_summaries`
        over exactly these values, so the stored ``max_weight`` floats are
        bit-identical to what the in-memory backends compute fresh.
        """
        connection = self._connection
        connection.execute("DELETE FROM posting_blocks WHERE keyword = ?", (keyword,))
        if not entries:
            return
        postings = tuple(Posting(encoded, occurrences) for encoded, occurrences in entries)
        summaries = build_summaries(postings, lambda encoded: sizes.get(encoded, 0))
        rows = []
        start = 0
        for block_no, summary in enumerate(summaries):
            chunk = postings[start : start + summary.count]
            start += summary.count
            rows.append(
                (
                    keyword,
                    block_no,
                    summary.count,
                    summary.max_occurrences,
                    summary.max_weight,
                    encode_block(chunk, lambda encoded: encoded),
                )
            )
        connection.executemany(
            "INSERT INTO posting_blocks "
            "(keyword, block_no, count, max_occurrences, max_weight, entries) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            rows,
        )

    def _read_clock_state(self):
        """The persisted clock state ``(epoch, keywords, fragments, floor)``
        or ``None`` when the file has never been stamped."""
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM meta WHERE key = 'epoch'"
            ).fetchone()
            if row is None:
                return None
            bound = self._connection.execute(
                "SELECT value FROM meta WHERE key = 'sweep_bound'"
            ).fetchone()
            keywords = {
                keyword: epoch
                for keyword, epoch in self._connection.execute(
                    "SELECT keyword, epoch FROM keyword_epochs"
                )
            }
            fragments = {
                self._decode(encoded): epoch
                for encoded, epoch in self._connection.execute(
                    "SELECT fragment, epoch FROM fragment_epochs"
                )
            }
        return int(row[0]), keywords, fragments, int(bound[0]) if bound else 0

    def _restore_clock(self) -> None:
        state = self._read_clock_state()
        if state is None:
            return
        epoch, keywords, fragments, floor = state
        self._epoch_clock.load(epoch, keywords, fragments, floor=floor)
        # Everything committed up to this meta epoch is reflected in the
        # loaded views (they were read after it) — the refresh_epochs
        # short-circuit compares against this coverage mark, never against
        # the possibly-ahead clock epoch.
        self._refreshed_meta_epoch = epoch

    def refresh_epochs(self) -> bool:
        """Re-sync the in-memory clock with mutations committed by another
        process (the reader half of the single-writer protocol).

        Cheap when nothing changed: one ``meta`` row read.  When the
        persisted store epoch (or sweep bound) moved past what this process
        has already loaded, the fine-grained views are reloaded wholesale
        and the method returns ``True`` — every cache revalidating against
        this store then drops exactly the entries the writer's batches
        touched, and the restored sweep floor retires anything stamped
        before a sweep this process never witnessed.  The writer's own
        store is trivially current, so calling this there is a no-op.
        """
        row = self._execute_read("SELECT value FROM meta WHERE key = 'epoch'")
        persisted = int(row[0][0]) if row else 0
        bound_row = self._execute_read("SELECT value FROM meta WHERE key = 'sweep_bound'")
        persisted_floor = int(bound_row[0][0]) if bound_row else 0
        clock = self._epoch_clock
        # Compare against the *coverage mark* (the meta epoch whose commits
        # the loaded views provably include), never the clock epoch itself:
        # a commit racing the previous reload can leave the clock rounded
        # ahead of a view (see below), and short-circuiting on the clock
        # would then skip that commit's epochs forever.
        if persisted <= self._refreshed_meta_epoch and persisted_floor <= clock.floor:
            return False
        keywords = dict(self._execute_read("SELECT keyword, epoch FROM keyword_epochs"))
        fragments = {
            self._decode(encoded): epoch
            for encoded, epoch in self._execute_read(
                "SELECT fragment, epoch FROM fragment_epochs"
            )
        }
        # Each SELECT above is its own WAL snapshot, so a commit landing
        # between them can make a fine-grained view newer than the meta
        # epoch read first; taking the maximum keeps the restored clock
        # self-consistent (epochs only grow, so rounding up is safe).  The
        # views were read *after* the meta row, so they cover every commit
        # up to ``persisted`` — that, not the rounded-up epoch, is the next
        # short-circuit bound.
        epoch = max([persisted, clock.epoch, *keywords.values(), *fragments.values()])
        clock.load(epoch, keywords, fragments, floor=persisted_floor)
        self._refreshed_meta_epoch = persisted
        return True

    def close(self) -> None:
        """Flush pending writes and close every sqlite connection.

        Closes the write connection *and* all pooled read connections (no
        file descriptor outlives the store).  Idempotent; reads after
        ``close()`` raise :class:`sqlite3.ProgrammingError`.
        """
        with self._pool_lock:
            already_closed = self._closed
            self._closed = True
            pooled, self._pooled_readers = self._pooled_readers, []
        for _thread, connection in pooled:
            connection.close()
        if not already_closed:
            with self._lock:
                if not self.read_only:
                    self._flush_staged()
                self._connection.close()
            self._release_writer_lock()

    @property
    def pooled_reader_count(self) -> int:
        """Number of per-thread read connections currently open."""
        with self._pool_lock:
            return len(self._pooled_readers)

    def drop_read_caches(self) -> int:
        """Evict the in-memory postings/size caches (benchmark cold starts).

        Returns the number of entries dropped.  Purely a diagnostics hook:
        the caches are epoch-validated, so correctness never requires this.
        """
        with self._cache_lock:
            dropped = (
                len(self._postings_cache)
                + len(self._sizes_cache)
                + len(self._neighbors_cache)
                + len(self._blocks_cache)
                + len(self._block_cache)
                + len(self._terms_cache)
            )
            self._postings_cache = {}
            self._sizes_cache = {}
            self._neighbors_cache = {}
            self._blocks_cache = {}
            self._block_cache = {}
            self._terms_cache = {}
        return dropped

    def _read_connection(self) -> Optional[sqlite3.Connection]:
        """This thread's pooled read-only connection.

        ``None`` while the write connection has an open transaction — a bulk
        load's staged rows are only visible to the connection that wrote
        them, so such reads must go through the write connection (locked).
        The exception is an open *atomic batch* (see :meth:`write_batch`):
        its staged rows must stay invisible until the batch commits, so
        batch-window reads from other threads keep using the pooled snapshot
        connections — a racing reader sees the complete pre-batch state,
        never a torn one.  The batch-owning thread itself reads through the
        write connection: its own maintenance logic (graph surgery over
        fragments the batch already removed) depends on the staged rows.
        """
        if self._connection.in_transaction and (
            not self._batch_depth or self._in_owned_batch()
        ):
            return None
        connection = getattr(self._thread_reader, "connection", None)
        if connection is None:
            with self._pool_lock:
                if self._closed:
                    raise StoreError(f"disk store {self.path!r} is closed")
                # Reclaim connections whose owning thread exited — the
                # thread-local reference died with the thread, but this list
                # would otherwise keep their sqlite fds open forever under
                # thread churn (thread-per-request servers, repeated
                # SearchService pools).  Churn always brings new reader
                # threads through here, so sweeps keep pace with deaths.
                surviving = []
                for thread, pooled in self._pooled_readers:
                    if thread.is_alive():
                        surviving.append((thread, pooled))
                    else:
                        pooled.close()
                self._pooled_readers = surviving
                # check_same_thread=False only so close() (and the sweep
                # above) can close pooled readers from whatever thread runs
                # them; reads still use each connection from its owner.
                connection = self._connect_reader()
                self._pooled_readers.append((threading.current_thread(), connection))
            self._thread_reader.connection = connection
        return connection

    def _connect_reader(self) -> sqlite3.Connection:
        """Open + configure one pooled read-only connection, with retry.

        ``busy_timeout`` only protects statements on an *established*
        connection — the connect itself (and the PRAGMAs before the timeout
        is installed) can still hit a writer holding the file lock and
        raise ``sqlite3.OperationalError: database is locked``.  Those are
        retried within the same ~5 s budget the busy handler would have
        granted; any other operational error propagates immediately.
        """
        deadline = time.monotonic() + 5.0  # mirrors PRAGMA busy_timeout=5000
        while True:
            connection = None
            try:
                connection = sqlite3.connect(self.path, check_same_thread=False)
                connection.execute("PRAGMA query_only=ON")
                connection.execute("PRAGMA busy_timeout=5000")
                return connection
            except sqlite3.OperationalError as error:
                if connection is not None:
                    connection.close()
                message = str(error).lower()
                transient = "locked" in message or "busy" in message
                if not transient or time.monotonic() >= deadline:
                    raise
                time.sleep(0.02)
            except BaseException:
                if connection is not None:
                    connection.close()
                raise

    def _execute_read(self, sql: str, parameters: Tuple = ()) -> List[Tuple]:
        """Run one SELECT on this thread's pooled reader (or, while a bulk
        load is staged, on the locked write connection) and fetch all rows."""
        connection = self._read_connection()
        if connection is None:
            with self._lock:
                return self._connection.execute(sql, parameters).fetchall()
        return connection.execute(sql, parameters).fetchall()

    def __enter__(self) -> "DiskStore":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # encoding / clock write-through
    # ------------------------------------------------------------------
    def _decode(self, encoded: str) -> FragmentId:
        identifier = self._decoded.get(encoded)
        if identifier is None:
            identifier = decode_identifier(encoded)
            self._decoded[encoded] = identifier
        return identifier

    def _persist_epoch(self) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('epoch', ?)",
            (str(self._epoch_clock.epoch),),
        )

    def _persist_keyword_epoch(self, keyword: str) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO keyword_epochs (keyword, epoch) VALUES (?, ?)",
            (keyword, self._epoch_clock.keyword_epoch(keyword)),
        )

    def _persist_fragment_epoch(self, encoded: str, identifier: FragmentId) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO fragment_epochs (fragment, epoch) VALUES (?, ?)",
            (encoded, self._epoch_clock.fragment_epoch(identifier)),
        )

    def _in_owned_batch(self) -> bool:
        """Whether the calling thread owns the currently-open write batch.

        The owner's reads must see the batch's staged rows (and must skip
        the epoch-validated caches, whose entries still describe pre-batch
        state under an unticked clock); every other thread reads the
        pre-batch snapshot.
        """
        return bool(self._batch_depth) and self._batch_owner is threading.current_thread()

    # Every write method stamps its mutation through these three helpers.
    # Outside a batch they tick the clock and write the epoch rows
    # immediately (one transaction per mutation, the pre-overhaul regime);
    # inside an open write_batch they only *record* what was touched — the
    # batch writes one predicted epoch for everything at commit and ticks
    # the in-memory clock once, after the commit, so a racing reader can
    # never cache pre-batch data under a post-batch stamp.
    def _tick_posting_write(self, keyword: str, encoded: str, identifier: FragmentId) -> None:
        if self._batch_depth:
            self._batch_keywords.add(keyword)
            self._batch_fragments[encoded] = identifier
            return
        self._epoch_clock.tick_posting(keyword, identifier)
        self._persist_epoch()
        self._persist_keyword_epoch(keyword)
        self._persist_fragment_epoch(encoded, identifier)

    def _tick_fragment_write(self, encoded: str, identifier: FragmentId) -> None:
        if self._batch_depth:
            self._batch_fragments[encoded] = identifier
            return
        self._epoch_clock.tick_fragment(identifier)
        self._persist_epoch()
        self._persist_fragment_epoch(encoded, identifier)

    def _tick_removal_write(
        self, encoded: str, identifier: FragmentId, keywords: List[str]
    ) -> None:
        if self._batch_depth:
            self._batch_keywords.update(keywords)
            self._batch_fragments[encoded] = identifier
            return
        self._epoch_clock.tick_removal(identifier, keywords)
        self._persist_epoch()
        for keyword in keywords:
            self._persist_keyword_epoch(keyword)
        self._persist_fragment_epoch(encoded, identifier)

    def _mark_dirty(self, keyword: str) -> None:
        self._dirty_keywords.add(keyword)

    def _compact(self) -> None:
        """Fold the staged write log into the block tables (no commit).

        Every commit site runs this first, so a *committed* file is always
        fully block-compacted: ``staged_postings`` and ``pending_removals``
        are empty on disk after any commit, pooled readers decode blocks
        without merging, and every stored per-block ``max_weight`` reflects
        the fragment sizes as of the commit — bit-identical to the
        in-memory backends' fresh computation, which keeps block skip/decode
        statistics equal across backends.
        """
        if not self._dirty_keywords:
            return
        connection = self._connection
        removed = {
            encoded
            for (encoded,) in connection.execute("SELECT fragment FROM pending_removals")
        }
        dirty = sorted(self._dirty_keywords)
        staged: Dict[str, List[Tuple[str, int, str]]] = {}
        merged: Dict[str, List[Tuple[str, int]]] = {}
        for start in range(0, len(dirty), self._IN_CHUNK):
            chunk = dirty[start : start + self._IN_CHUNK]
            placeholders = ",".join("?" for _ in chunk)
            for keyword, encoded, occurrences, tie in connection.execute(
                f"SELECT keyword, fragment, occurrences, tie FROM staged_postings "
                f"WHERE keyword IN ({placeholders}) "
                "ORDER BY keyword, occurrences DESC, tie ASC, seq ASC",
                tuple(chunk),
            ).fetchall():
                staged.setdefault(keyword, []).append((encoded, occurrences, tie))
            for keyword, blob in connection.execute(
                f"SELECT keyword, entries FROM posting_blocks "
                f"WHERE keyword IN ({placeholders}) ORDER BY keyword, block_no",
                tuple(chunk),
            ).fetchall():
                kept = merged.setdefault(keyword, [])
                for posting in decode_block(blob, lambda encoded: encoded):
                    if posting.document_id not in removed:
                        kept.append((posting.document_id, posting.term_frequency))
        for keyword, additions in staged.items():
            # Stable merge under the canonical (occurrences DESC, tie,
            # insertion) order: stored entries precede staged ones at equal
            # keys, exactly as their lower v1-style sequence numbers would.
            combined = [
                (encoded, occurrences, str(self._decode(encoded)))
                for encoded, occurrences in merged.get(keyword, [])
            ]
            combined.extend(additions)
            combined.sort(key=lambda entry: (-entry[1], entry[2]))
            merged[keyword] = [(encoded, occurrences) for encoded, occurrences, _tie in combined]
        members = sorted({
            encoded for entries in merged.values() for encoded, _occurrences in entries
        })
        sizes: Dict[str, int] = {}
        for start in range(0, len(members), self._IN_CHUNK):
            chunk = members[start : start + self._IN_CHUNK]
            placeholders = ",".join("?" for _ in chunk)
            sizes.update(
                connection.execute(
                    f"SELECT id, size FROM fragments WHERE id IN ({placeholders})",
                    tuple(chunk),
                ).fetchall()
            )
        for keyword in dirty:
            self._write_keyword_blocks(keyword, merged.get(keyword, []), sizes)
        # Dirty marking is exhaustive (every staged row / removal marks its
        # keywords), so the whole log is folded now.
        connection.execute("DELETE FROM staged_postings")
        connection.execute("DELETE FROM pending_removals")
        self._dirty_keywords = set()
        with self._cache_lock:
            for keyword in dirty:
                self._postings_cache.pop(keyword, None)
                self._blocks_cache.pop(keyword, None)
                self._block_cache.pop(keyword, None)

    def _flush_staged(self) -> None:
        """Compact and commit — the generic "flush whatever is pending" point."""
        self._compact()
        self._connection.commit()

    def _restage_dirty(self) -> None:
        """Re-mark dirt after a rollback resurrected staged rows.

        A rollback that lands *after* :meth:`_compact` cleared the dirty set
        restores the staged log on disk while the set says "nothing to do";
        the next commit would then persist an uncompacted file.  Re-deriving
        the marks from the restored log closes that hole (for removals the
        touched keywords are no longer cheap to know, so every stored
        keyword is conservatively re-marked — rollbacks are rare).
        """
        for (keyword,) in self._connection.execute(
            "SELECT DISTINCT keyword FROM staged_postings"
        ):
            self._dirty_keywords.add(keyword)
        if self._connection.execute("SELECT 1 FROM pending_removals LIMIT 1").fetchone():
            for (keyword,) in self._connection.execute(
                "SELECT DISTINCT keyword FROM posting_blocks"
            ):
                self._dirty_keywords.add(keyword)

    @contextlib.contextmanager
    def write_batch(self):
        """One crash-safe transaction for every write issued inside the scope.

        This is the disk backend's native form of
        :meth:`~repro.store.FragmentStore.apply_mutations` — and of any
        larger maintenance round that must land atomically (postings batch
        plus the graph updates belonging to it):

        * data writes stage on the write connection and **commit once**, at
          scope exit; a crash loses the whole batch, never half of it;
        * the epoch write-through for everything the batch touched lands in
          that same transaction (one predicted epoch for the batch);
        * the in-memory clock ticks once, *after* the commit — in-process
          readers mid-batch read the pre-batch WAL snapshot under pre-batch
          stamps, and the post-commit tick retires whatever they cached;
        * reader processes see the batch exactly at the WAL commit boundary.

        Nested scopes are allowed (``apply_mutations`` inside a maintenance
        round); only the outermost commits.  Raising out of the scope rolls
        the entire batch back — the deferred tick means the in-memory clock
        never saw it either.
        """
        self._assert_writable()
        with self._lock:
            if self._batch_depth:
                self._batch_depth += 1
                try:
                    yield self
                finally:
                    self._batch_depth -= 1
                return
            # Keep an open bulk load's writes out of the batch's transaction
            # (same rule as the per-fragment swap paths) — compacted first,
            # so the commit preserves the blocks-always-fresh invariant.
            self._flush_staged()
            self._batch_depth = 1
            self._batch_owner = threading.current_thread()
            self._batch_keywords = set()
            self._batch_fragments = {}
            keywords: Set[str] = set()
            fragments: Dict[str, FragmentId] = {}
            try:
                yield self
                keywords = self._batch_keywords
                fragments = self._batch_fragments
                # Fold the batch's staged writes into the block tables inside
                # the batch's own transaction: the commit below publishes
                # compacted blocks, never a staged log.
                self._compact()
                if keywords or fragments:
                    predicted = self._epoch_clock.epoch + 1
                    self._connection.execute(
                        "INSERT OR REPLACE INTO meta (key, value) VALUES ('epoch', ?)",
                        (str(predicted),),
                    )
                    self._connection.executemany(
                        "INSERT OR REPLACE INTO keyword_epochs (keyword, epoch) "
                        "VALUES (?, ?)",
                        [(keyword, predicted) for keyword in keywords],
                    )
                    self._connection.executemany(
                        "INSERT OR REPLACE INTO fragment_epochs (fragment, epoch) "
                        "VALUES (?, ?)",
                        [(encoded, predicted) for encoded in fragments],
                    )
                self._connection.commit()
            except BaseException:
                self._connection.rollback()
                self._restage_dirty()
                raise
            finally:
                self._batch_depth = 0
                self._batch_owner = None
                self._batch_keywords = set()
                self._batch_fragments = {}
            if keywords or fragments:
                # The batch's commit point for in-process consumers: one
                # epoch for everything it touched.
                self._epoch_clock.tick_batch(keywords, fragments.values())
                with self._cache_lock:
                    for keyword in keywords:
                        self._postings_cache.pop(keyword, None)
                        self._blocks_cache.pop(keyword, None)
                        self._block_cache.pop(keyword, None)
                    for identifier in fragments.values():
                        self._sizes_cache.pop(identifier, None)
                        self._neighbors_cache.pop(identifier, None)
                        self._terms_cache.pop(identifier, None)

    def load_epochs(
        self,
        epoch: int,
        keyword_epochs: Mapping[str, int],
        fragment_epochs: Mapping[FragmentId, int],
        floor: int = 0,
    ) -> None:
        """Restore the clock and persist the restored state (one transaction)."""
        self._assert_writable()
        self._epoch_clock.load(epoch, keyword_epochs, fragment_epochs, floor=floor)
        with self._lock:
            self._flush_staged()
            try:
                self._connection.execute("DELETE FROM keyword_epochs")
                self._connection.execute("DELETE FROM fragment_epochs")
                self._connection.executemany(
                    "INSERT INTO keyword_epochs (keyword, epoch) VALUES (?, ?)",
                    [(keyword, int(value)) for keyword, value in keyword_epochs.items()],
                )
                self._connection.executemany(
                    "INSERT INTO fragment_epochs (fragment, epoch) VALUES (?, ?)",
                    [
                        (encode_identifier(identifier), int(value))
                        for identifier, value in fragment_epochs.items()
                    ],
                )
                self._persist_epoch()
                self._connection.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES ('sweep_bound', ?)",
                    (str(int(floor)),),
                )
                self._connection.commit()
            except BaseException:
                self._connection.rollback()
                raise

    def sweep_epochs(self, oldest_live_stamp: int) -> int:
        """Prune tombstones in memory and on disk (one transaction).

        The applied bound is persisted as the file's ``sweep_bound``, so a
        reader process syncing its clock with :meth:`refresh_epochs` learns
        that entries below it were pruned and retires anything it stamped
        before the sweep instead of trusting the missing rows.
        """
        self._assert_writable()
        bound = self._effective_sweep_bound(oldest_live_stamp)
        pruned = self._epoch_clock.sweep(bound)
        with self._lock:
            self._flush_staged()
            try:
                self._connection.execute(
                    "DELETE FROM keyword_epochs WHERE epoch <= ?", (bound,)
                )
                self._connection.execute(
                    "DELETE FROM fragment_epochs WHERE epoch <= ?", (bound,)
                )
                self._connection.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES ('sweep_bound', ?)",
                    (str(self._epoch_clock.floor),),
                )
                self._connection.commit()
            except BaseException:
                self._connection.rollback()
                raise
        return pruned

    # ------------------------------------------------------------------
    # postings section — writes
    # ------------------------------------------------------------------
    def touch_fragment(self, identifier: FragmentId) -> None:
        self._assert_writable()
        encoded = encode_identifier(identifier)
        with self._lock:
            cursor = self._connection.execute(
                "INSERT OR IGNORE INTO fragments (id, size) VALUES (?, 0)", (encoded,)
            )
            new = cursor.rowcount > 0
            if new:
                self._tick_fragment_write(encoded, identifier)

    def add_posting(self, keyword: str, identifier: FragmentId, occurrences: int) -> None:
        self._assert_writable()
        encoded = encode_identifier(identifier)
        with self._lock:
            row = self._connection.execute(
                "SELECT terms FROM fragment_terms WHERE fragment = ?", (encoded,)
            ).fetchone()
            with self._cache_lock:
                self._postings_cache.pop(keyword, None)
                self._blocks_cache.pop(keyword, None)
                self._block_cache.pop(keyword, None)
                self._sizes_cache.pop(identifier, None)
                self._terms_cache.pop(identifier, None)
            self._mark_dirty(keyword)
            if row is not None:
                # The fragment grows, so the stored max_weight of every
                # *other* keyword mentioning it goes stale (stale-high —
                # still admissible, but the next compaction must refresh it
                # to keep the summaries bit-identical across backends).
                for other, _occurrences in decode_fragment_terms(row[0]):
                    self._mark_dirty(other)
            self._connection.execute(
                "INSERT INTO staged_postings (keyword, fragment, tie, occurrences) "
                "VALUES (?, ?, ?, ?)",
                (keyword, encoded, str(tuple(identifier)), occurrences),
            )
            self._connection.execute(
                "INSERT INTO fragments (id, size) VALUES (?, ?) "
                "ON CONFLICT (id) DO UPDATE SET size = size + excluded.size",
                (encoded, occurrences),
            )
            addition = encode_fragment_terms([(keyword, occurrences)])
            existing = bytes(row[0]) if row is not None else b""
            self._connection.execute(
                "INSERT INTO fragment_terms (fragment, terms) VALUES (?, ?) "
                "ON CONFLICT (fragment) DO UPDATE SET terms = excluded.terms",
                (encoded, existing + addition),
            )
            # Tick after the data writes: the tick is the commit point the
            # serving layer revalidates against (see repro.store.epochs).
            self._tick_posting_write(keyword, encoded, identifier)

    def _fragment_keywords(self, encoded: str) -> List[str]:
        row = self._connection.execute(
            "SELECT terms FROM fragment_terms WHERE fragment = ?", (encoded,)
        ).fetchone()
        if row is None:
            return []
        return list(dict.fromkeys(keyword for keyword, _occurrences in decode_fragment_terms(row[0])))

    def _delete_fragment_rows(self, encoded: str) -> List[str]:
        """Stage one fragment's removal; returns the touched keywords.

        Block rows are not rewritten here — the fragment joins
        ``pending_removals`` and its keywords the dirty set, and the next
        commit's compaction drops its entries from every affected block.
        """
        keywords = self._fragment_keywords(encoded)
        self._connection.execute(
            "INSERT OR IGNORE INTO pending_removals (fragment) VALUES (?)", (encoded,)
        )
        self._connection.execute("DELETE FROM staged_postings WHERE fragment = ?", (encoded,))
        self._connection.execute("DELETE FROM fragment_terms WHERE fragment = ?", (encoded,))
        self._connection.execute("DELETE FROM fragments WHERE id = ?", (encoded,))
        for keyword in keywords:
            self._mark_dirty(keyword)
        with self._cache_lock:
            for keyword in keywords:
                self._postings_cache.pop(keyword, None)
                self._blocks_cache.pop(keyword, None)
                self._block_cache.pop(keyword, None)
            self._sizes_cache.pop(self._decode(encoded), None)
            self._terms_cache.pop(self._decode(encoded), None)
        return keywords

    def remove_fragment(self, identifier: FragmentId) -> None:
        self._assert_writable()
        encoded = encode_identifier(identifier)
        with self._lock:
            known = self._connection.execute(
                "SELECT 1 FROM fragments WHERE id = ?", (encoded,)
            ).fetchone()
            if known is None:
                return
            if self._batch_depth:
                # Inside an atomic batch the enclosing write_batch owns the
                # transaction (and the single deferred tick).
                keywords = self._delete_fragment_rows(encoded)
                self._tick_removal_write(encoded, identifier, keywords)
                return
            self._flush_staged()  # keep unrelated batched writes out of this txn
            try:
                keywords = self._delete_fragment_rows(encoded)
                self._tick_removal_write(encoded, identifier, keywords)
                self._compact()
                self._connection.commit()
            except BaseException:
                self._connection.rollback()
                self._restage_dirty()
                raise

    def _replace_fragment_rows(self, encoded: str, identifier: FragmentId, items) -> None:
        """The swap's data writes + tick bookkeeping (transaction-agnostic).

        In batch mode the ticks only accumulate in the batch sets; outside a
        batch the clock ticks per mutation and the epoch rows are written
        with the same statement economy the pre-batch implementation had
        (each keyword once, the store epoch and fragment epoch once).
        """
        in_batch = bool(self._batch_depth)
        known = self._connection.execute(
            "SELECT 1 FROM fragments WHERE id = ?", (encoded,)
        ).fetchone()
        if known is not None:
            outgoing = self._delete_fragment_rows(encoded)
            if in_batch:
                self._tick_removal_write(encoded, identifier, outgoing)
            else:
                self._epoch_clock.tick_removal(identifier, outgoing)
                for keyword in outgoing:
                    self._persist_keyword_epoch(keyword)
        tie = str(tuple(identifier))
        kept = [(keyword, occurrences) for keyword, occurrences in items if occurrences > 0]
        # One cache-lock acquisition for the whole swap's evictions —
        # pooled readers contend on this lock for every lookup.
        with self._cache_lock:
            self._sizes_cache.pop(identifier, None)
            self._terms_cache.pop(identifier, None)
            for keyword, _occurrences in kept:
                self._postings_cache.pop(keyword, None)
                self._blocks_cache.pop(keyword, None)
                self._block_cache.pop(keyword, None)
        for keyword, occurrences in kept:
            self._mark_dirty(keyword)
            self._connection.execute(
                "INSERT INTO staged_postings (keyword, fragment, tie, occurrences) "
                "VALUES (?, ?, ?, ?)",
                (keyword, encoded, tie, occurrences),
            )
            self._connection.execute(
                "INSERT INTO fragments (id, size) VALUES (?, ?) "
                "ON CONFLICT (id) DO UPDATE SET size = size + excluded.size",
                (encoded, occurrences),
            )
            if in_batch:
                self._tick_posting_write(keyword, encoded, identifier)
            else:
                self._epoch_clock.tick_posting(keyword, identifier)
                self._persist_keyword_epoch(keyword)
        if kept:
            self._connection.execute(
                "INSERT INTO fragment_terms (fragment, terms) VALUES (?, ?) "
                "ON CONFLICT (fragment) DO UPDATE SET terms = excluded.terms",
                (encoded, encode_fragment_terms(kept)),
            )
        if not in_batch:
            self._persist_epoch()
            self._persist_fragment_epoch(encoded, identifier)

    def replace_fragment(self, identifier: FragmentId, term_frequencies) -> None:
        """Swap one fragment's postings in a single sqlite transaction.

        This is the incremental-maintenance path: after a crash the file
        holds the old postings or the new ones, never a mix, and the epoch
        write-through commits with the data it stamps.  Inside an open
        :meth:`write_batch` the swap joins the batch's transaction instead
        of committing on its own.
        """
        self._assert_writable()
        encoded = encode_identifier(identifier)
        items = (
            list(term_frequencies.items())
            if hasattr(term_frequencies, "items")
            else list(term_frequencies)
        )
        with self._lock:
            if self._batch_depth:
                self._replace_fragment_rows(encoded, identifier, items)
                return
            self._flush_staged()  # keep unrelated batched writes out of this txn
            try:
                self._replace_fragment_rows(encoded, identifier, items)
                self._compact()
                self._connection.commit()
            except BaseException:
                self._connection.rollback()
                self._restage_dirty()
                raise

    def finalize(self) -> None:
        """Fold staged writes into the block tables and commit."""
        if self.read_only:
            return
        with self._lock:
            if self._batch_depth:
                # The open atomic batch commits at write_batch exit, not here.
                return
            self._flush_staged()

    # ------------------------------------------------------------------
    # postings section — bulk loads (the batch build path)
    # ------------------------------------------------------------------
    def _tick_bulk_write(self, keywords, fragments_by_encoded: Dict[str, FragmentId]) -> None:
        """One epoch tick (and epoch write-through) for a whole bulk load."""
        if not keywords and not fragments_by_encoded:
            return
        if self._batch_depth:
            self._batch_keywords.update(keywords)
            self._batch_fragments.update(fragments_by_encoded)
            return
        self._epoch_clock.tick_batch(keywords, fragments_by_encoded.values())
        self._persist_epoch()
        epoch = self._epoch_clock.epoch
        self._connection.executemany(
            "INSERT OR REPLACE INTO keyword_epochs (keyword, epoch) VALUES (?, ?)",
            [(keyword, epoch) for keyword in keywords],
        )
        self._connection.executemany(
            "INSERT OR REPLACE INTO fragment_epochs (fragment, epoch) VALUES (?, ?)",
            [(encoded, epoch) for encoded in fragments_by_encoded],
        )

    def _invalidate_bulk_caches(self, keywords, identifiers) -> None:
        with self._cache_lock:
            for keyword in keywords:
                self._postings_cache.pop(keyword, None)
                self._blocks_cache.pop(keyword, None)
                self._block_cache.pop(keyword, None)
            for identifier in identifiers:
                self._sizes_cache.pop(identifier, None)
                self._neighbors_cache.pop(identifier, None)
                self._terms_cache.pop(identifier, None)

    def bulk_load(self, fragments, finalize: bool = True) -> int:
        """Stage whole new fragments with batched inserts (no per-posting path).

        The disk-native form of :meth:`FragmentStore.bulk_load`: one
        ``executemany`` each into ``fragments``, ``fragment_terms`` and the
        ``staged_postings`` log, one dirty-mark per keyword and one epoch
        tick for the whole batch; the next :meth:`finalize` (run here unless
        ``finalize=False``) folds the log into canonical posting blocks.
        Every fragment must be new — loading over an existing fragment would
        duplicate its postings, so it raises :class:`StoreError` instead.
        """
        self._assert_writable()
        with self._lock:
            fragment_rows: List[Tuple[str, int]] = []
            term_rows: List[Tuple[str, bytes]] = []
            staged_rows: List[Tuple[str, str, str, int]] = []
            keywords: Set[str] = set()
            by_encoded: Dict[str, FragmentId] = {}
            for identifier, term_frequencies in fragments:
                identifier = tuple(identifier)
                encoded = encode_identifier(identifier)
                if encoded in by_encoded:
                    raise StoreError(f"duplicate fragment {identifier!r} in bulk load")
                by_encoded[encoded] = identifier
                items = (
                    term_frequencies.items()
                    if hasattr(term_frequencies, "items")
                    else term_frequencies
                )
                tie = str(identifier)
                size = 0
                clean: List[Tuple[str, int]] = []
                for keyword, occurrences in items:
                    if occurrences <= 0:
                        continue
                    clean.append((keyword, occurrences))
                    staged_rows.append((keyword, encoded, tie, occurrences))
                    keywords.add(keyword)
                    size += occurrences
                fragment_rows.append((encoded, size))
                if clean:
                    term_rows.append((encoded, encode_fragment_terms(clean)))
            self._assert_fragments_absent(list(by_encoded))
            connection = self._connection
            connection.executemany(
                "INSERT INTO fragments (id, size) VALUES (?, ?)", fragment_rows
            )
            connection.executemany(
                "INSERT INTO fragment_terms (fragment, terms) VALUES (?, ?)", term_rows
            )
            connection.executemany(
                "INSERT INTO staged_postings (keyword, fragment, tie, occurrences) "
                "VALUES (?, ?, ?, ?)",
                staged_rows,
            )
            self._dirty_keywords.update(keywords)
            self._invalidate_bulk_caches(keywords, by_encoded.values())
            self._tick_bulk_write(keywords, by_encoded)
        if finalize:
            self.finalize()
        return len(by_encoded)

    def _assert_fragments_absent(self, encoded_ids: List[str]) -> None:
        for start in range(0, len(encoded_ids), self._IN_CHUNK):
            chunk = encoded_ids[start : start + self._IN_CHUNK]
            placeholders = ",".join("?" for _ in chunk)
            row = self._connection.execute(
                f"SELECT id FROM fragments WHERE id IN ({placeholders}) LIMIT 1",
                tuple(chunk),
            ).fetchone()
            if row is not None:
                raise StoreError(
                    f"bulk load would duplicate stored fragment {row[0]!r}; "
                    "bulk loads require fresh fragments"
                )

    def bulk_load_run(self, postings, sizes, finalize: bool = False) -> int:
        """Stage one sorted posting run with authoritative fragment sizes.

        The build pipeline's per-shard loader: ``postings`` is an iterable of
        ``(keyword, identifier, occurrences)`` in canonical run order —
        typically a *keyword partition*, so the run's fragments are not whole
        here — and ``sizes`` maps every member identifier to its **global**
        size (``INSERT OR REPLACE``, never accumulated), which is what keeps
        the block summaries the next compaction builds bit-identical to a
        whole-corpus build.  Term vectors are not touched; a merge step loads
        them separately (:meth:`bulk_load_fragment_vectors`).  Returns the
        number of staged postings.
        """
        self._assert_writable()
        with self._lock:
            by_encoded: Dict[str, FragmentId] = {}
            fragment_rows: List[Tuple[str, int]] = []
            for identifier, size in sizes.items():
                identifier = tuple(identifier)
                encoded = encode_identifier(identifier)
                by_encoded[encoded] = identifier
                fragment_rows.append((encoded, int(size)))
            encoded_cache: Dict[FragmentId, Tuple[str, str]] = {}
            staged_rows: List[Tuple[str, str, str, int]] = []
            keywords: Set[str] = set()
            for keyword, identifier, occurrences in postings:
                if occurrences <= 0:
                    continue
                identifier = tuple(identifier)
                try:
                    encoded, tie = encoded_cache[identifier]
                except KeyError:
                    encoded, tie = encoded_cache.setdefault(
                        identifier, (encode_identifier(identifier), str(identifier))
                    )
                staged_rows.append((keyword, encoded, tie, occurrences))
                keywords.add(keyword)
            connection = self._connection
            connection.executemany(
                "INSERT INTO fragments (id, size) VALUES (?, ?) "
                "ON CONFLICT (id) DO UPDATE SET size = excluded.size",
                fragment_rows,
            )
            connection.executemany(
                "INSERT INTO staged_postings (keyword, fragment, tie, occurrences) "
                "VALUES (?, ?, ?, ?)",
                staged_rows,
            )
            self._dirty_keywords.update(keywords)
            self._invalidate_bulk_caches(keywords, by_encoded.values())
            self._tick_bulk_write(keywords, by_encoded)
        if finalize:
            self.finalize()
        return len(staged_rows)

    def bulk_load_fragment_vectors(self, fragments) -> int:
        """Write whole fragment rows — size and term vector — without postings.

        The merge step of a sharded build: the posting blocks arrive via
        :meth:`absorb_index_shard`, and this writes the authoritative
        ``fragments`` / ``fragment_terms`` rows from the pipeline's fragment
        spools (``(identifier, term_frequencies)`` pairs, whole vectors).
        ``INSERT OR REPLACE`` semantics; the caller commits via
        :meth:`finalize`.  Returns the number of fragments written.
        """
        self._assert_writable()
        with self._lock:
            fragment_rows: List[Tuple[str, int]] = []
            term_rows: List[Tuple[str, bytes]] = []
            by_encoded: Dict[str, FragmentId] = {}
            for identifier, term_frequencies in fragments:
                identifier = tuple(identifier)
                encoded = encode_identifier(identifier)
                items = [
                    (keyword, occurrences)
                    for keyword, occurrences in (
                        term_frequencies.items()
                        if hasattr(term_frequencies, "items")
                        else term_frequencies
                    )
                    if occurrences > 0
                ]
                fragment_rows.append((encoded, sum(occ for _kw, occ in items)))
                if items:
                    term_rows.append((encoded, encode_fragment_terms(items)))
                by_encoded[encoded] = identifier
            connection = self._connection
            connection.executemany(
                "INSERT INTO fragments (id, size) VALUES (?, ?) "
                "ON CONFLICT (id) DO UPDATE SET size = excluded.size",
                fragment_rows,
            )
            connection.executemany(
                "INSERT INTO fragment_terms (fragment, terms) VALUES (?, ?) "
                "ON CONFLICT (fragment) DO UPDATE SET terms = excluded.terms",
                term_rows,
            )
            self._invalidate_bulk_caches((), by_encoded.values())
            self._tick_bulk_write(set(), by_encoded)
        return len(fragment_rows)

    def absorb_index_shard(self, path: str) -> int:
        """Copy another finalized DiskStore file's posting blocks into this one.

        The fan-in step of the sharded build: each shard file holds the
        canonical, already-compacted ``posting_blocks`` rows of a disjoint
        keyword partition (built against global fragment sizes), so
        absorbing is a straight row copy — no decoding, no re-sorting, no
        re-blocking.  The shard must be finalized (empty staged log), its
        keywords must not already exist here, and this store must hold no
        staged writes for them; violating either raises
        :class:`StoreError`.  The caller commits via :meth:`finalize`.
        Returns the number of block rows copied.
        """
        self._assert_writable()
        with self._lock:
            source = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
            try:
                staged = source.execute(
                    "SELECT (SELECT COUNT(*) FROM staged_postings) + "
                    "(SELECT COUNT(*) FROM pending_removals)"
                ).fetchone()[0]
                if staged:
                    raise StoreError(
                        f"index shard {path!r} holds {staged} unfinalized staged "
                        "writes; finalize the shard before absorbing it"
                    )
                cursor = source.execute(
                    "SELECT keyword, block_no, count, max_occurrences, max_weight, "
                    "entries FROM posting_blocks"
                )
                keywords: Set[str] = set()
                copied = 0
                while True:
                    rows = cursor.fetchmany(4096)
                    if not rows:
                        break
                    keywords.update(row[0] for row in rows)
                    if self._dirty_keywords.intersection(keywords):
                        raise StoreError(
                            "absorbing a shard over staged writes for its keywords "
                            "would fold them twice; finalize this store first"
                        )
                    try:
                        self._connection.executemany(
                            "INSERT INTO posting_blocks "
                            "(keyword, block_no, count, max_occurrences, max_weight, "
                            "entries) VALUES (?, ?, ?, ?, ?, ?)",
                            rows,
                        )
                    except sqlite3.IntegrityError as error:
                        raise StoreError(
                            f"index shard {path!r} overlaps keywords already stored "
                            "here; shards must hold disjoint keyword partitions"
                        ) from error
                    copied += len(rows)
            finally:
                source.close()
            self._invalidate_bulk_caches(keywords, ())
            self._tick_bulk_write(keywords, {})
        return copied

    # ------------------------------------------------------------------
    # postings section — reads
    # ------------------------------------------------------------------
    #: Bound variables per IN (...) chunk — stays under sqlite's default
    #: SQLITE_MAX_VARIABLE_NUMBER on every supported build.
    _IN_CHUNK = 500

    def _gather_postings(self, keywords: List[str]) -> Dict[str, Tuple[Posting, ...]]:
        """Decode the requested inverted lists from their block rows.

        On a pooled reader the committed file is always compacted (see
        :meth:`_compact`), so concatenating each keyword's blocks in
        ``block_no`` order *is* the canonical inverted list.  On the locked
        write connection (open bulk load, or the owning thread of an open
        batch) the staged log may hold rows the blocks do not: those
        keywords merge stored-minus-removed with the staged rows under the
        canonical ``(occurrences DESC, tie, insertion)`` sort.
        """
        grouped: Dict[str, List] = {keyword: [] for keyword in keywords}
        connection = self._read_connection()
        if connection is not None:
            for start in range(0, len(keywords), self._IN_CHUNK):
                chunk = keywords[start : start + self._IN_CHUNK]
                placeholders = ",".join("?" for _ in chunk)
                for keyword, blob in connection.execute(
                    f"SELECT keyword, entries FROM posting_blocks "
                    f"WHERE keyword IN ({placeholders}) ORDER BY keyword, block_no",
                    tuple(chunk),
                ).fetchall():
                    grouped[keyword].extend(decode_block(blob, self._decode))
            return {keyword: tuple(grouped[keyword]) for keyword in keywords}
        with self._lock:
            removed = {
                encoded
                for (encoded,) in self._connection.execute(
                    "SELECT fragment FROM pending_removals"
                )
            }
            staged: Dict[str, List[Tuple[str, int, str]]] = {}
            for start in range(0, len(keywords), self._IN_CHUNK):
                chunk = keywords[start : start + self._IN_CHUNK]
                placeholders = ",".join("?" for _ in chunk)
                for keyword, blob in self._connection.execute(
                    f"SELECT keyword, entries FROM posting_blocks "
                    f"WHERE keyword IN ({placeholders}) ORDER BY keyword, block_no",
                    tuple(chunk),
                ).fetchall():
                    kept = grouped[keyword]
                    for posting in decode_block(blob, lambda encoded: encoded):
                        if posting.document_id not in removed:
                            kept.append((posting.document_id, posting.term_frequency))
                for keyword, encoded, occurrences, tie in self._connection.execute(
                    f"SELECT keyword, fragment, occurrences, tie FROM staged_postings "
                    f"WHERE keyword IN ({placeholders}) "
                    "ORDER BY keyword, occurrences DESC, tie ASC, seq ASC",
                    tuple(chunk),
                ).fetchall():
                    staged.setdefault(keyword, []).append((encoded, occurrences, tie))
            results: Dict[str, Tuple[Posting, ...]] = {}
            for keyword in keywords:
                entries = grouped[keyword]
                additions = staged.get(keyword)
                if additions:
                    combined = [
                        (encoded, occurrences, str(self._decode(encoded)))
                        for encoded, occurrences in entries
                    ]
                    combined.extend(additions)
                    # Stable: stored entries precede staged ones at equal
                    # keys (their v1-style sequence numbers were lower).
                    combined.sort(key=lambda entry: (-entry[1], entry[2]))
                    entries = [
                        (encoded, occurrences) for encoded, occurrences, _tie in combined
                    ]
                results[keyword] = tuple(
                    Posting(self._decode(encoded), occurrences)
                    for encoded, occurrences in entries
                )
            return results

    def postings(self, keyword: str) -> Tuple[Posting, ...]:
        in_owned_batch = self._in_owned_batch()
        if not in_owned_batch:
            with self._cache_lock:
                cached = self._postings_cache.get(keyword)
                if cached is not None:
                    stamp, result = cached
                    if self.keyword_epoch(keyword) <= stamp:
                        return result
                    self._postings_cache.pop(keyword, None)
        stamp = self.epoch
        result = self._gather_postings([keyword])[keyword]
        if result and not in_owned_batch:
            # The pre-read stamp makes a racing write's tick invalidate this
            # entry on its next lookup; misses are never cached (unbounded
            # growth under hostile unknown keywords).  Staged batch reads
            # are never cached at all — their stamp would predate the data.
            with self._cache_lock:
                self._postings_cache[keyword] = (stamp, result)
        return result

    def postings_for_many(self, keywords) -> Dict[str, Tuple[Posting, ...]]:
        """All requested inverted lists in one chunked query.

        Cache hits are revalidated per keyword exactly like :meth:`postings`;
        the misses are answered together with ``keyword IN (...)`` batches
        (ordered so each keyword's rows come back in canonical inverted-list
        order), one round-trip instead of one per query keyword.
        """
        results: Dict[str, Tuple[Posting, ...]] = {}
        missing: List[str] = []
        in_owned_batch = self._in_owned_batch()
        if in_owned_batch:
            missing = list(dict.fromkeys(keywords))
        else:
            with self._cache_lock:
                for keyword in dict.fromkeys(keywords):
                    cached = self._postings_cache.get(keyword)
                    if cached is not None and self.keyword_epoch(keyword) <= cached[0]:
                        results[keyword] = cached[1]
                        continue
                    if cached is not None:
                        self._postings_cache.pop(keyword, None)
                    missing.append(keyword)
        if not missing:
            return results
        stamp = self.epoch
        gathered = self._gather_postings(missing)
        for keyword in missing:
            result = gathered[keyword]
            if result and not in_owned_batch:
                with self._cache_lock:
                    self._postings_cache[keyword] = (stamp, result)
            results[keyword] = result
        return results

    def fragment_frequency(self, keyword: str) -> int:
        if self._read_connection() is not None:
            # Committed files are compacted: block counts sum to the df.
            return self._execute_read(
                "SELECT COALESCE(SUM(count), 0) FROM posting_blocks WHERE keyword = ?",
                (keyword,),
            )[0][0]
        return len(self.postings(keyword))

    def document_frequencies(self) -> Dict[str, int]:
        if self._read_connection() is not None:
            return dict(
                self._execute_read(
                    "SELECT keyword, SUM(count) FROM posting_blocks GROUP BY keyword"
                )
            )
        return {
            keyword: len(postings)
            for keyword, postings in self._gather_postings(list(self.vocabulary())).items()
            if postings
        }

    def term_frequency(self, keyword: str, identifier: FragmentId) -> int:
        return self.fragment_term_frequencies(identifier).get(keyword, 0)

    def fragment_term_frequencies(self, identifier: FragmentId) -> Dict[str, int]:
        return self.fragment_term_frequencies_for((identifier,))[identifier]

    def fragment_term_frequencies_for(self, identifiers) -> Dict[FragmentId, Dict[str, int]]:
        """Each fragment's term vector from its forward-index BLOB.

        One chunked IN query for the cache misses; hits are epoch-validated
        like sizes.  Returned dictionaries are shared with the cache — treat
        them as read-only.
        """
        vectors: Dict[FragmentId, Dict[str, int]] = {}
        wanted: List[Tuple[FragmentId, str]] = []
        in_owned_batch = self._in_owned_batch()
        if in_owned_batch:
            for identifier in dict.fromkeys(identifiers):
                wanted.append((identifier, encode_identifier(identifier)))
        else:
            # Hoisted bound methods: this validation loop runs once per
            # lazy-scorer vector fetch — tens of thousands of times per
            # large search — so the per-fragment attribute walks add up.
            epoch_of = self._epoch_clock.fragment_epoch
            cache_get = self._terms_cache.get
            with self._cache_lock:
                for identifier in dict.fromkeys(identifiers):
                    cached = cache_get(identifier)
                    if cached is not None and epoch_of(identifier) <= cached[0]:
                        vectors[identifier] = cached[1]
                        continue
                    if cached is not None:
                        self._terms_cache.pop(identifier, None)
                    wanted.append((identifier, encode_identifier(identifier)))
        stamp = self.epoch
        for start in range(0, len(wanted), self._IN_CHUNK):
            chunk = wanted[start : start + self._IN_CHUNK]
            placeholders = ",".join("?" for _ in chunk)
            rows = self._execute_read(
                f"SELECT fragment, terms FROM fragment_terms "
                f"WHERE fragment IN ({placeholders})",
                tuple(encoded for _identifier, encoded in chunk),
            )
            by_encoded = dict(rows)
            with self._cache_lock:
                for identifier, encoded in chunk:
                    blob = by_encoded.get(encoded)
                    if blob is None:
                        # Unknown fragments answer {} and are never cached.
                        vectors[identifier] = {}
                        continue
                    frequencies: Dict[str, int] = {}
                    for keyword, occurrences in decode_fragment_terms(blob):
                        if occurrences > frequencies.get(keyword, 0):
                            frequencies[keyword] = occurrences
                    vectors[identifier] = frequencies
                    if not in_owned_batch:
                        self._terms_cache[identifier] = (stamp, frequencies)
        return vectors

    def fragment_keywords(self, identifier: FragmentId) -> Tuple[str, ...]:
        """The keywords whose inverted lists mention ``identifier``."""
        return tuple(self.fragment_term_frequencies(identifier))

    def fragment_size(self, identifier: FragmentId) -> int:
        in_owned_batch = self._in_owned_batch()
        if not in_owned_batch:
            with self._cache_lock:
                cached = self._sizes_cache.get(identifier)
                if cached is not None and self._epoch_clock.fragment_epoch(identifier) <= cached[0]:
                    return cached[1]
        stamp = self.epoch
        rows = self._execute_read(
            "SELECT size FROM fragments WHERE id = ?", (encode_identifier(identifier),)
        )
        size = rows[0][0] if rows else 0
        if rows and not in_owned_batch:
            with self._cache_lock:
                self._sizes_cache[identifier] = (stamp, size)
        return size

    def fragment_sizes(self) -> Dict[FragmentId, int]:
        rows = self._execute_read("SELECT id, size FROM fragments")
        return {self._decode(encoded): size for encoded, size in rows}

    def fragment_sizes_for(self, identifiers) -> Dict[FragmentId, int]:
        # One batched IN query per chunk instead of the base class's
        # per-identifier SELECT: scorer size priming asks for a whole batch
        # of fragments at once, the hottest read on the search path.  Sizes
        # already cached (and epoch-fresh) never reach SQL at all.
        sizes: Dict[FragmentId, int] = {}
        wanted: List[Tuple[FragmentId, str]] = []
        in_owned_batch = self._in_owned_batch()
        if in_owned_batch:
            for identifier in identifiers:
                sizes[identifier] = 0
                wanted.append((identifier, encode_identifier(identifier)))
        else:
            with self._cache_lock:
                for identifier in identifiers:
                    cached = self._sizes_cache.get(identifier)
                    if cached is not None and self.fragment_epoch(identifier) <= cached[0]:
                        sizes[identifier] = cached[1]
                    else:
                        sizes[identifier] = 0
                        wanted.append((identifier, encode_identifier(identifier)))
        stamp = self.epoch
        for start in range(0, len(wanted), self._IN_CHUNK):
            chunk = wanted[start : start + self._IN_CHUNK]
            placeholders = ",".join("?" for _ in chunk)
            rows = self._execute_read(
                f"SELECT id, size FROM fragments WHERE id IN ({placeholders})",
                tuple(encoded for _identifier, encoded in chunk),
            )
            by_encoded = dict(rows)
            with self._cache_lock:
                for identifier, encoded in chunk:
                    if encoded in by_encoded:
                        size = by_encoded[encoded]
                        sizes[identifier] = size
                        if not in_owned_batch:
                            self._sizes_cache[identifier] = (stamp, size)
        return sizes

    def fragment_ids(self) -> Tuple[FragmentId, ...]:
        rows = self._execute_read("SELECT id FROM fragments")
        return tuple(self._decode(encoded) for (encoded,) in rows)

    def has_fragment(self, identifier: FragmentId) -> bool:
        return bool(
            self._execute_read(
                "SELECT 1 FROM fragments WHERE id = ?", (encode_identifier(identifier),)
            )
        )

    def fragment_count(self) -> int:
        return self._execute_read("SELECT COUNT(*) FROM fragments")[0][0]

    def vocabulary(self) -> Tuple[str, ...]:
        if self._read_connection() is not None:
            rows = self._execute_read(
                "SELECT DISTINCT keyword FROM posting_blocks ORDER BY keyword"
            )
            return tuple(keyword for (keyword,) in rows)
        # Write-connection fallback (open bulk load / owned batch): the
        # staged log can hold keywords the blocks don't yet, and pending
        # removals can have emptied a blocked keyword.
        with self._lock:
            names = {
                keyword
                for (keyword,) in self._connection.execute(
                    "SELECT DISTINCT keyword FROM posting_blocks"
                )
            }
            names.update(
                keyword
                for (keyword,) in self._connection.execute(
                    "SELECT DISTINCT keyword FROM staged_postings"
                )
            )
        return tuple(keyword for keyword in sorted(names) if self.postings(keyword))

    def vocabulary_size(self) -> int:
        if self._read_connection() is not None:
            return self._execute_read(
                "SELECT COUNT(DISTINCT keyword) FROM posting_blocks"
            )[0][0]
        return len(self.vocabulary())

    def iter_items(self) -> Iterator[Tuple[str, Tuple[Posting, ...]]]:
        for keyword in self.vocabulary():
            yield keyword, self.postings(keyword)

    def posting_blocks_for_many(self, keywords) -> Dict[str, KeywordBlocks]:
        """Block directories served straight from the summary columns.

        The pooled-reader fast path reads only ``(count, max_occurrences,
        max_weight)`` rows — no BLOBs — and hands back lazily-decoding
        handles whose per-block reads (and the directories themselves) are
        cached under store-epoch validation.  While this thread must read
        through the write connection (open bulk load / owned batch) the
        staged log isn't folded into blocks yet, so the generic merged-list
        builder answers instead: deterministic, just not block-served.
        """
        unique = list(dict.fromkeys(keywords))
        if self._read_connection() is None:
            return super().posting_blocks_for_many(unique)
        results: Dict[str, KeywordBlocks] = {}
        missing: List[str] = []
        with self._cache_lock:
            for keyword in unique:
                cached = self._blocks_cache.get(keyword)
                if cached is not None and self.epoch <= cached[0]:
                    results[keyword] = cached[1]
                    continue
                if cached is not None:
                    self._blocks_cache.pop(keyword, None)
                missing.append(keyword)
        if not missing:
            return results
        stamp = self.epoch
        grouped: Dict[str, List[BlockSummary]] = {keyword: [] for keyword in missing}
        for start in range(0, len(missing), self._IN_CHUNK):
            chunk = missing[start : start + self._IN_CHUNK]
            placeholders = ",".join("?" for _ in chunk)
            rows = self._execute_read(
                f"SELECT keyword, count, max_occurrences, max_weight FROM posting_blocks "
                f"WHERE keyword IN ({placeholders}) ORDER BY keyword, block_no",
                tuple(chunk),
            )
            for keyword, count, max_occurrences, max_weight in rows:
                grouped[keyword].append(BlockSummary(count, max_occurrences, max_weight))
        with self._cache_lock:
            for keyword in missing:
                handle = KeywordBlocks(
                    keyword, tuple(grouped[keyword]), self._block_decoder(keyword)
                )
                results[keyword] = handle
                if grouped[keyword]:
                    self._blocks_cache[keyword] = (stamp, handle)
        return results

    def _block_decoder(self, keyword: str):
        """A per-keyword lazy block decoder backed by ``_block_cache``."""

        def decoder(block_no: int) -> Tuple[Posting, ...]:
            with self._cache_lock:
                cached = self._block_cache.get(keyword)
                if cached is not None and self.epoch <= cached[0]:
                    decoded = cached[1].get(block_no)
                    if decoded is not None:
                        return decoded
            stamp = self.epoch
            rows = self._execute_read(
                "SELECT entries FROM posting_blocks WHERE keyword = ? AND block_no = ?",
                (keyword, block_no),
            )
            decoded = decode_block(rows[0][0], self._decode) if rows else ()
            with self._cache_lock:
                cached = self._block_cache.get(keyword)
                if cached is not None and self.epoch <= cached[0]:
                    cached[1][block_no] = decoded
                else:
                    self._block_cache[keyword] = (stamp, {block_no: decoded})
            return decoded

        return decoder

    # ------------------------------------------------------------------
    # graph section
    # ------------------------------------------------------------------
    def add_node(self, identifier: FragmentId, keyword_count: int) -> None:
        self._assert_writable()
        encoded = encode_identifier(identifier)
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO nodes (id, keyword_count) VALUES (?, ?)",
                (encoded, keyword_count),
            )
            # Re-adding a node resets its neighbour set, like the in-memory
            # backend's fresh set() assignment.
            self._connection.execute("DELETE FROM edges WHERE src = ?", (encoded,))
            with self._cache_lock:
                self._neighbors_cache.pop(identifier, None)
            self._tick_fragment_write(encoded, identifier)

    def _require_node(self, encoded: str, identifier: FragmentId) -> None:
        known = self._connection.execute(
            "SELECT 1 FROM nodes WHERE id = ?", (encoded,)
        ).fetchone()
        if known is None:
            raise KeyError(identifier)

    def remove_node(self, identifier: FragmentId) -> None:
        self._assert_writable()
        encoded = encode_identifier(identifier)
        with self._lock:
            self._require_node(encoded, identifier)
            self._connection.execute("DELETE FROM edges WHERE src = ?", (encoded,))
            self._connection.execute("DELETE FROM nodes WHERE id = ?", (encoded,))
            with self._cache_lock:
                self._neighbors_cache.pop(identifier, None)
            self._tick_fragment_write(encoded, identifier)

    def has_node(self, identifier: FragmentId) -> bool:
        return bool(
            self._execute_read(
                "SELECT 1 FROM nodes WHERE id = ?", (encode_identifier(identifier),)
            )
        )

    def node_keyword_count(self, identifier: FragmentId) -> int:
        rows = self._execute_read(
            "SELECT keyword_count FROM nodes WHERE id = ?",
            (encode_identifier(identifier),),
        )
        if not rows:
            raise KeyError(identifier)
        return rows[0][0]

    def set_node_keyword_count(self, identifier: FragmentId, keyword_count: int) -> None:
        self._assert_writable()
        encoded = encode_identifier(identifier)
        with self._lock:
            self._require_node(encoded, identifier)
            self._connection.execute(
                "UPDATE nodes SET keyword_count = ? WHERE id = ?", (keyword_count, encoded)
            )
            self._tick_fragment_write(encoded, identifier)

    def node_ids(self) -> Tuple[FragmentId, ...]:
        rows = self._execute_read("SELECT id FROM nodes")
        return tuple(self._decode(encoded) for (encoded,) in rows)

    def node_count(self) -> int:
        return self._execute_read("SELECT COUNT(*) FROM nodes")[0][0]

    def add_neighbor(self, identifier: FragmentId, neighbor: FragmentId) -> None:
        self._assert_writable()
        encoded = encode_identifier(identifier)
        with self._lock:
            self._require_node(encoded, identifier)
            self._connection.execute(
                "INSERT OR IGNORE INTO edges (src, dst) VALUES (?, ?)",
                (encoded, encode_identifier(neighbor)),
            )
            with self._cache_lock:
                self._neighbors_cache.pop(identifier, None)
            self._tick_fragment_write(encoded, identifier)

    def discard_neighbor(self, identifier: FragmentId, neighbor: FragmentId) -> None:
        self._assert_writable()
        encoded = encode_identifier(identifier)
        with self._lock:
            self._require_node(encoded, identifier)
            self._connection.execute(
                "DELETE FROM edges WHERE src = ? AND dst = ?",
                (encoded, encode_identifier(neighbor)),
            )
            with self._cache_lock:
                self._neighbors_cache.pop(identifier, None)
            self._tick_fragment_write(encoded, identifier)

    def neighbors(self, identifier: FragmentId) -> Tuple[FragmentId, ...]:
        # The expansion loop reads adjacency for every page member of every
        # dequeued pending page — the second-hottest read on the search path
        # after sizes — so neighbour sets are cached with the same epoch
        # validation as postings and sizes (every adjacency mutation ticks
        # the endpoint's fragment epoch).
        in_owned_batch = self._in_owned_batch()
        if not in_owned_batch:
            with self._cache_lock:
                cached = self._neighbors_cache.get(identifier)
                if cached is not None and self._epoch_clock.fragment_epoch(identifier) <= cached[0]:
                    return cached[1]
        stamp = self.epoch
        encoded = encode_identifier(identifier)
        rows = self._execute_read("SELECT dst FROM edges WHERE src = ?", (encoded,))
        if not rows and not self.has_node(identifier):
            # Only the empty-adjacency answer needs the existence probe; a
            # node with edges is trivially known.
            raise KeyError(identifier)
        result = tuple(self._decode(dst) for (dst,) in rows)
        if not in_owned_batch:
            with self._cache_lock:
                self._neighbors_cache[identifier] = (stamp, result)
        return result

    def edge_count(self) -> int:
        return self._execute_read("SELECT COUNT(*) FROM edges")[0][0] // 2
