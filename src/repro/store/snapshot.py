"""Backend-independent store snapshots (build once, reuse everywhere).

A snapshot is one JSON file capturing everything a
:class:`~repro.store.FragmentStore` holds — postings, fragment sizes, graph
nodes, adjacency and the full :class:`~repro.store.EpochClock` state.  It is
written atomically (temp file in the target directory, then ``os.replace``)
so a crash mid-write leaves the previous snapshot intact, and it restores
into *any* backend: benchmarks build a dataset once in memory, snapshot it,
and restore it into sharded or on-disk stores without re-crawling.

The clock travels with the data on purpose: a serving cache stamp taken
against the snapshotted store is still meaningful against the restored one,
which is what makes snapshots usable for warm restarts and not just for
dataset seeding.

Fragment identifiers are flat tuples of JSON scalars; the file stores them
as JSON arrays and restoration coerces them back to tuples.

Snapshots deliberately carry *postings*, not posting blocks: the block
directories (summaries plus delta+varint BLOBs) are a pure function of the
sorted posting lists and fragment sizes, so restoration replays the postings
and every backend rebuilds bit-identical blocks on its own.  That keeps
``FORMAT_VERSION`` at 1 — files written before the block layout existed
restore unchanged, and block-format evolution never invalidates snapshots.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

FORMAT_VERSION = 1


def write_snapshot(store, path: str) -> str:
    """Serialize ``store`` to ``path`` atomically; returns the written path.

    The store is finalized first so postings land in canonical sorted order.
    """
    from repro.store.disk import check_identifier_components

    store.finalize()
    epoch, keyword_epochs, fragment_epochs = store.epochs.state()
    for identifier in list(store.fragment_sizes()) + list(store.node_ids()):
        # Same contract as the disk backend: a nested-tuple component would
        # serialize as an array and restore as an unequal list.
        check_identifier_components(identifier)
    payload = {
        "format": FORMAT_VERSION,
        "postings": [
            [keyword, [[list(p.document_id), p.term_frequency] for p in postings]]
            for keyword, postings in store.iter_items()
        ],
        "sizes": [
            [list(identifier), size] for identifier, size in store.fragment_sizes().items()
        ],
        "nodes": [
            [list(identifier), store.node_keyword_count(identifier)]
            for identifier in store.node_ids()
        ],
        "edges": [
            [list(identifier), list(neighbor)]
            for identifier in store.node_ids()
            for neighbor in store.neighbors(identifier)
        ],
        "epochs": {
            "epoch": epoch,
            "keywords": [[keyword, value] for keyword, value in keyword_epochs.items()],
            "fragments": [
                [list(identifier), value] for identifier, value in fragment_epochs.items()
            ],
        },
    }
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # Write-then-rename: readers (and crashes) only ever see a complete file.
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
    return path


def load_snapshot(
    path: str,
    store=None,
    shards: Optional[int] = None,
    store_path: Optional[str] = None,
):
    """Restore a snapshot into a fresh backend resolved from ``store``/``shards``.

    ``store`` accepts everything :func:`repro.store.resolve_store` does
    (``None``/``"memory"``/``"sharded"``/``"disk"``/instances/factories);
    ``store_path`` is where a ``store="disk"`` restore lands its sqlite
    file (a fresh temp file when omitted).  The target must be empty —
    restoring on top of existing fragments would corrupt sizes and document
    frequencies.  The restored clock matches the snapshotted one exactly.
    """
    from repro.store import FragmentStore, StoreError, resolve_store

    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != FORMAT_VERSION:
        raise StoreError(
            f"snapshot {path!r} has format {payload.get('format')!r}, "
            f"this build reads format {FORMAT_VERSION}"
        )
    created = not isinstance(store, FragmentStore)
    target = resolve_store(store, shards=shards, path=store_path)
    if target.fragment_count() or target.node_count():
        raise StoreError("snapshots must be restored into an empty store")

    try:
        # Replay in write order: sizes register every fragment (including
        # postings-free ones), postings rebuild the lists and re-accumulate
        # the sizes, then the graph section, then the exact clock state on
        # top of whatever the replay ticked.
        expected_sizes = {tuple(identifier): size for identifier, size in payload["sizes"]}
        for identifier in expected_sizes:
            target.touch_fragment(identifier)
        for keyword, postings in payload["postings"]:
            for identifier, occurrences in postings:
                target.add_posting(keyword, tuple(identifier), occurrences)
        target.finalize()
        # Sizes are re-accumulated by the postings replay; the stored values
        # double-check the size == sum(occurrences) invariant held when the
        # snapshot was written (a divergence means a corrupt or edited file).
        if target.fragment_sizes() != expected_sizes:
            raise StoreError(
                f"snapshot {path!r} is inconsistent: stored fragment sizes do not "
                "match the sizes its postings re-accumulate to"
            )
        for identifier, keyword_count in payload["nodes"]:
            target.add_node(tuple(identifier), keyword_count)
        for identifier, neighbor in payload["edges"]:
            target.add_neighbor(tuple(identifier), tuple(neighbor))
        epochs = payload["epochs"]
        target.load_epochs(
            epochs["epoch"],
            {keyword: value for keyword, value in epochs["keywords"]},
            {tuple(identifier): value for identifier, value in epochs["fragments"]},
        )
    except BaseException:
        # A failed restore must not strand a half-populated store: close a
        # backend we created ourselves and remove its partial database file,
        # so a retry at the same store_path starts clean.  A caller-supplied
        # instance is the caller's to clean up.
        if created:
            close = getattr(target, "close", None)
            if close is not None:
                close()
            target_path = getattr(target, "path", None)
            if target_path is not None and os.path.exists(target_path):
                os.unlink(target_path)
        raise
    return target
