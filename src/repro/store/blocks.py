"""Impact-ordered posting blocks (the block-max layout every backend serves).

PR 4 made early termination exact with one admissible bound per *seed*; this
module is the storage-side half of skipping at *block* granularity.  A
keyword's descending-TF inverted list is cut into fixed-size blocks of
:data:`BLOCK_SIZE` postings, and each block carries a tiny
:class:`BlockSummary` — its entry count, its maximum occurrence count and its
maximum *weight* (``occurrences / fragment size``, the per-fragment TF the
Dash score multiplies by the IDF).  From a query's summaries alone the scorer
derives an admissible per-block score bound (see
:meth:`repro.core.scoring.DashScorer.block_plan`), so the searcher can hold
whole undecoded blocks in its pending heap and only decode a block while its
bound could still win the next dequeue.

Two properties are load-bearing:

* **Determinism** — blocks are a pure function of the keyword's current
  sorted posting list and the current fragment sizes.  Every backend builds
  its summaries through :func:`build_summaries` over the same entries and the
  same integer sizes, so the floats (and therefore the skip/decode counts)
  are identical on the memory, sharded and disk backends.
* **Admissibility under staleness** — a summary's ``max_weight`` may only
  ever be *stale-high* (a fragment's size can grow through ``add_posting``
  without its other keywords' stored blocks being rebuilt until the next
  compaction; sizes never shrink in place).  A stale-high maximum loosens
  the derived bound but never under-caps a score, so exactness survives.

The module also holds the delta+varint codec :class:`~repro.store.DiskStore`
uses to store each block as a single BLOB (descending occurrence counts
delta-encoded, identifiers length-prefixed), replacing one row per posting
with one compact row per block.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Sequence, Tuple

from repro.core.fragments import FragmentId
from repro.text.inverted_index import Posting

#: Postings per block.  128 keeps a block's decode cost a few microseconds
#: while giving the per-block maxima enough resolution to skip the long tail
#: of an impact-ordered list (a 6000-posting hot list becomes ~47 summaries).
BLOCK_SIZE = 128


class BlockSummary(NamedTuple):
    """The metadata one block exposes without being decoded."""

    count: int
    max_occurrences: int
    max_weight: float


class KeywordBlocks:
    """One keyword's block directory plus a lazy per-block decoder.

    ``summaries[i]`` describes block ``i`` (blocks partition the sorted list
    in order: block ``i`` holds postings ``i*BLOCK_SIZE`` through
    ``(i+1)*BLOCK_SIZE - 1``).  ``decode(i)`` materializes block ``i``'s
    postings — a tuple slice for the in-memory backends, one BLOB read for
    the disk backend.  The handle pins whatever state its decoder needs, so
    a search decodes against the same list its summaries were derived from.
    """

    __slots__ = ("keyword", "summaries", "posting_count", "_decoder")

    def __init__(
        self,
        keyword: str,
        summaries: Tuple[BlockSummary, ...],
        decoder: Callable[[int], Tuple[Posting, ...]],
    ) -> None:
        self.keyword = keyword
        self.summaries = summaries
        self.posting_count = sum(summary.count for summary in summaries)
        self._decoder = decoder

    def decode(self, block_no: int) -> Tuple[Posting, ...]:
        return self._decoder(block_no)

    @property
    def max_weight(self) -> float:
        """The keyword-level weight ceiling (0.0 for an empty directory)."""
        best = 0.0
        for summary in self.summaries:
            if summary.max_weight > best:
                best = summary.max_weight
        return best


def block_weight(occurrences: int, size: int) -> float:
    """One posting's weight ``occurrences / size``, admissibly capped.

    A missing or inconsistent size (0) yields the maximum possible weight
    1.0 — a bound derived from it can only be loose, never under-cap.
    """
    return occurrences / size if size > 0 else 1.0


def build_summaries(
    postings: Sequence[Posting], size_of: Callable[[FragmentId], int]
) -> Tuple[BlockSummary, ...]:
    """Summaries over a descending-TF posting list, :data:`BLOCK_SIZE` apart.

    Deterministic: iteration order and float operations depend only on the
    entries and the sizes, so every backend derives bit-identical summaries
    from the same logical state.
    """
    summaries: List[BlockSummary] = []
    for start in range(0, len(postings), BLOCK_SIZE):
        chunk = postings[start : start + BLOCK_SIZE]
        max_weight = 0.0
        for posting in chunk:
            weight = block_weight(posting.term_frequency, size_of(posting.document_id))
            if weight > max_weight:
                max_weight = weight
        summaries.append(
            # The list is occurrence-descending, so the chunk head carries
            # the block's occurrence maximum.
            BlockSummary(len(chunk), chunk[0].term_frequency, max_weight)
        )
    return tuple(summaries)


def keyword_blocks_from_postings(
    keyword: str,
    postings: Tuple[Posting, ...],
    size_of: Callable[[FragmentId], int],
) -> KeywordBlocks:
    """A :class:`KeywordBlocks` handle over an already-gathered sorted list.

    The default path for backends that keep postings as tuples: summaries
    are built in one pass and ``decode`` is a slice of the pinned tuple, so
    a concurrent write can never desynchronize a search's directory from
    the entries it decodes.
    """
    summaries = build_summaries(postings, size_of)

    def decoder(block_no: int) -> Tuple[Posting, ...]:
        return postings[block_no * BLOCK_SIZE : (block_no + 1) * BLOCK_SIZE]

    return KeywordBlocks(keyword, summaries, decoder)


# ----------------------------------------------------------------------
# delta + varint BLOB codec (the DiskStore's on-disk block format)
# ----------------------------------------------------------------------
def encode_uvarint(value: int, out: bytearray) -> None:
    """Append ``value`` as a LEB128-style unsigned varint."""
    if value < 0:
        raise ValueError(f"varints encode non-negative integers, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_uvarint(data: bytes, position: int) -> Tuple[int, int]:
    """Decode one varint at ``position``; returns ``(value, next position)``."""
    result = 0
    shift = 0
    while True:
        try:
            byte = data[position]
        except IndexError:
            raise ValueError("truncated varint") from None
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7


def encode_block(
    entries: Sequence[Posting], encode_identifier: Callable[[FragmentId], str]
) -> bytes:
    """Serialize one block's postings as a delta+varint BLOB.

    Layout: ``varint(count)``, the occurrence counts as ``varint(first)``
    followed by ``varint(previous - current)`` deltas (non-negative because
    the list is occurrence-descending), then each identifier's canonical
    encoding as ``varint(length) + utf-8 bytes``.  Grouping the homogeneous
    occurrence integers up front keeps the deltas tiny (most are 0 inside an
    impact-ordered block).
    """
    out = bytearray()
    encode_uvarint(len(entries), out)
    previous = None
    for posting in entries:
        occurrences = posting.term_frequency
        if previous is None:
            encode_uvarint(occurrences, out)
        else:
            if occurrences > previous:
                raise ValueError(
                    "posting block entries must be occurrence-descending "
                    f"({occurrences} follows {previous})"
                )
            encode_uvarint(previous - occurrences, out)
        previous = occurrences
    for posting in entries:
        encoded = encode_identifier(posting.document_id).encode("utf-8")
        encode_uvarint(len(encoded), out)
        out += encoded
    return bytes(out)


def decode_block(
    blob: bytes, decode_identifier: Callable[[str], FragmentId]
) -> Tuple[Posting, ...]:
    """Deserialize one :func:`encode_block` BLOB back into postings."""
    count, position = decode_uvarint(blob, 0)
    occurrences: List[int] = []
    previous = 0
    for index in range(count):
        value, position = decode_uvarint(blob, position)
        previous = value if index == 0 else previous - value
        occurrences.append(previous)
    postings: List[Posting] = []
    for index in range(count):
        length, position = decode_uvarint(blob, position)
        encoded = blob[position : position + length]
        if len(encoded) != length:
            raise ValueError("truncated posting block identifier")
        position += length
        postings.append(Posting(decode_identifier(encoded.decode("utf-8")), occurrences[index]))
    if position != len(blob):
        raise ValueError(f"{len(blob) - position} trailing bytes after posting block")
    return tuple(postings)


def chunk_postings(postings: Sequence[Posting]) -> List[Sequence[Posting]]:
    """The sorted list cut into :data:`BLOCK_SIZE`-sized block slices."""
    return [postings[start : start + BLOCK_SIZE] for start in range(0, len(postings), BLOCK_SIZE)]
