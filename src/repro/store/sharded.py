"""The hash-partitioned backend.

Fragments are partitioned over N :class:`InMemoryStore` shards by a stable
hash of their identifier (the same process-independent hash the MapReduce
runtime uses for reduce-task partitioning, so a fragment always lands on the
same shard across runs and processes).  Every per-fragment operation —
posting inserts, size lookups, the atomic replace of incremental
maintenance, graph-node bookkeeping — routes to the single owning shard;
whole-index reads (keyword postings, document frequencies, fragment sizes)
fan out over the shards through a ``concurrent.futures`` thread pool and
merge deterministically, so any shard count returns exactly the results of
the single-shard store.

The fan-out only engages once the store holds ``parallel_threshold``
fragments; below that the thread-pool hand-off costs more than the lookups
it parallelises.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.core.fragments import FragmentId
from repro.mapreduce.job import default_partitioner
from repro.store.base import FragmentStore, StoreError
from repro.store.blocks import KeywordBlocks, keyword_blocks_from_postings
from repro.store.memory import InMemoryStore, posting_sort_key
from repro.text.inverted_index import Posting

T = TypeVar("T")

#: Fragment count below which fan-out runs serially.  Thread hand-off is not
#: worth it for small stores, and for pure in-memory shards the GIL caps the
#: gain of CPU-bound fan-out — the pool pays off for very large shards and
#: for backends whose reads block (disk, network).  Results are identical
#: either way; pass ``parallel_threshold=`` to tune.
DEFAULT_PARALLEL_THRESHOLD = 65536


class ShardedStore(FragmentStore):
    """N in-memory shards, hash-partitioned by fragment identifier."""

    def __init__(
        self,
        shards: int = 4,
        parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
        max_workers: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise StoreError(f"shard count must be at least 1, got {shards}")
        # One clock, shared with every shard: the shards' own mutators tick
        # it with their tick-after-write ordering, and no wrapper bookkeeping
        # can drift from what the shards actually mutate.
        super().__init__()
        self._shards: List[InMemoryStore] = [
            InMemoryStore(clock=self._epoch_clock) for _ in range(shards)
        ]
        self._parallel_threshold = parallel_threshold
        self._max_workers = max_workers or min(shards, os.cpu_count() or 2)
        # One long-lived read pool for the store's whole life, built up front
        # (ThreadPoolExecutor spawns its worker threads lazily, so an eager
        # pool costs nothing until the first fan-out) and shut down by
        # close().  Constructing a pool per fan-out — or racing lazily for a
        # shared one — is exactly the dispatch churn that made small sharded
        # stores slower than the single-partition backend.
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=self._max_workers, thread_name_prefix="fragment-store")
            if shards > 1
            else None
        )
        # Merged keyword -> (epoch stamp, sorted postings); entries revalidate
        # against the keyword's mutation epoch on every hit.
        self._merged_postings: Dict[str, Tuple[int, Tuple[Posting, ...]]] = {}
        # Merged keyword -> (epoch stamp, block directory).  Unlike the
        # merged lists these revalidate against the *store-wide* epoch:
        # block maxima depend on member fragment sizes, which another
        # keyword's add_posting can change without this keyword's epoch
        # moving.
        self._merged_blocks: Dict[str, Tuple[int, KeywordBlocks]] = {}
        # Identifier -> owning shard.  The stable hash walks the identifier's
        # text in pure Python, so memoising the route matters on hot paths;
        # routes never change for a fixed shard count.
        self._routes: Dict[FragmentId, int] = {}

    # ------------------------------------------------------------------
    # partitioning
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_of(self, identifier: FragmentId) -> int:
        route = self._routes.get(identifier)
        if route is None:
            route = default_partitioner(identifier, len(self._shards))
            self._routes[identifier] = route
        return route

    def shard(self, index: int) -> InMemoryStore:
        """Direct access to one shard (benchmarks and diagnostics)."""
        return self._shards[index]

    def _owner(self, identifier: FragmentId) -> InMemoryStore:
        return self._shards[self.shard_of(identifier)]

    def run_parallel(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        # Single-task batches — a read whose relevant fragments all live on
        # one shard — bypass the pool entirely: thread hand-off would be pure
        # overhead for work with no concurrency to exploit.
        executor = self._executor
        if len(tasks) <= 1 or executor is None or not self._fan_out():
            return [task() for task in tasks]
        try:
            return list(executor.map(lambda task: task(), tasks))
        except RuntimeError:
            # Only a close() race gets the serial fallback: the pool was
            # captured above but shut down before (or while) the batch was
            # submitted.  Shard reads are idempotent, so re-running the
            # batch inline is safe even if some tasks already ran on the
            # pool.  A RuntimeError raised by a task itself (pool still
            # installed) must propagate, not silently retry.
            if self._executor is None:
                return [task() for task in tasks]
            raise

    def close(self) -> None:
        """Shut the read pool down.  Reads keep working, serially."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def map_shards(self, fn: Callable[[InMemoryStore], T]) -> List[T]:
        """Apply ``fn`` to every shard (fanning out), preserving shard order."""
        return self.run_parallel([lambda shard=shard: fn(shard) for shard in self._shards])

    def _fan_out(self) -> bool:
        return len(self._shards) > 1 and self.fragment_count() >= self._parallel_threshold

    # ------------------------------------------------------------------
    # postings section — writes (routed to the owning shard)
    # ------------------------------------------------------------------
    def touch_fragment(self, identifier: FragmentId) -> None:
        self._owner(identifier).touch_fragment(identifier)

    def add_posting(self, keyword: str, identifier: FragmentId, occurrences: int) -> None:
        # Writes evict only the merged lists they touch; the epoch stamp on
        # each cached entry remains the correctness backstop (postings()
        # refuses any entry whose keyword epoch passed its stamp).
        self._merged_postings.pop(keyword, None)
        self._owner(identifier).add_posting(keyword, identifier, occurrences)

    def remove_fragment(self, identifier: FragmentId) -> None:
        owner = self._owner(identifier)
        for keyword in owner.fragment_keywords(identifier):
            self._merged_postings.pop(keyword, None)
        owner.remove_fragment(identifier)

    def replace_fragment(self, identifier: FragmentId, term_frequencies) -> None:
        # One fragment's postings all live on its owning shard, so the swap is
        # a single-shard operation regardless of the shard count.  The shard's
        # internal remove/add calls tick the shared clock (after each write)
        # but do not pass through this wrapper, so the merged lists of both
        # the outgoing and the incoming keyword sets are evicted here.
        owner = self._owner(identifier)
        for keyword in owner.fragment_keywords(identifier):
            self._merged_postings.pop(keyword, None)
        items = (
            list(term_frequencies.items())
            if hasattr(term_frequencies, "items")
            else list(term_frequencies)
        )
        for keyword, _occurrences in items:
            self._merged_postings.pop(keyword, None)
        owner.replace_fragment(identifier, items)

    def apply_mutations(self, batch) -> int:
        """Apply one batch with a per-shard grouped fan-out.

        Ops are grouped by the owning shard (a fragment's postings never
        straddle shards, so every group is independent), each group is
        applied by its shard's single-pass
        :meth:`~repro.store.InMemoryStore.apply_mutation_ops`, and the
        shared clock ticks **once** for the union of everything the groups
        touched — one epoch per batch no matter how many shards it spanned.
        Groups fan out over the read executor when the store is large enough
        to fan reads out; shard-level locking makes the groups safe to run
        concurrently because the deferred tick keeps the shared clock out of
        the parallel section.
        """
        from repro.store.mutations import normalize_mutations

        ops = normalize_mutations(batch)
        if not ops:
            return 0
        by_shard: Dict[int, List] = {}
        for op in ops:
            by_shard.setdefault(self.shard_of(op.identifier), []).append(op)
        parts = self.run_parallel(
            [
                lambda shard=self._shards[index], group=group: shard.apply_mutation_ops(group)
                for index, group in by_shard.items()
            ]
        )
        affected_keywords: set = set()
        affected_fragments: set = set()
        for _count, keywords, fragments in parts:
            affected_keywords |= keywords
            affected_fragments |= fragments
        for keyword in affected_keywords:
            self._merged_postings.pop(keyword, None)
        if affected_keywords or affected_fragments:
            self._epoch_clock.tick_batch(affected_keywords, affected_fragments)
        return len(ops)

    def finalize(self) -> None:
        self.map_shards(lambda shard: shard.finalize())

    # ------------------------------------------------------------------
    # postings section — reads (fan-out + deterministic merge)
    # ------------------------------------------------------------------
    def postings(self, keyword: str) -> Tuple[Posting, ...]:
        cached = self._merged_postings.get(keyword)
        if cached is not None:
            stamp, result = cached
            # Revalidate against the keyword's mutation epoch: an entry a
            # racing reader merged from pre-write shard state carries a stamp
            # older than the write's tick, so it can never outlive the write.
            if self.keyword_epoch(keyword) <= stamp:
                return result
            self._merged_postings.pop(keyword, None)
        stamp = self.epoch
        parts = self.map_shards(lambda shard: shard.raw_postings(keyword))
        merged: List[Posting] = []
        for part in parts:
            merged.extend(part)
        merged.sort(key=posting_sort_key)
        result = tuple(merged)
        if result:
            # Never cache misses: arbitrary unknown keywords (typos, hostile
            # input) would grow the cache without bound on a read-only store.
            self._merged_postings[keyword] = (stamp, result)
        return result

    def postings_for_many(self, keywords) -> Dict[str, Tuple[Posting, ...]]:
        """All requested inverted lists with a single shard fan-out.

        Fresh merged lists for every cache-missing keyword come out of one
        ``map_shards`` round-trip (each shard task gathers its raw lists for
        the whole batch), instead of one fan-out per keyword; cache hits are
        revalidated against their keyword epochs exactly like
        :meth:`postings`.
        """
        results: Dict[str, Tuple[Posting, ...]] = {}
        missing: List[str] = []
        for keyword in dict.fromkeys(keywords):
            cached = self._merged_postings.get(keyword)
            if cached is not None and self.keyword_epoch(keyword) <= cached[0]:
                results[keyword] = cached[1]
                continue
            if cached is not None:
                self._merged_postings.pop(keyword, None)
            missing.append(keyword)
        if missing:
            stamp = self.epoch
            parts = self.map_shards(
                lambda shard: {keyword: shard.raw_postings(keyword) for keyword in missing}
            )
            for keyword in missing:
                merged: List[Posting] = []
                for part in parts:
                    merged.extend(part[keyword])
                merged.sort(key=posting_sort_key)
                result = tuple(merged)
                if result:
                    # Same no-miss-caching rule as postings().
                    self._merged_postings[keyword] = (stamp, result)
                results[keyword] = result
        return results

    def posting_blocks_for_many(self, keywords) -> Dict[str, KeywordBlocks]:
        """Block directories over the merged lists, store-epoch cached.

        Misses cost one merged-postings gather plus one batched size fan-out
        for every member fragment; hits are dictionary lookups.  Directories
        are pure functions of the merged sorted list and the current sizes,
        so any shard count produces the single-shard summaries bit for bit.
        """
        directories: Dict[str, KeywordBlocks] = {}
        missing: List[str] = []
        epoch = self.epoch
        for keyword in dict.fromkeys(keywords):
            cached = self._merged_blocks.get(keyword)
            if cached is not None and epoch <= cached[0]:
                directories[keyword] = cached[1]
            else:
                if cached is not None:
                    self._merged_blocks.pop(keyword, None)
                missing.append(keyword)
        if missing:
            stamp = self.epoch
            gathered = self.postings_for_many(missing)
            members = {
                posting.document_id
                for keyword in missing
                for posting in gathered[keyword]
            }
            sizes = self.fragment_sizes_for(tuple(members)) if members else {}
            for keyword in missing:
                blocks = keyword_blocks_from_postings(
                    keyword, gathered[keyword], lambda identifier: sizes.get(identifier, 0)
                )
                if gathered[keyword]:
                    # Same no-miss-caching rule as the merged lists.
                    self._merged_blocks[keyword] = (stamp, blocks)
                directories[keyword] = blocks
        return directories

    def fragment_frequency(self, keyword: str) -> int:
        return sum(self.map_shards(lambda shard: shard.fragment_frequency(keyword)))

    def document_frequencies(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for frequencies in self.map_shards(lambda shard: shard.document_frequencies()):
            for keyword, frequency in frequencies.items():
                merged[keyword] = merged.get(keyword, 0) + frequency
        return merged

    def term_frequency(self, keyword: str, identifier: FragmentId) -> int:
        return self._owner(identifier).term_frequency(keyword, identifier)

    def fragment_term_frequencies(self, identifier: FragmentId) -> Dict[str, int]:
        return self._owner(identifier).fragment_term_frequencies(identifier)

    def fragment_term_frequencies_for(self, identifiers) -> Dict[FragmentId, Dict[str, int]]:
        by_shard: Dict[int, List[FragmentId]] = {}
        for identifier in dict.fromkeys(identifiers):
            by_shard.setdefault(self.shard_of(identifier), []).append(identifier)
        parts = self.run_parallel(
            [
                lambda shard=self._shards[index], wanted=wanted: shard.fragment_term_frequencies_for(
                    wanted
                )
                for index, wanted in by_shard.items()
            ]
        )
        merged: Dict[FragmentId, Dict[str, int]] = {}
        for part in parts:
            merged.update(part)
        return merged

    def fragment_size(self, identifier: FragmentId) -> int:
        return self._owner(identifier).fragment_size(identifier)

    def fragment_sizes(self) -> Dict[FragmentId, int]:
        merged: Dict[FragmentId, int] = {}
        for sizes in self.map_shards(lambda shard: shard.fragment_sizes()):
            merged.update(sizes)
        return merged

    def fragment_sizes_for(self, identifiers) -> Dict[FragmentId, int]:
        by_shard: Dict[int, List[FragmentId]] = {}
        for identifier in identifiers:
            by_shard.setdefault(self.shard_of(identifier), []).append(identifier)
        parts = self.run_parallel(
            [
                lambda shard=self._shards[index], wanted=wanted: {
                    identifier: shard.fragment_size(identifier) for identifier in wanted
                }
                for index, wanted in by_shard.items()
            ]
        )
        merged: Dict[FragmentId, int] = {}
        for part in parts:
            merged.update(part)
        return merged

    def fragment_ids(self) -> Tuple[FragmentId, ...]:
        identifiers: List[FragmentId] = []
        for shard_ids in self.map_shards(lambda shard: shard.fragment_ids()):
            identifiers.extend(shard_ids)
        return tuple(identifiers)

    def has_fragment(self, identifier: FragmentId) -> bool:
        return self._owner(identifier).has_fragment(identifier)

    def fragment_count(self) -> int:
        return sum(shard.fragment_count() for shard in self._shards)

    def vocabulary(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for vocabulary in self.map_shards(lambda shard: shard.vocabulary()):
            for keyword in vocabulary:
                seen.setdefault(keyword, None)
        return tuple(seen)

    def vocabulary_size(self) -> int:
        return len(self.vocabulary())

    def iter_items(self) -> Iterator[Tuple[str, Tuple[Posting, ...]]]:
        for keyword in sorted(self.vocabulary()):
            yield keyword, self.postings(keyword)

    # ------------------------------------------------------------------
    # graph section (nodes and each node's neighbour set live on its shard)
    # ------------------------------------------------------------------
    def add_node(self, identifier: FragmentId, keyword_count: int) -> None:
        self._owner(identifier).add_node(identifier, keyword_count)

    def remove_node(self, identifier: FragmentId) -> None:
        self._owner(identifier).remove_node(identifier)

    def has_node(self, identifier: FragmentId) -> bool:
        return self._owner(identifier).has_node(identifier)

    def node_keyword_count(self, identifier: FragmentId) -> int:
        return self._owner(identifier).node_keyword_count(identifier)

    def set_node_keyword_count(self, identifier: FragmentId, keyword_count: int) -> None:
        self._owner(identifier).set_node_keyword_count(identifier, keyword_count)

    def node_ids(self) -> Tuple[FragmentId, ...]:
        identifiers: List[FragmentId] = []
        for shard_ids in self.map_shards(lambda shard: shard.node_ids()):
            identifiers.extend(shard_ids)
        return tuple(identifiers)

    def node_count(self) -> int:
        return sum(shard.node_count() for shard in self._shards)

    def add_neighbor(self, identifier: FragmentId, neighbor: FragmentId) -> None:
        self._owner(identifier).add_neighbor(identifier, neighbor)

    def discard_neighbor(self, identifier: FragmentId, neighbor: FragmentId) -> None:
        self._owner(identifier).discard_neighbor(identifier, neighbor)

    def neighbors(self, identifier: FragmentId) -> Tuple[FragmentId, ...]:
        return self._owner(identifier).neighbors(identifier)

    def edge_count(self) -> int:
        # Cross-shard edges contribute one directed entry to each endpoint's
        # shard, so the undirected count is the directed total halved.
        return sum(self.map_shards(lambda shard: shard.half_edge_count())) // 2
