"""Pluggable fragment storage (the serving-side scale-out layer).

* :mod:`repro.store.base` — the :class:`FragmentStore` interface every
  serving structure programs against.
* :mod:`repro.store.memory` — :class:`InMemoryStore`, the single-partition
  backend (the seed implementation's dictionaries, extracted).
* :mod:`repro.store.sharded` — :class:`ShardedStore`, hash-partitioned over
  N in-memory shards with a ``concurrent.futures`` read fan-out.
* :mod:`repro.store.disk` — :class:`DiskStore`, the persistent sqlite3
  backend: the crawl, the graph and the epoch clock survive process exit,
  and ``replace_fragment`` swaps are crash-safe single transactions.
* :mod:`repro.store.snapshot` — backend-independent snapshot files
  (:meth:`FragmentStore.snapshot` / :meth:`FragmentStore.from_snapshot`).
* :mod:`repro.store.epochs` — the :class:`EpochClock` every backend ticks,
  which the serving layer's caches revalidate against.
* :mod:`repro.store.mutations` — the batched write-path ops
  (:class:`ReplaceFragment` / :class:`RemoveFragment` /
  :class:`TouchFragment`) that :meth:`FragmentStore.apply_mutations`
  applies as one store operation.

:func:`resolve_store` turns the ``store=`` configuration accepted by
:class:`~repro.core.engine.DashEngine` (a name, a shard count, an instance or
a factory) into a concrete backend.
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable, Optional, Union

from repro.store.base import FragmentStore, StoreError
from repro.store.disk import DiskStore
from repro.store.epochs import EpochClock
from repro.store.memory import InMemoryStore
from repro.store.mutations import (
    Mutation,
    RemoveFragment,
    ReplaceFragment,
    TouchFragment,
    coalesce_mutations,
    replace_op,
)
from repro.store.sharded import ShardedStore

#: What ``DashEngine.build(store=...)`` accepts.
StoreSpec = Union[None, str, int, FragmentStore, Callable[[], FragmentStore]]

_DEFAULT_SHARDS = 4


def resolve_store(
    spec: StoreSpec = None,
    shards: Optional[int] = None,
    path: Optional[str] = None,
) -> FragmentStore:
    """Resolve a store configuration into a :class:`FragmentStore` backend.

    * ``None`` — a fresh :class:`InMemoryStore`, or a :class:`ShardedStore`
      when ``shards`` of 2+ is given;
    * ``"memory"`` — a fresh :class:`InMemoryStore` (combining it with
      ``shards`` of 2+ is a conflicting spec and raises);
    * ``"sharded"`` — a :class:`ShardedStore` with ``shards`` partitions
      (default 4);
    * ``"disk"`` — a persistent :class:`DiskStore` at ``path``; without a
      ``path`` the database lands in a fresh temporary file (its location is
      the store's ``.path``).  Combining it with ``shards`` of 2+ raises;
    * an ``int`` — a :class:`ShardedStore` with that many partitions (a
      different ``shards=`` alongside it is a conflicting spec and raises);
    * a :class:`FragmentStore` instance — used as-is;
    * a zero-argument callable — called to produce the backend.

    ``path`` is only meaningful for ``"disk"``; passing it with any other
    spec is a conflicting spec and raises.
    """
    if shards is not None and shards < 1:
        raise StoreError(f"shard count must be at least 1, got {shards}")
    if path is not None and spec != "disk":
        raise StoreError(
            f"conflicting store spec: path={path!r} is only valid with store='disk', "
            f"got store={spec!r}"
        )
    if isinstance(spec, FragmentStore):
        return _checked_shards(spec, shards)
    if callable(spec):
        store = spec()
        if not isinstance(store, FragmentStore):
            raise StoreError(f"store factory returned {type(store).__name__}, not a FragmentStore")
        return _checked_shards(store, shards)
    if isinstance(spec, bool):
        raise StoreError(f"invalid store spec {spec!r}")
    if isinstance(spec, int):
        if shards is not None and shards != spec:
            raise StoreError(f"conflicting store spec: store={spec} with shards={shards}")
        return ShardedStore(shards=spec)
    if spec is None:
        if shards is not None and shards > 1:
            return ShardedStore(shards=shards)
        return InMemoryStore()
    if spec == "memory":
        if shards is not None and shards > 1:
            raise StoreError(
                f"conflicting store spec: store='memory' with shards={shards}; "
                "use store='sharded' (or drop store=) to partition"
            )
        return InMemoryStore()
    if spec == "sharded":
        return ShardedStore(shards=_DEFAULT_SHARDS if shards is None else shards)
    if spec == "disk":
        if shards is not None and shards > 1:
            raise StoreError(
                f"conflicting store spec: store='disk' with shards={shards}; "
                "the disk backend is single-partition"
            )
        if path is None:
            descriptor, path = tempfile.mkstemp(prefix="repro-diskstore-", suffix=".sqlite")
            os.close(descriptor)
        return DiskStore(path)
    raise StoreError(
        f"unknown store spec {spec!r}; expected 'memory', 'sharded', 'disk', a shard "
        "count, a FragmentStore or a factory"
    )


def _checked_shards(store: FragmentStore, shards: Optional[int]) -> FragmentStore:
    if shards is not None and shards != store.shard_count:
        raise StoreError(
            f"conflicting store spec: a {type(store).__name__} with "
            f"{store.shard_count} shard(s) was given alongside shards={shards}"
        )
    return store


__all__ = [
    "DiskStore",
    "EpochClock",
    "FragmentStore",
    "InMemoryStore",
    "Mutation",
    "RemoveFragment",
    "ReplaceFragment",
    "ShardedStore",
    "StoreError",
    "StoreSpec",
    "TouchFragment",
    "coalesce_mutations",
    "replace_op",
    "resolve_store",
]
