"""Consistent-hash partitioning for the search cluster.

Two placement decisions are kept deliberately separate:

* **fragment → partition** (:class:`GroupPartitioner`) — a *data* decision
  that must never change while data lives in the cluster, because moving one
  fragment would split the db-page chains Algorithm 1 assembles.  Fragments
  hash by their *equality group*: the components bound by the PSJ query's
  equality conditions.  Graph edges only ever connect fragments of one
  equality group (adjacent range-condition values within the group), so a
  whole chain — and therefore every db-page any search can assemble — lives
  inside a single partition, which is what lets a partition answer searches
  entirely locally.  A query with no range condition builds no edges at all,
  so each fragment is its own group and hashes by its full identifier.
* **partition → nodes** (:class:`HashRing`) — an *operational* decision that
  may change at runtime: the consistent-hash ring assigns each partition a
  primary node and, clockwise, distinct replica nodes, and rebalancing moves
  a partition's store between nodes (see
  :meth:`repro.cluster.SearchCluster.rebalance`) without touching the
  fragment → partition mapping.

Both hash with :func:`placement_hash` — the MapReduce layer's
process-stable FNV-1a run through a splitmix64 finalizer — so placement is
identical across runs and processes and spreads evenly around the ring.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Set, Tuple

from repro.core.fragment_graph import _condition_positions
from repro.core.fragments import FragmentId
from repro.db.query import ParameterizedPSJQuery
from repro.mapreduce.job import _stable_hash


def _spread(value: int) -> int:
    """splitmix64 finalizer over the FNV hash.

    FNV-1a's tuple fold is stable and collision-resistant but its *high*
    bits barely avalanche — keys differing only in their last element land
    adjacent when sorted by hash, which would cluster the ring.  The
    finalizer is a fixed bijection on 64-bit values, so it costs nothing in
    collision behaviour and keeps placement process-stable.
    """
    value &= 0xFFFFFFFFFFFFFFFF
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 31
    return value


def placement_hash(key: object) -> int:
    """The cluster's process-stable placement hash (FNV-1a + splitmix64)."""
    return _spread(_stable_hash(key))


class GroupPartitioner:
    """Maps fragments to partitions without ever splitting a db-page chain."""

    def __init__(self, query: ParameterizedPSJQuery, partitions: int) -> None:
        if partitions < 1:
            raise ValueError(f"partition count must be at least 1, got {partitions}")
        self.partitions = partitions
        self._equality_positions, self._range_positions = _condition_positions(query)

    def group_key(self, identifier: FragmentId) -> Tuple:
        """The equality-group key that decides ``identifier``'s partition.

        With a range condition in the query, fragments sharing this key can
        be graph-adjacent and must co-locate; without one, no fragment is
        adjacent to any other and the full identifier spreads the corpus
        evenly.
        """
        identifier = tuple(identifier)
        if not self._range_positions:
            return identifier
        return tuple(identifier[position] for position in self._equality_positions)

    def partition_of(self, identifier: FragmentId) -> int:
        """The partition owning ``identifier`` (stable across processes)."""
        return placement_hash(self.group_key(identifier)) % self.partitions


class HashRing:
    """A consistent-hash ring assigning partitions to nodes.

    Each node contributes ``points_per_node`` virtual points; a key's owners
    are the first distinct nodes clockwise from the key's ring position.
    Virtual points smooth the assignment, and consistency means adding or
    removing one node only reassigns the partitions whose nearest points
    belonged to it — the property that keeps rebalancing incremental.
    """

    def __init__(self, node_ids: Sequence[str], points_per_node: int = 64) -> None:
        if not node_ids:
            raise ValueError("a hash ring needs at least one node")
        if len(set(node_ids)) != len(node_ids):
            raise ValueError(f"duplicate node ids in {node_ids!r}")
        self.node_ids: Tuple[str, ...] = tuple(node_ids)
        self._points: List[Tuple[int, str]] = sorted(
            (placement_hash((node_id, point)), node_id)
            for node_id in self.node_ids
            for point in range(points_per_node)
        )

    def nodes_for(self, key: object, count: int = 1) -> Tuple[str, ...]:
        """The first ``count`` distinct nodes clockwise from ``key``.

        The first entry is the key's primary; the rest are its replica
        nodes.  ``count`` is clamped to the number of nodes on the ring.
        """
        wanted = max(1, min(count, len(self.node_ids)))
        start = bisect.bisect_right(self._points, (placement_hash(key),))
        chosen: List[str] = []
        seen: Set[str] = set()
        total = len(self._points)
        for offset in range(total):
            _point, node_id = self._points[(start + offset) % total]
            if node_id not in seen:
                seen.add(node_id)
                chosen.append(node_id)
                if len(chosen) == wanted:
                    break
        return tuple(chosen)
