"""Scatter-gather top-k over the partitioned cluster, byte-identical.

The :class:`QueryRouter` answers one query in at most two fan-out rounds
and one merge:

1. **global document frequencies** — served from the router's
   epoch-validated :class:`~repro.cluster.stats.TermStatsCache` when every
   query keyword's entry is fresh (steady state: the whole round is
   skipped, half the fan-out submits).  On a miss, each selected partition
   copy reports its exact per-keyword DF *and* its directory-wide weight
   ceiling (both read from the same cached block directories); the DF sum
   is the merged corpus's DF, so ``1/df`` — the IDF every node then scores
   with via :class:`~repro.core.scoring.DashScorer`'s ``idf_overrides`` —
   is the bit-identical float a single store would compute, and the
   ``(frequency, ceilings)`` rows are written back to the cache stamped
   with the query's facade epoch.
2. **bound-ordered partial streams** — an admissible per-partition score
   bound falls out of the ceilings
   (:func:`~repro.cluster.stats.partition_bounds`); partitions whose bound
   is 0 provably hold no relevant fragment and are *never contacted*
   (``partitions_pruned`` — with a warm cache such a partition plays no
   part in the query at all, which is what lets a query survive a dead
   partition it does not consult).  Every remaining partition opens a
   :class:`~repro.core.search.SearchStream` in parallel — building the
   scorer, **not** materializing the first frontier.
3. **precedence merge** — every stream lives in the merge heap under an
   *admissible bound key*, never a peek-finalized head: initially the
   ceiling-derived ``(-bound, (0,))`` sentinel, afterwards
   :meth:`~repro.core.search.SearchStream.bound_key` (``min`` of the
   materialized head and the best undecoded block's sentinel), both of
   which sort at-or-before every real entry the partition could still
   enqueue (the sentinel tie is the pending-block heap's, see
   :data:`repro.core.search.QueueEntry`).  A stream only decodes blocks
   when its bound actually reaches the top of the heap — i.e. could win
   the next global dequeue — and then only blocks keying within the
   runner-up's limit; streams whose bound never surfaces before the
   ``k``-th emission never decode a block or score a seed at all.  The
   router repeatedly advances the top stream — in *batches*
   (:meth:`~repro.core.search.SearchStream.next_results`) bounded by the
   runner-up's key, with ``heapq`` sift operations instead of re-sorting,
   and without the trailing head-peek once the global ``k``-th result is
   taken.  Queue keys are content-determined and every db-page chain lives
   inside one partition, so this greedy interleave replays the *exact
   global dequeue sequence* of a single merged store — result emission is
   not score-monotone (expansions can raise pending pages above emitted
   results), which is why merging per-node top-k lists by score alone
   would not be byte-identical, and replaying the dequeue order is.
   Streams with undrained work when the merge stops are counted in
   ``nodes_short_circuited``, their materialized-but-unranked candidates
   in ``partials_discarded``.

:class:`SearchCluster` owns the topology: consistent-hash partition
assignment (:class:`~repro.cluster.HashRing`), replica placement with
round-robin reads for hot partitions, snapshot-based replica catch-up
(:meth:`SearchCluster.sync_replicas`) and live rebalancing
(:meth:`SearchCluster.rebalance`).  :class:`ClusterSearchService` is the
serving entry point: a stock :class:`~repro.serving.SearchService` whose
"searcher" is the router and whose "store" is the
:class:`~repro.cluster.ClusterStore` facade — admission, result caching
and epoch invalidation run unchanged.

**Fault tolerance.**  The healthy path above assumes every selected copy
answers; the fault-tolerant path makes each per-partition read a *failover
loop* instead.  The cluster keeps one
:class:`~repro.cluster.health.NodeHealth` circuit breaker per node, fed by
the router's observed read outcomes; candidate selection
(:meth:`SearchCluster.serving_candidates`) skips open-circuit nodes and
stale replicas, and a query whose read fails (or times out against its
per-query deadline budget) retries on the next fresh copy.  A dead primary
is demoted in place (:meth:`SearchCluster.ensure_live_primary` promotes a
fresh available replica through the same assignment flip ``rebalance()``
uses), so writes and freshness checks keep a live anchor.  Because a fresh
replica is byte-identical to its primary — and a replacement stream can be
deterministically fast-forwarded past the results the merge already took —
failover preserves the byte-parity guarantee whenever any fresh copy of
every partition survives.  When none does, the router raises a typed
:class:`~repro.serving.errors.PartialResultError`, or — under
``degraded_ok=True`` — answers from the surviving partitions with
``complete=False`` and the lost partitions named in
:class:`~repro.core.search.SearchStatistics.missing_partitions` (such
results are never cached).  With zero faults firing the whole machinery
reduces to the PR 7 fan-out plus a candidate-list build per partition.
"""

from __future__ import annotations

import heapq
import itertools
import os
import shutil
import tempfile
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.fragments import FragmentId
from repro.core.search import (
    LIFETIME_FIELDS,
    DetailedSearch,
    SearchResult,
    SearchStatistics,
    SearchStream,
)
from repro.cluster.health import NodeHealth
from repro.cluster.node import HostedPartition, SearchNode
from repro.cluster.partitioning import GroupPartitioner, HashRing
from repro.cluster.stats import TermStatsCache, partition_bounds
from repro.cluster.store import ClusterStore, populate_from_store
from repro.db.query import ParameterizedPSJQuery
from repro.faults.plane import FaultPlane
from repro.serving.errors import PartialResultError, PartitionUnavailableError
from repro.serving.service import SearchService
from repro.store.base import FragmentStore
from repro.store.disk import DiskStore
from repro.store.memory import InMemoryStore
from repro.store.snapshot import load_snapshot
from repro.webapp.request import QueryStringSpec

#: What ``node_store=`` accepts: a backend name (``"memory"``/``"disk"``) or
#: a ``(node_id, partition) -> FragmentStore`` factory returning an *empty*
#: backend (benchmarks use factories to wrap stores with simulated per-node
#: latency).
NodeStoreSpec = Union[str, Callable[[str, int], FragmentStore]]

#: Counters summed across partition streams into the routed query's
#: statistics (elapsed/results/fan-out counters are router-level).
_STREAM_SUM_FIELDS = (
    "seed_fragments",
    "seeds_scored",
    "expansions",
    "dequeues",
    "pruned_dequeues",
    "pruned_expansions",
    "blocks_skipped",
    "blocks_decoded",
    "postings_decoded",
)


class _RouterIndex:
    """The ``searcher.index`` shim a SearchService expects: just ``.store``."""

    def __init__(self, store: ClusterStore) -> None:
        self.store = store


class RouterSession:
    """The router's stand-in for a :class:`~repro.core.search.SearchSession`.

    Partition streams always build fresh scorers (a cached scorer's global
    IDF could go stale through a *remote* partition's mutation without the
    local epoch moving), so there is nothing to cache here — the session
    exists so ``SearchService.statistics()["session"]`` keeps its shape.
    """

    def __init__(self, router: "QueryRouter") -> None:
        self._router = router

    def statistics(self) -> Dict[str, int]:
        """Shape-compatible session counters (no scorer reuse by design)."""
        lifetime = self._router.lifetime_statistics()
        return {
            "epoch": self._router.index.store.epoch,
            "cached_scorers": 0,
            "cached_neighbor_lists": 0,
            "scorer_reuses": 0,
            # One scorer per opened partition stream; pruned partitions
            # never build one (replacement streams after a failover are
            # not counted — rare enough to keep this a derivation).
            "scorer_builds": int(
                lifetime["searches"] * self._router.partition_count
                - lifetime["partitions_pruned"]
            ),
        }


class QueryRouter:
    """Scatter-gather searcher over one :class:`SearchCluster`.

    Duck-types the :class:`~repro.core.search.TopKSearcher` surface a
    :class:`~repro.serving.SearchService` drives — ``search_detailed``,
    ``session()``, ``lifetime_statistics()`` and ``index.store`` — so the
    whole serving layer stacks on a cluster unchanged.
    """

    def __init__(
        self,
        cluster: "SearchCluster",
        workers: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        degraded_ok: bool = False,
    ) -> None:
        self._cluster = cluster
        self.index = _RouterIndex(cluster.store)
        self.partition_count = cluster.store.partition_count
        #: Per-query failover budget in seconds (``None`` = no deadline).
        #: The budget bounds time spent *tolerating faults*: fan-out reads
        #: are preempted against it, replica retries stop at it — but a
        #: healthy merge is never aborted by it, so zero-fault results are
        #: identical with or without a deadline.
        self.deadline_seconds = deadline_seconds
        #: Whether queries that lose every copy of a partition return
        #: flagged partial results (``True``) or raise
        #: :class:`~repro.serving.errors.PartialResultError` (``False``).
        self.degraded_ok = degraded_ok
        if workers is None:
            workers = min(16, max(4, 2 * self.partition_count))
        # A pool exists whenever fan-out parallelism or deadline preemption
        # can be needed; a single-partition, fault-free router stays inline.
        need_pool = (
            self.partition_count > 1
            or deadline_seconds is not None
            or cluster.fault_plane is not None
        )
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=workers, thread_name_prefix="cluster-router")
            if need_pool
            else None
        )
        self.last_statistics = SearchStatistics()
        self._lifetime_lock = threading.Lock()
        self._lifetime: Dict[str, int] = {"searches": 0, "fanout_submits": 0}
        self._lifetime.update({field_name: 0 for field_name in LIFETIME_FIELDS})
        #: Epoch-validated global term statistics (DFs + per-partition
        #: weight ceilings); write-through invalidation rides the facade's
        #: mutation listeners on top of the epoch revalidation.
        self.term_stats = TermStatsCache(cluster.store)
        cluster.store.add_mutation_listener(self._on_mutations)

    # ------------------------------------------------------------------
    def session(self) -> RouterSession:
        """The router's session shim (see :class:`RouterSession`)."""
        return RouterSession(self)

    def lifetime_statistics(self) -> Dict[str, float]:
        """Running totals over every routed search (includes fan-out counters).

        ``fanout_submits`` counts per-partition read attempts dispatched by
        the fan-out rounds (a warm term-stats cache halves it — the DF
        round is skipped); the derived ``discard_ratio`` is
        ``partials_discarded / partials_merged`` (0.0 when nothing merged).
        """
        with self._lifetime_lock:
            snapshot: Dict[str, float] = dict(self._lifetime)
        merged = snapshot.get("partials_merged", 0)
        snapshot["discard_ratio"] = (
            snapshot.get("partials_discarded", 0) / merged if merged else 0.0
        )
        return snapshot

    def _on_mutations(self, affected_keywords: Iterable[str]) -> None:
        """Facade mutation listener: write-through term-stats invalidation."""
        self.term_stats.invalidate_keywords(affected_keywords)

    def close(self) -> None:
        """Shut the fan-out pool down (idempotent)."""
        self.index.store.remove_mutation_listener(self._on_mutations)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _submit(self, task: Callable, *args) -> "Future":
        """Run ``task`` on the fan-out pool (or inline, completed-future)."""
        with self._lifetime_lock:
            self._lifetime["fanout_submits"] += 1
        if self._executor is not None:
            return self._executor.submit(task, *args)
        future: "Future" = Future()
        try:
            future.set_result(task(*args))
        except BaseException as error:
            future.set_exception(error)
        return future

    def _partition_read_failed(
        self, partition: int, node_id: str, statistics: SearchStatistics
    ) -> None:
        """Bookkeeping for one failed per-copy read: breaker + promotion."""
        statistics.failovers += 1
        self._cluster.note_failure(node_id)
        # A primary whose circuit just opened hands its write/freshness
        # anchor to a fresh available replica (no-op while it is healthy).
        self._cluster.ensure_live_primary(partition)

    def _failover_fan_out(
        self,
        partitions: Sequence[int],
        task: Callable[[int, HostedPartition], object],
        deadline: Optional[float],
        statistics: SearchStatistics,
        pinned: Optional[Dict[int, Tuple[str, HostedPartition]]] = None,
    ) -> Tuple[Dict[int, Tuple[str, HostedPartition, object]], Dict[int, str]]:
        """Run ``task(partition, hosted)`` per partition with replica failover.

        Each partition gets an ordered candidate list (``pinned`` first when
        given — phase 2 reuses phase 1's copy — then the fresh, available
        copies); an attempt that raises or exceeds the deadline budget fails
        over to the next candidate.  While more candidates remain, an
        attempt is only granted half the remaining budget, so a hung copy
        leaves room for its replica.  Returns ``(resolved, lost)`` where
        ``resolved`` maps partition to ``(node_id, hosted, value)`` and
        ``lost`` maps abandoned partitions to a reason string.
        """
        queues: Dict[int, List[Tuple[str, HostedPartition]]] = {}
        for partition in partitions:
            if pinned is not None and partition in pinned:
                first_node, first_hosted = pinned[partition]
                candidates = [(first_node, first_hosted)] + [
                    (node_id, hosted)
                    for node_id, hosted in self._cluster.serving_candidates(
                        partition, rotate=False
                    )
                    if node_id != first_node
                ]
            else:
                candidates = list(self._cluster.serving_candidates(partition))
            queues[partition] = candidates
        resolved: Dict[int, Tuple[str, HostedPartition, object]] = {}
        lost: Dict[int, str] = {}
        pending: Set[int] = set(queues)
        while pending:
            submitted: Dict[int, Tuple[str, HostedPartition, "Future"]] = {}
            for partition in sorted(pending):
                queue = queues[partition]
                choice: Optional[Tuple[str, HostedPartition]] = None
                while queue:
                    node_id, hosted = queue.pop(0)
                    # Re-check availability at dispatch: another partition's
                    # failure this round may have opened the circuit since
                    # the candidate list was cut.
                    if self._cluster.node_available(node_id):
                        choice = (node_id, hosted)
                        break
                if choice is None:
                    lost[partition] = "no reachable fresh copy"
                    continue
                submitted[partition] = (
                    choice[0],
                    choice[1],
                    self._submit(task, partition, choice[1]),
                )
            pending = set()
            for partition, (node_id, hosted, future) in submitted.items():
                timeout = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    timeout = max(0.0, remaining / 2 if queues[partition] else remaining)
                try:
                    value = future.result(timeout=timeout)
                except FuturesTimeout:
                    future.cancel()
                    self._partition_read_failed(partition, node_id, statistics)
                    if queues[partition] and time.perf_counter() < deadline:
                        pending.add(partition)
                    else:
                        lost[partition] = f"deadline exceeded reading from {node_id}"
                except Exception as error:
                    self._partition_read_failed(partition, node_id, statistics)
                    out_of_time = (
                        deadline is not None and time.perf_counter() >= deadline
                    )
                    if queues[partition] and not out_of_time:
                        pending.add(partition)
                    else:
                        lost[partition] = (
                            f"{type(error).__name__} from {node_id}: {error}"
                        )
                else:
                    self._cluster.note_success(node_id)
                    resolved[partition] = (node_id, hosted, value)
        return resolved, lost

    def _replace_stream(
        self,
        partition: int,
        failed_node: str,
        tried: Dict[int, Set[str]],
        canonical: Tuple[str, ...],
        k: int,
        size_threshold: int,
        idf_overrides: Dict[str, float],
        emitted: int,
        deadline: Optional[float],
        statistics: SearchStatistics,
    ) -> Optional[Tuple[str, SearchStream]]:
        """Mid-merge failover: reopen the partition's stream on a fresh copy.

        The replacement is deterministically fast-forwarded past the
        ``emitted`` results the merge already took from the failed stream —
        a fresh copy holds byte-identical data, so it replays the identical
        dequeue sequence, and its next head key can only sit at or behind
        the failed stream's (re-consuming an expansion dequeue the failed
        stream had already absorbed is a no-op re-run of the same state
        transition).  Returns ``(node_id, stream)`` or ``None`` when no
        fresh copy answers within the deadline.
        """
        tried.setdefault(partition, set()).add(failed_node)
        self._partition_read_failed(partition, failed_node, statistics)
        for node_id, hosted in self._cluster.serving_candidates(partition, rotate=False):
            if node_id in tried[partition]:
                continue
            if deadline is not None and time.perf_counter() >= deadline:
                return None
            try:
                stream = hosted.searcher.stream(
                    canonical, k, size_threshold, idf_overrides=idf_overrides
                )
                for _ in range(emitted):
                    if stream.next_result(None) is None:
                        break
            except Exception:
                tried[partition].add(node_id)
                self._partition_read_failed(partition, node_id, statistics)
                continue
            self._cluster.note_success(node_id)
            return node_id, stream
        return None

    # ------------------------------------------------------------------
    def search(
        self,
        keywords: Iterable[str],
        k: int = 10,
        size_threshold: int = 100,
        session: Optional[RouterSession] = None,
    ) -> List[SearchResult]:
        """Routed top-``k`` results (see :meth:`search_detailed`)."""
        return list(self.search_detailed(keywords, k, size_threshold, session=session).results)

    def search_detailed(
        self,
        keywords: Iterable[str],
        k: int = 10,
        size_threshold: int = 100,
        session: Optional[RouterSession] = None,
        deadline_seconds: Optional[float] = None,
        degraded_ok: Optional[bool] = None,
    ) -> DetailedSearch:
        """Scatter-gather one query; byte-identical to a single-store run.

        ``session`` is accepted for interface compatibility and ignored —
        per-partition scorers are built per query with the router's global
        IDF.  The returned epoch is the facade (router-clock) epoch observed
        before the first partition read, so serving-cache stamps invalidate
        exactly as over a single store.

        ``deadline_seconds``/``degraded_ok`` override the router defaults
        for this query (see :meth:`__init__`).  Every per-partition read —
        the DF round, the stream-open round, and each merge advance — fails
        over across the partition's fresh copies; a partition that loses
        every copy raises :class:`~repro.serving.errors.PartialResultError`
        unless degradation is allowed, in which case the answer is flagged
        ``complete=False`` with the lost partitions in the statistics.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        if size_threshold < 1:
            raise ValueError("the size threshold s must be at least 1")
        budget = self.deadline_seconds if deadline_seconds is None else deadline_seconds
        degraded = self.degraded_ok if degraded_ok is None else degraded_ok
        started = time.perf_counter()
        deadline = None if budget is None else started + budget
        canonical = tuple(dict.fromkeys(str(keyword).lower() for keyword in keywords))
        epoch = self.index.store.epoch
        statistics = SearchStatistics()

        # Round 1 — global document frequencies and per-partition weight
        # ceilings, served from the epoch-validated term-stats cache when
        # every keyword's entry is fresh.  On a miss the scatter reads both
        # from each partition's block directories in one call, with
        # per-copy failover; the selected copy is pinned per partition
        # (round-robin over the primary and its fresh replicas) and reused
        # by round 2, so a fault-free cold query reads each partition from
        # one store object even if a rebalance lands mid-query.
        missing: Dict[int, str] = {}
        pinned: Optional[Dict[int, Tuple[str, HostedPartition]]] = None
        cached = self.term_stats.lookup(canonical)
        if cached is not None:
            statistics.df_cache_hits = len(canonical)
            global_frequencies = {
                keyword: cached[keyword].frequency for keyword in canonical
            }
            ceilings = {keyword: cached[keyword].ceilings for keyword in canonical}
            reachable: List[int] = list(range(self.partition_count))
        else:
            statistics.df_cache_misses = len(canonical)

            def read_term_stats(
                partition: int, hosted: HostedPartition
            ) -> Dict[str, Tuple[int, float]]:
                del partition
                directories = hosted.store.posting_blocks_for_many(canonical)
                return {
                    keyword: (
                        directories[keyword].posting_count,
                        directories[keyword].max_weight,
                    )
                    for keyword in canonical
                }

            frequency_reads, missing = self._failover_fan_out(
                range(self.partition_count), read_term_stats, deadline, statistics
            )
            if missing and not degraded:
                raise PartialResultError(missing, detail="; ".join(missing.values()))
            global_frequencies = {
                keyword: sum(
                    stats_map[keyword][0]
                    for _node, _hosted, stats_map in frequency_reads.values()
                )
                for keyword in canonical
            }
            ceilings = {
                keyword: {
                    partition: stats_map[keyword][1]
                    for partition, (_node, _hosted, stats_map) in frequency_reads.items()
                    if stats_map[keyword][1] > 0.0
                }
                for keyword in canonical
            }
            if not missing:
                # A degraded read must not poison the cache: its DF sums
                # are missing the lost partitions' counts.
                self.term_stats.record(
                    (
                        (keyword, global_frequencies[keyword], ceilings[keyword])
                        for keyword in canonical
                    ),
                    epoch,
                )
            pinned = {
                partition: (node_id, hosted)
                for partition, (node_id, hosted, _stats) in frequency_reads.items()
            }
            reachable = sorted(frequency_reads)
        idf_overrides = {
            keyword: (1.0 / frequency if frequency else 0.0)
            for keyword, frequency in global_frequencies.items()
        }

        # Bound-aware partition pruning: a partition whose admissible bound
        # is 0 holds no relevant fragment — no stream is opened and (with a
        # warm cache) the partition is never contacted at all, which is the
        # availability win under a dead node the query does not consult.
        bounds = partition_bounds(canonical, idf_overrides, ceilings, reachable)
        contenders = [partition for partition in reachable if bounds[partition] > 0.0]
        statistics.partitions_pruned = len(reachable) - len(contenders)

        # Round 2 — open the bound-ordered partial streams in parallel:
        # scorer built (one directory read), first frontier deliberately
        # *not* materialized — the merge's sentinels decide which frontiers
        # are ever worth paying for.  Cold queries pin round 1's copies.
        def open_stream(partition: int, hosted: HostedPartition) -> SearchStream:
            del partition
            return hosted.searcher.stream(
                canonical, k, size_threshold, idf_overrides=idf_overrides
            )

        opened, lost_streams = self._failover_fan_out(
            contenders, open_stream, deadline, statistics, pinned=pinned
        )
        missing.update(lost_streams)
        if lost_streams and not degraded:
            raise PartialResultError(missing, detail="; ".join(missing.values()))

        streams: Dict[int, SearchStream] = {}
        stream_nodes: Dict[int, str] = {}
        emitted: Dict[int, int] = {}
        tried: Dict[int, Set[str]] = {}
        heap: List[Tuple[tuple, int]] = []
        for partition, (node_id, _hosted, stream) in opened.items():
            streams[partition] = stream
            stream_nodes[partition] = node_id
            emitted[partition] = 0
            # The sentinel key sorts at-or-before every real entry the
            # partition could enqueue: any score it produces is at most the
            # bound, and on equality the block-heap sentinel tie ``(0,)``
            # precedes every content tie-break.
            heap.append(((-bounds[partition], (0,)), partition))
        heapq.heapify(heap)
        merged: List[SearchResult] = []
        while heap and len(merged) < k:
            _key, partition = heap[0]
            # The runner-up's key bounds how far this stream may advance:
            # in a binary heap only the root's children can hold the
            # second-smallest entry.
            if len(heap) >= 3:
                limit = min(heap[1][0], heap[2][0])
            elif len(heap) == 2:
                limit = heap[1][0]
            else:
                limit = None
            stream = streams[partition]
            try:
                # The stream's bound surfaced: something it holds could win
                # the next global dequeue.  The advance materializes only
                # blocks keying within the runner-up limit, so a stream
                # whose bound never gets here never decodes a block or
                # scores a seed — and one that does decodes just the
                # frontier the merge actually consumes.
                batch = stream.next_results(limit, k - len(merged))
                if batch:
                    merged.extend(batch)
                    emitted[partition] += len(batch)
                    if len(merged) >= k:
                        # The global k-th emission: stop without refreshing
                        # this stream's bound — nobody consumes more.
                        break
                refreshed = stream.bound_key()
            except Exception as error:
                # Merge-stage failover runs on the merge thread: the
                # deadline here is cooperative (checked between replica
                # attempts), preemptive timeouts cover the fan-out rounds.
                # Results a half-finished batch already emitted are
                # regenerated deterministically: the replacement is only
                # fast-forwarded past the results the merge *kept*.
                replacement = self._replace_stream(
                    partition,
                    stream_nodes[partition],
                    tried,
                    canonical,
                    k,
                    size_threshold,
                    idf_overrides,
                    emitted[partition],
                    deadline,
                    statistics,
                )
                if replacement is None:
                    reason = (
                        f"{type(error).__name__} from {stream_nodes[partition]} "
                        "mid-merge, no fresh copy left"
                    )
                    if not degraded:
                        missing[partition] = reason
                        raise PartialResultError(missing, detail=reason)
                    missing[partition] = reason
                    streams.pop(partition)
                    stream_nodes.pop(partition)
                    heapq.heappop(heap)
                    continue
                node_id, new_stream = replacement
                streams[partition] = new_stream
                stream_nodes[partition] = node_id
                head = new_stream.bound_key()
                if head is None:
                    heapq.heappop(heap)
                else:
                    heapq.heapreplace(heap, (head, partition))
                continue
            if refreshed is None:
                heapq.heappop(heap)
            else:
                heapq.heapreplace(heap, (refreshed, partition))

        statistics.nodes_queried = len(set(stream_nodes.values()))
        short_circuited: Set[str] = set()
        dependencies: Set[FragmentId] = set()
        for partition, stream in streams.items():
            if not stream.exhausted:
                short_circuited.add(stream_nodes[partition])
            statistics.partials_discarded += stream.pending_candidates
            stream_statistics = stream.finalize()
            dependencies.update(stream.consulted)
            for field_name in _STREAM_SUM_FIELDS:
                setattr(
                    statistics,
                    field_name,
                    getattr(statistics, field_name) + getattr(stream_statistics, field_name),
                )
        statistics.nodes_short_circuited = len(short_circuited)
        statistics.partials_merged = len(merged)
        # Same final step as a single stream: emission order is not strictly
        # score-ordered, the stable sort restores the ranking.
        merged.sort(key=lambda result: -result.score)
        statistics.results = len(merged)
        statistics.complete = not missing
        statistics.missing_partitions = tuple(sorted(missing))
        statistics.elapsed_seconds = time.perf_counter() - started
        self.last_statistics = statistics
        with self._lifetime_lock:
            self._lifetime["searches"] += 1
            for field_name in LIFETIME_FIELDS:
                self._lifetime[field_name] += getattr(statistics, field_name)
        return DetailedSearch(
            results=tuple(merged),
            keywords=canonical,
            dependencies=frozenset(dependencies),
            epoch=epoch,
            statistics=statistics,
        )


@dataclass
class PartitionAssignment:
    """Where one partition's copies live (primary first for writes)."""

    partition: int
    primary: str
    replicas: Tuple[str, ...]
    round_robin: int = 0


class SearchCluster:
    """A simulated multi-node search cluster over one built corpus.

    Build one with :meth:`build` (or through
    :meth:`repro.core.engine.DashEngine.cluster`): the source store is
    replayed into per-partition stores placed on the nodes by the
    consistent-hash ring, replica copies are cut from partition snapshots,
    and a :class:`QueryRouter` serves scatter-gather queries over the
    topology.  ``replicas`` counts *copies* per partition (1 = primary
    only), clamped to the node count.

    Writes (through :attr:`store`, the :class:`~repro.cluster.ClusterStore`
    facade) go to partition primaries; replicas become stale — the router
    skips them until :meth:`sync_replicas` cuts fresh copies (snapshot +
    epoch refresh).  :meth:`rebalance` moves a partition's primary between
    nodes the same way while every other partition keeps serving.
    Mutations to the *moving* partition should be quiesced by the caller
    for the duration of the move (one maintenance-batch boundary); the move
    re-cuts its snapshot if it detects a racing write.
    """

    def __init__(
        self,
        query: ParameterizedPSJQuery,
        query_string_spec: QueryStringSpec,
        uri: str,
        node_ids: Sequence[str],
        partitions: int,
        replicas: int,
        node_store: NodeStoreSpec = "memory",
        store_dir: Optional[str] = None,
        fault_plane: Optional[FaultPlane] = None,
        breaker_threshold: int = 3,
        breaker_reset_seconds: float = 0.5,
    ) -> None:
        self.partitioner = GroupPartitioner(query, partitions)
        self.ring = HashRing(node_ids)
        self.nodes: Dict[str, SearchNode] = {
            node_id: SearchNode(node_id, query, query_string_spec, uri)
            for node_id in node_ids
        }
        self.replication = max(1, min(replicas, len(node_ids)))
        self.fault_plane = fault_plane
        self._health: Dict[str, NodeHealth] = {
            node_id: NodeHealth(
                node_id,
                failure_threshold=breaker_threshold,
                reset_seconds=breaker_reset_seconds,
            )
            for node_id in node_ids
        }
        self._node_store = node_store
        self._store_dir = store_dir
        self._owns_store_dir = False
        self._generation = itertools.count()
        self._topology_lock = threading.Lock()
        self._retired: List[FragmentStore] = []
        self._assignments: Dict[int, PartitionAssignment] = {}
        for partition in range(partitions):
            owners = self.ring.nodes_for(("partition", partition), count=self.replication)
            self._assignments[partition] = PartitionAssignment(
                partition=partition, primary=owners[0], replicas=tuple(owners[1:])
            )
        self.store = ClusterStore(self.partitioner, self.primary_store)
        self.router: Optional[QueryRouter] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        query: ParameterizedPSJQuery,
        query_string_spec: QueryStringSpec,
        uri: str,
        source_store: FragmentStore,
        nodes: int = 2,
        replicas: int = 1,
        partitions: Optional[int] = None,
        node_store: NodeStoreSpec = "memory",
        store_dir: Optional[str] = None,
        router_workers: Optional[int] = None,
        fault_plane: Optional[FaultPlane] = None,
        deadline_seconds: Optional[float] = None,
        degraded_ok: bool = False,
        breaker_threshold: int = 3,
        breaker_reset_seconds: float = 0.5,
    ) -> "SearchCluster":
        """Partition a built corpus across ``nodes`` and wire the router.

        ``partitions`` defaults to ``nodes`` (one primary per node);
        ``node_store`` picks each partition copy's backend (see
        :data:`NodeStoreSpec`), ``store_dir`` where disk backends land
        their files (a managed temporary directory when omitted).

        ``fault_plane`` wraps every partition copy with a
        :class:`~repro.faults.FaultPlane` proxy (chaos testing);
        ``deadline_seconds``/``degraded_ok`` set the router's default
        failover budget and partial-result policy, and the ``breaker_*``
        knobs tune each node's circuit breaker (see
        :class:`~repro.cluster.health.NodeHealth`).
        """
        if nodes < 1:
            raise ValueError(f"node count must be at least 1, got {nodes}")
        partition_count = nodes if partitions is None else partitions
        cluster = cls(
            query=query,
            query_string_spec=query_string_spec,
            uri=uri,
            node_ids=tuple(f"node-{index}" for index in range(nodes)),
            partitions=partition_count,
            replicas=replicas,
            node_store=node_store,
            store_dir=store_dir,
            fault_plane=fault_plane,
            breaker_threshold=breaker_threshold,
            breaker_reset_seconds=breaker_reset_seconds,
        )
        for partition, assignment in cluster._assignments.items():
            store = cluster._new_partition_store(partition, assignment.primary)
            cluster.nodes[assignment.primary].host(partition, store)
        populate_from_store(cluster.store, source_store)
        for partition, assignment in cluster._assignments.items():
            for node_id in assignment.replicas:
                cluster.nodes[node_id].host(
                    partition, cluster._clone_partition(partition, node_id)
                )
        cluster.router = QueryRouter(
            cluster,
            workers=router_workers,
            deadline_seconds=deadline_seconds,
            degraded_ok=degraded_ok,
        )
        return cluster

    def service(self, **kwargs) -> "ClusterSearchService":
        """A serving layer over this cluster (see :class:`ClusterSearchService`)."""
        return ClusterSearchService(self, **kwargs)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def partition_count(self) -> int:
        """Number of corpus partitions."""
        return self.partitioner.partitions

    def assignment(self, partition: int) -> PartitionAssignment:
        """A consistent copy of one partition's current placement."""
        with self._topology_lock:
            current = self._assignments[partition]
            return PartitionAssignment(
                partition=current.partition,
                primary=current.primary,
                replicas=current.replicas,
                round_robin=current.round_robin,
            )

    def primary_store(self, partition: int) -> FragmentStore:
        """The current primary store of ``partition`` (the facade's write target)."""
        with self._topology_lock:
            node_id = self._assignments[partition].primary
        return self.nodes[node_id].hosted(partition).store

    def node_available(self, node_id: str) -> bool:
        """Whether ``node_id``'s circuit breaker currently admits traffic."""
        return self._health[node_id].available()

    def node_health(self, node_id: str) -> NodeHealth:
        """The breaker/counter record of one node."""
        return self._health[node_id]

    def note_failure(self, node_id: str) -> str:
        """Record one observed read failure; returns the breaker state."""
        return self._health[node_id].record_failure()

    def note_success(self, node_id: str) -> None:
        """Record one observed read success (closes a probing breaker)."""
        self._health[node_id].record_success()

    def serving_candidates(
        self, partition: int, rotate: bool = True
    ) -> List[Tuple[str, HostedPartition]]:
        """Every copy currently eligible to serve ``partition``, best first.

        Round-robin over the primary and its replicas (``rotate=False``
        reads the rotation without advancing it — failover re-reads reuse
        the query's pinned rotation), skipping copies whose node breaker is
        open and replicas whose epoch trails the primary's (stale until
        :meth:`sync_replicas`).  This is what spreads a hot partition's read
        load ``replicas``-ways; the first entry is the pick the old
        single-copy selection would have made.
        """
        with self._topology_lock:
            assignment = self._assignments[partition]
            order = (assignment.primary,) + assignment.replicas
            start = assignment.round_robin
            if rotate:
                assignment.round_robin = (assignment.round_robin + 1) % len(order)
        primary_hosted = self.nodes[assignment.primary].hosted(partition)
        primary_epoch = primary_hosted.store.epoch
        candidates: List[Tuple[str, HostedPartition]] = []
        for offset in range(len(order)):
            node_id = order[(start + offset) % len(order)]
            if not self.node_available(node_id):
                continue
            if node_id == assignment.primary:
                candidates.append((node_id, primary_hosted))
                continue
            node = self.nodes[node_id]
            if not node.hosts(partition):
                continue
            hosted = node.hosted(partition)
            if hosted.store.epoch == primary_epoch:
                candidates.append((node_id, hosted))
        return candidates

    def select_serving(self, partition: int) -> Tuple[str, HostedPartition]:
        """Pick the copy to serve one query's reads of ``partition``.

        The head of :meth:`serving_candidates` — round-robin over the
        primary and its fresh replicas.  Unlike the historical behaviour
        this never silently falls back to a primary whose breaker is open:
        if no copy is eligible it raises
        :class:`~repro.serving.errors.PartitionUnavailableError` so callers
        can fail over or surface the outage instead of querying a node
        known to be dead.
        """
        candidates = self.serving_candidates(partition)
        if not candidates:
            assignment = self.assignment(partition)
            raise PartitionUnavailableError(
                partition,
                tried=(assignment.primary,) + assignment.replicas,
                reason="primary dead and no fresh available replica",
            )
        return candidates[0]

    def ensure_live_primary(self, partition: int) -> Optional[str]:
        """Promote a fresh replica if ``partition``'s primary looks dead.

        No-op (returns ``None``) while the primary's breaker admits
        traffic.  Otherwise the first available replica hosting a copy at
        the primary's epoch is promoted via the :meth:`rebalance` flip
        machinery — the dead node demotes to replica so it can be re-synced
        if it comes back — and its id is returned.  With no eligible
        replica the partition stays on the dead primary (callers see
        :class:`~repro.serving.errors.PartitionUnavailableError` until the
        breaker's probe window reopens).
        """
        assignment = self.assignment(partition)
        if self.node_available(assignment.primary):
            return None
        primary_epoch = self.nodes[assignment.primary].hosted(partition).store.epoch
        for node_id in assignment.replicas:
            if not self.node_available(node_id):
                continue
            node = self.nodes[node_id]
            if not node.hosts(partition):
                continue
            if node.hosted(partition).store.epoch != primary_epoch:
                continue
            if self._flip_primary(
                partition,
                node_id,
                keep_source=True,
                expected_primary=assignment.primary,
            ):
                return node_id
            return None
        return None

    # ------------------------------------------------------------------
    # rebalancing and replica catch-up
    # ------------------------------------------------------------------
    def rebalance(self, partition: int, target_node_id: str) -> bool:
        """Move ``partition``'s primary to ``target_node_id`` via snapshot.

        The source copy keeps serving while the snapshot is cut and
        restored — no downtime for this or any other partition — and the
        assignment flips atomically once the target copy is complete.  A
        target that held a replica is promoted (the old primary demotes to
        replica, reusing its still-fresh store); otherwise the old primary
        copy is dropped and retired.  Returns ``False`` for a no-op move
        (target already primary), ``True`` otherwise.
        """
        if target_node_id not in self.nodes:
            raise ValueError(f"unknown node {target_node_id!r}")
        with self._topology_lock:
            assignment = self._assignments[partition]
            source_node_id = assignment.primary
        if source_node_id == target_node_id:
            return False
        source_store = self.nodes[source_node_id].hosted(partition).store
        while True:
            epoch_before = source_store.epoch
            new_store = self._clone_partition(partition, target_node_id)
            if source_store.epoch == epoch_before:
                break
            # A same-partition write raced the copy; retire it and recut.
            self._retired.append(new_store)
        self.nodes[target_node_id].host(partition, new_store)
        flipped = self._flip_primary(partition, target_node_id)
        if flipped is None:
            return True
        flipped_source, keep_source = flipped
        if not keep_source:
            dropped = self.nodes[flipped_source].drop(partition)
            if dropped is not None:
                # In-flight queries pinned to the old copy finish against it;
                # the store closes with the cluster, not under them.
                self._retired.append(dropped.store)
        return True

    def _flip_primary(
        self,
        partition: int,
        target_node_id: str,
        keep_source: Optional[bool] = None,
        expected_primary: Optional[str] = None,
    ) -> Optional[Tuple[str, bool]]:
        """Atomically make ``target_node_id`` the primary of ``partition``.

        ``keep_source`` forces whether the old primary stays listed as a
        replica (default: only if the target *was* a replica, i.e. its
        copy is reusable).  ``expected_primary`` aborts the flip (returns
        ``None``) if the assignment moved since the caller looked — the
        promotion equivalent of a compare-and-swap.  Returns the old
        primary and whether it was kept.
        """
        with self._topology_lock:
            assignment = self._assignments[partition]
            if expected_primary is not None and assignment.primary != expected_primary:
                return None
            source_node_id = assignment.primary
            if source_node_id == target_node_id:
                return None
            was_replica = target_node_id in assignment.replicas
            keep = was_replica if keep_source is None else keep_source
            remaining = tuple(
                node_id for node_id in assignment.replicas if node_id != target_node_id
            )
            assignment.primary = target_node_id
            assignment.replicas = remaining + (source_node_id,) if keep else remaining
        return source_node_id, keep

    def sync_replicas(self, partition: Optional[int] = None) -> int:
        """Cut fresh snapshot copies for stale replicas (epoch catch-up).

        Covers one partition or (default) all of them; returns how many
        replica copies were refreshed.  A replica is stale when its store
        epoch differs from its primary's — the same check
        :meth:`select_serving` uses to route reads away from it.
        """
        partitions = range(self.partition_count) if partition is None else (partition,)
        refreshed = 0
        for current in partitions:
            assignment = self.assignment(current)
            primary_epoch = self.nodes[assignment.primary].hosted(current).store.epoch
            for node_id in assignment.replicas:
                node = self.nodes[node_id]
                if node.hosts(current) and node.hosted(current).store.epoch == primary_epoch:
                    continue
                previous = node.drop(current)
                node.host(current, self._clone_partition(current, node_id))
                if previous is not None:
                    self._retired.append(previous.store)
                refreshed += 1
        return refreshed

    # ------------------------------------------------------------------
    # statistics and lifecycle
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, object]:
        """Topology + per-partition epochs (the cluster's inspection surface)."""
        placements = {}
        for partition in range(self.partition_count):
            assignment = self.assignment(partition)
            placements[partition] = {
                "primary": assignment.primary,
                "replicas": list(assignment.replicas),
                "epoch": self.primary_store(partition).epoch,
            }
        payload: Dict[str, object] = {
            "nodes": {
                node_id: {"partitions": list(node.partitions())}
                for node_id, node in self.nodes.items()
            },
            "partitions": placements,
            "partition_epochs": self.store.partition_epochs(),
            "epoch": self.store.epoch,
            "replication": self.replication,
            "health": {
                node_id: health.as_dict() for node_id, health in self._health.items()
            },
        }
        if self.router is not None:
            payload["term_stats_cache"] = self.router.term_stats.statistics()
            payload["search"] = self.router.lifetime_statistics()
        if self.fault_plane is not None:
            payload["faults"] = self.fault_plane.statistics()
        return payload

    def close(self) -> None:
        """Shut the router down and close every hosted and retired store."""
        if self.router is not None:
            self.router.close()
        for node in self.nodes.values():
            for partition in node.partitions():
                dropped = node.drop(partition)
                if dropped is not None:
                    dropped.store.close()
        for store in self._retired:
            store.close()
        self._retired = []
        if self._owns_store_dir and self._store_dir is not None:
            shutil.rmtree(self._store_dir, ignore_errors=True)
            self._store_dir = None

    # ------------------------------------------------------------------
    def _ensure_store_dir(self) -> str:
        if self._store_dir is None:
            self._store_dir = tempfile.mkdtemp(prefix="repro-cluster-")
            self._owns_store_dir = True
        return self._store_dir

    def _new_partition_store(self, partition: int, node_id: str) -> FragmentStore:
        return self._wrap_store(node_id, self._new_raw_partition_store(partition, node_id))

    def _new_raw_partition_store(self, partition: int, node_id: str) -> FragmentStore:
        """A bare (unwrapped) backend for one partition copy.

        Snapshot restores need the bare store — the fault-plane proxy is
        not a :class:`FragmentStore` and must only be layered on *after*
        the copy is complete (see :meth:`_wrap_store`).
        """
        spec = self._node_store
        if callable(spec):
            return spec(node_id, partition)
        if spec == "memory":
            return InMemoryStore()
        if spec == "disk":
            filename = f"{node_id}-p{partition}-g{next(self._generation)}.sqlite"
            return DiskStore(os.path.join(self._ensure_store_dir(), filename))
        raise ValueError(
            f"unknown node store spec {spec!r}; expected 'memory', 'disk' or a "
            "(node_id, partition) -> FragmentStore factory"
        )

    def _wrap_store(self, node_id: str, store: FragmentStore):
        """Layer the cluster's fault plane (if any) over one copy."""
        if self.fault_plane is None:
            return store
        return self.fault_plane.wrap_store(node_id, store)

    def _clone_partition(self, partition: int, target_node_id: str) -> FragmentStore:
        """Snapshot the partition's primary and restore it into a fresh store.

        The existing backend-independent snapshot machinery does the heavy
        lifting: postings, sizes, graph and the partition's epoch clock all
        travel, so the clone is indistinguishable from the primary at cut
        time — including for the epoch-equality freshness check.
        """
        source = self.primary_store(partition)
        snapshot_path = os.path.join(
            self._ensure_store_dir(),
            f"snapshot-p{partition}-g{next(self._generation)}.json",
        )
        source.snapshot(snapshot_path)
        try:
            restored = load_snapshot(
                snapshot_path,
                store=self._new_raw_partition_store(partition, target_node_id),
            )
            return self._wrap_store(target_node_id, restored)
        finally:
            try:
                os.remove(snapshot_path)
            except OSError:
                pass


class ClusterSearchService(SearchService):
    """A stock :class:`~repro.serving.SearchService` over a cluster.

    The "searcher" is the cluster's :class:`QueryRouter` and the "store" is
    the :class:`~repro.cluster.ClusterStore` facade, so admission, the
    versioned result cache, single-flight coalescing and epoch invalidation
    all run unchanged — cache stamps carry the router epoch, whose ticks
    are derived one-to-one from per-partition commits.  Closing the service
    closes the cluster (router pool, every partition store, managed files).
    """

    def __init__(
        self,
        cluster: SearchCluster,
        degraded_ok: Optional[bool] = None,
        deadline_seconds: Optional[float] = None,
        **kwargs,
    ) -> None:
        if cluster.router is None:
            raise ValueError("the cluster has no router; build it with SearchCluster.build")
        self.cluster = cluster
        # Non-None overrides win over whatever SearchCluster.build wired in;
        # the serving layer is where the degraded-results policy lives.
        if degraded_ok is not None:
            cluster.router.degraded_ok = degraded_ok
        if deadline_seconds is not None:
            cluster.router.deadline_seconds = deadline_seconds
        super().__init__(cluster.router, session=cluster.router.session(), **kwargs)

    def close(self) -> None:
        """Close the serving layer, then the cluster underneath it."""
        super().close()
        self.cluster.close()
