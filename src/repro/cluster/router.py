"""Scatter-gather top-k over the partitioned cluster, byte-identical.

The :class:`QueryRouter` answers one query in two fan-out rounds and one
merge:

1. **global document frequencies** — each selected partition copy reports
   its exact per-keyword DF (an integer, read from the cached block
   directories); their sum is the merged corpus's DF, so ``1/df`` — the
   IDF every node then scores with via
   :class:`~repro.core.scoring.DashScorer`'s ``idf_overrides`` — is the
   bit-identical float a single store would compute.
2. **bound-ordered partial streams** — each copy opens a
   :class:`~repro.core.search.SearchStream` and materializes its first
   admissible frontier in parallel.
3. **precedence merge** — the router repeatedly advances the stream whose
   next dequeue entry is smallest, bounded by the runner-up's entry.
   Queue keys are content-determined (exact score + the deterministic
   tie-breaks of :data:`repro.core.search.QueueEntry`) and every db-page
   chain lives inside one partition, so this greedy interleave replays the
   *exact global dequeue sequence* of a single merged store — result
   emission is not score-monotone (expansions can raise pending pages
   above emitted results), which is why merging per-node top-k lists by
   score alone would not be byte-identical, and replaying the dequeue
   order is.  The merge stops at the global ``k``-th emission; streams
   whose best remaining bound never reaches the frontier are never pulled
   (``nodes_short_circuited``), and their materialized-but-unranked
   candidates are counted in ``partials_discarded``.

:class:`SearchCluster` owns the topology: consistent-hash partition
assignment (:class:`~repro.cluster.HashRing`), replica placement with
round-robin reads for hot partitions, snapshot-based replica catch-up
(:meth:`SearchCluster.sync_replicas`) and live rebalancing
(:meth:`SearchCluster.rebalance`).  :class:`ClusterSearchService` is the
serving entry point: a stock :class:`~repro.serving.SearchService` whose
"searcher" is the router and whose "store" is the
:class:`~repro.cluster.ClusterStore` facade — admission, result caching
and epoch invalidation run unchanged.
"""

from __future__ import annotations

import itertools
import os
import shutil
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.fragments import FragmentId
from repro.core.search import (
    LIFETIME_FIELDS,
    DetailedSearch,
    SearchResult,
    SearchStatistics,
    SearchStream,
)
from repro.cluster.node import HostedPartition, SearchNode
from repro.cluster.partitioning import GroupPartitioner, HashRing
from repro.cluster.store import ClusterStore, populate_from_store
from repro.db.query import ParameterizedPSJQuery
from repro.serving.service import SearchService
from repro.store.base import FragmentStore
from repro.store.disk import DiskStore
from repro.store.memory import InMemoryStore
from repro.store.snapshot import load_snapshot
from repro.webapp.request import QueryStringSpec

#: What ``node_store=`` accepts: a backend name (``"memory"``/``"disk"``) or
#: a ``(node_id, partition) -> FragmentStore`` factory returning an *empty*
#: backend (benchmarks use factories to wrap stores with simulated per-node
#: latency).
NodeStoreSpec = Union[str, Callable[[str, int], FragmentStore]]

#: Counters summed across partition streams into the routed query's
#: statistics (elapsed/results/fan-out counters are router-level).
_STREAM_SUM_FIELDS = (
    "seed_fragments",
    "seeds_scored",
    "expansions",
    "dequeues",
    "pruned_dequeues",
    "pruned_expansions",
    "blocks_skipped",
    "blocks_decoded",
    "postings_decoded",
)


class _RouterIndex:
    """The ``searcher.index`` shim a SearchService expects: just ``.store``."""

    def __init__(self, store: ClusterStore) -> None:
        self.store = store


class RouterSession:
    """The router's stand-in for a :class:`~repro.core.search.SearchSession`.

    Partition streams always build fresh scorers (a cached scorer's global
    IDF could go stale through a *remote* partition's mutation without the
    local epoch moving), so there is nothing to cache here — the session
    exists so ``SearchService.statistics()["session"]`` keeps its shape.
    """

    def __init__(self, router: "QueryRouter") -> None:
        self._router = router

    def statistics(self) -> Dict[str, int]:
        """Shape-compatible session counters (no scorer reuse by design)."""
        lifetime = self._router.lifetime_statistics()
        return {
            "epoch": self._router.index.store.epoch,
            "cached_scorers": 0,
            "cached_neighbor_lists": 0,
            "scorer_reuses": 0,
            "scorer_builds": lifetime["searches"] * self._router.partition_count,
        }


class QueryRouter:
    """Scatter-gather searcher over one :class:`SearchCluster`.

    Duck-types the :class:`~repro.core.search.TopKSearcher` surface a
    :class:`~repro.serving.SearchService` drives — ``search_detailed``,
    ``session()``, ``lifetime_statistics()`` and ``index.store`` — so the
    whole serving layer stacks on a cluster unchanged.
    """

    def __init__(self, cluster: "SearchCluster", workers: Optional[int] = None) -> None:
        self._cluster = cluster
        self.index = _RouterIndex(cluster.store)
        self.partition_count = cluster.store.partition_count
        if workers is None:
            workers = min(16, max(4, 2 * self.partition_count))
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=workers, thread_name_prefix="cluster-router")
            if self.partition_count > 1
            else None
        )
        self.last_statistics = SearchStatistics()
        self._lifetime_lock = threading.Lock()
        self._lifetime: Dict[str, int] = {"searches": 0}
        self._lifetime.update({field_name: 0 for field_name in LIFETIME_FIELDS})

    # ------------------------------------------------------------------
    def session(self) -> RouterSession:
        """The router's session shim (see :class:`RouterSession`)."""
        return RouterSession(self)

    def lifetime_statistics(self) -> Dict[str, int]:
        """Running totals over every routed search (includes fan-out counters)."""
        with self._lifetime_lock:
            return dict(self._lifetime)

    def close(self) -> None:
        """Shut the fan-out pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _fan_out(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        if self._executor is None or len(tasks) <= 1:
            return [task() for task in tasks]
        return list(self._executor.map(lambda task: task(), tasks))

    # ------------------------------------------------------------------
    def search(
        self,
        keywords: Iterable[str],
        k: int = 10,
        size_threshold: int = 100,
        session: Optional[RouterSession] = None,
    ) -> List[SearchResult]:
        """Routed top-``k`` results (see :meth:`search_detailed`)."""
        return list(self.search_detailed(keywords, k, size_threshold, session=session).results)

    def search_detailed(
        self,
        keywords: Iterable[str],
        k: int = 10,
        size_threshold: int = 100,
        session: Optional[RouterSession] = None,
    ) -> DetailedSearch:
        """Scatter-gather one query; byte-identical to a single-store run.

        ``session`` is accepted for interface compatibility and ignored —
        per-partition scorers are built per query with the router's global
        IDF.  The returned epoch is the facade (router-clock) epoch observed
        before the first partition read, so serving-cache stamps invalidate
        exactly as over a single store.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        if size_threshold < 1:
            raise ValueError("the size threshold s must be at least 1")
        started = time.perf_counter()
        canonical = tuple(dict.fromkeys(str(keyword).lower() for keyword in keywords))
        epoch = self.index.store.epoch
        # Pin one serving copy per partition for the whole query (round-robin
        # over the primary and its fresh replicas) so both fan-out rounds
        # read the same store objects even if a rebalance lands mid-query.
        selections = [
            self._cluster.select_serving(partition)
            for partition in range(self.partition_count)
        ]

        def partition_frequencies(hosted: HostedPartition) -> Dict[str, int]:
            directories = hosted.store.posting_blocks_for_many(canonical)
            return {keyword: directories[keyword].posting_count for keyword in canonical}

        frequency_maps = self._fan_out(
            [lambda hosted=hosted: partition_frequencies(hosted) for _node, hosted in selections]
        )
        global_frequencies = {
            keyword: sum(frequencies[keyword] for frequencies in frequency_maps)
            for keyword in canonical
        }
        idf_overrides = {
            keyword: (1.0 / frequency if frequency else 0.0)
            for keyword, frequency in global_frequencies.items()
        }

        def open_stream(hosted: HostedPartition):
            stream = hosted.searcher.stream(
                canonical, k, size_threshold, idf_overrides=idf_overrides
            )
            # First materialization (the admissible frontier) runs inside
            # the fan-out; afterwards the stream is advanced only by the
            # merge thread.
            return stream, stream.peek_entry()

        opened = self._fan_out(
            [lambda hosted=hosted: open_stream(hosted) for _node, hosted in selections]
        )
        streams: List[SearchStream] = [stream for stream, _entry in opened]

        heap: List[Tuple[tuple, int]] = []
        for sequence, (_stream, entry) in enumerate(opened):
            if entry is not None:
                heap.append((entry, sequence))
        heap.sort()
        merged: List[SearchResult] = []
        while heap and len(merged) < k:
            entry, sequence = heap[0]
            # The runner-up's head entry bounds how far this stream may
            # advance: every dequeue it performs within the limit is
            # provably the globally smallest pending entry.
            limit = heap[1][0] if len(heap) > 1 else None
            stream = streams[sequence]
            result = stream.next_result(limit)
            if result is not None:
                merged.append(result)
            refreshed = stream.peek_entry()
            if refreshed is None:
                heap.pop(0)
            else:
                heap[0] = (refreshed, sequence)
            heap.sort()

        statistics = SearchStatistics()
        statistics.nodes_queried = len({node_id for node_id, _hosted in selections})
        short_circuited: Set[str] = set()
        for (node_id, _hosted), stream in zip(selections, streams):
            if not stream.exhausted:
                short_circuited.add(node_id)
            statistics.partials_discarded += stream.pending_candidates
        statistics.nodes_short_circuited = len(short_circuited)
        statistics.partials_merged = len(merged)
        dependencies: Set[FragmentId] = set()
        for stream in streams:
            stream_statistics = stream.finalize()
            dependencies.update(stream.consulted)
            for field_name in _STREAM_SUM_FIELDS:
                setattr(
                    statistics,
                    field_name,
                    getattr(statistics, field_name) + getattr(stream_statistics, field_name),
                )
        # Same final step as a single stream: emission order is not strictly
        # score-ordered, the stable sort restores the ranking.
        merged.sort(key=lambda result: -result.score)
        statistics.results = len(merged)
        statistics.elapsed_seconds = time.perf_counter() - started
        self.last_statistics = statistics
        with self._lifetime_lock:
            self._lifetime["searches"] += 1
            for field_name in LIFETIME_FIELDS:
                self._lifetime[field_name] += getattr(statistics, field_name)
        return DetailedSearch(
            results=tuple(merged),
            keywords=canonical,
            dependencies=frozenset(dependencies),
            epoch=epoch,
            statistics=statistics,
        )


@dataclass
class PartitionAssignment:
    """Where one partition's copies live (primary first for writes)."""

    partition: int
    primary: str
    replicas: Tuple[str, ...]
    round_robin: int = 0


class SearchCluster:
    """A simulated multi-node search cluster over one built corpus.

    Build one with :meth:`build` (or through
    :meth:`repro.core.engine.DashEngine.cluster`): the source store is
    replayed into per-partition stores placed on the nodes by the
    consistent-hash ring, replica copies are cut from partition snapshots,
    and a :class:`QueryRouter` serves scatter-gather queries over the
    topology.  ``replicas`` counts *copies* per partition (1 = primary
    only), clamped to the node count.

    Writes (through :attr:`store`, the :class:`~repro.cluster.ClusterStore`
    facade) go to partition primaries; replicas become stale — the router
    skips them until :meth:`sync_replicas` cuts fresh copies (snapshot +
    epoch refresh).  :meth:`rebalance` moves a partition's primary between
    nodes the same way while every other partition keeps serving.
    Mutations to the *moving* partition should be quiesced by the caller
    for the duration of the move (one maintenance-batch boundary); the move
    re-cuts its snapshot if it detects a racing write.
    """

    def __init__(
        self,
        query: ParameterizedPSJQuery,
        query_string_spec: QueryStringSpec,
        uri: str,
        node_ids: Sequence[str],
        partitions: int,
        replicas: int,
        node_store: NodeStoreSpec = "memory",
        store_dir: Optional[str] = None,
    ) -> None:
        self.partitioner = GroupPartitioner(query, partitions)
        self.ring = HashRing(node_ids)
        self.nodes: Dict[str, SearchNode] = {
            node_id: SearchNode(node_id, query, query_string_spec, uri)
            for node_id in node_ids
        }
        self.replication = max(1, min(replicas, len(node_ids)))
        self._node_store = node_store
        self._store_dir = store_dir
        self._owns_store_dir = False
        self._generation = itertools.count()
        self._topology_lock = threading.Lock()
        self._retired: List[FragmentStore] = []
        self._assignments: Dict[int, PartitionAssignment] = {}
        for partition in range(partitions):
            owners = self.ring.nodes_for(("partition", partition), count=self.replication)
            self._assignments[partition] = PartitionAssignment(
                partition=partition, primary=owners[0], replicas=tuple(owners[1:])
            )
        self.store = ClusterStore(self.partitioner, self.primary_store)
        self.router: Optional[QueryRouter] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        query: ParameterizedPSJQuery,
        query_string_spec: QueryStringSpec,
        uri: str,
        source_store: FragmentStore,
        nodes: int = 2,
        replicas: int = 1,
        partitions: Optional[int] = None,
        node_store: NodeStoreSpec = "memory",
        store_dir: Optional[str] = None,
        router_workers: Optional[int] = None,
    ) -> "SearchCluster":
        """Partition a built corpus across ``nodes`` and wire the router.

        ``partitions`` defaults to ``nodes`` (one primary per node);
        ``node_store`` picks each partition copy's backend (see
        :data:`NodeStoreSpec`), ``store_dir`` where disk backends land
        their files (a managed temporary directory when omitted).
        """
        if nodes < 1:
            raise ValueError(f"node count must be at least 1, got {nodes}")
        partition_count = nodes if partitions is None else partitions
        cluster = cls(
            query=query,
            query_string_spec=query_string_spec,
            uri=uri,
            node_ids=tuple(f"node-{index}" for index in range(nodes)),
            partitions=partition_count,
            replicas=replicas,
            node_store=node_store,
            store_dir=store_dir,
        )
        for partition, assignment in cluster._assignments.items():
            store = cluster._new_partition_store(partition, assignment.primary)
            cluster.nodes[assignment.primary].host(partition, store)
        populate_from_store(cluster.store, source_store)
        for partition, assignment in cluster._assignments.items():
            for node_id in assignment.replicas:
                cluster.nodes[node_id].host(
                    partition, cluster._clone_partition(partition, node_id)
                )
        cluster.router = QueryRouter(cluster, workers=router_workers)
        return cluster

    def service(self, **kwargs) -> "ClusterSearchService":
        """A serving layer over this cluster (see :class:`ClusterSearchService`)."""
        return ClusterSearchService(self, **kwargs)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def partition_count(self) -> int:
        """Number of corpus partitions."""
        return self.partitioner.partitions

    def assignment(self, partition: int) -> PartitionAssignment:
        """A consistent copy of one partition's current placement."""
        with self._topology_lock:
            current = self._assignments[partition]
            return PartitionAssignment(
                partition=current.partition,
                primary=current.primary,
                replicas=current.replicas,
                round_robin=current.round_robin,
            )

    def primary_store(self, partition: int) -> FragmentStore:
        """The current primary store of ``partition`` (the facade's write target)."""
        with self._topology_lock:
            node_id = self._assignments[partition].primary
        return self.nodes[node_id].hosted(partition).store

    def select_serving(self, partition: int) -> Tuple[str, HostedPartition]:
        """Pick the copy to serve one query's reads of ``partition``.

        Round-robin over the primary and its replicas, skipping replicas
        whose epoch trails the primary's (stale until
        :meth:`sync_replicas`); falls back to the primary.  This is what
        spreads a hot partition's read load ``replicas``-ways.
        """
        with self._topology_lock:
            assignment = self._assignments[partition]
            order = (assignment.primary,) + assignment.replicas
            start = assignment.round_robin
            assignment.round_robin = (assignment.round_robin + 1) % len(order)
        primary_hosted = self.nodes[assignment.primary].hosted(partition)
        primary_epoch = primary_hosted.store.epoch
        for offset in range(len(order)):
            node_id = order[(start + offset) % len(order)]
            if node_id == assignment.primary:
                return node_id, primary_hosted
            node = self.nodes[node_id]
            if not node.hosts(partition):
                continue
            hosted = node.hosted(partition)
            if hosted.store.epoch == primary_epoch:
                return node_id, hosted
        return assignment.primary, primary_hosted

    # ------------------------------------------------------------------
    # rebalancing and replica catch-up
    # ------------------------------------------------------------------
    def rebalance(self, partition: int, target_node_id: str) -> bool:
        """Move ``partition``'s primary to ``target_node_id`` via snapshot.

        The source copy keeps serving while the snapshot is cut and
        restored — no downtime for this or any other partition — and the
        assignment flips atomically once the target copy is complete.  A
        target that held a replica is promoted (the old primary demotes to
        replica, reusing its still-fresh store); otherwise the old primary
        copy is dropped and retired.  Returns ``False`` for a no-op move
        (target already primary), ``True`` otherwise.
        """
        if target_node_id not in self.nodes:
            raise ValueError(f"unknown node {target_node_id!r}")
        with self._topology_lock:
            assignment = self._assignments[partition]
            source_node_id = assignment.primary
        if source_node_id == target_node_id:
            return False
        source_store = self.nodes[source_node_id].hosted(partition).store
        while True:
            epoch_before = source_store.epoch
            new_store = self._clone_partition(partition, target_node_id)
            if source_store.epoch == epoch_before:
                break
            # A same-partition write raced the copy; retire it and recut.
            self._retired.append(new_store)
        self.nodes[target_node_id].host(partition, new_store)
        with self._topology_lock:
            assignment = self._assignments[partition]
            was_replica = target_node_id in assignment.replicas
            remaining = tuple(
                node_id for node_id in assignment.replicas if node_id != target_node_id
            )
            assignment.primary = target_node_id
            assignment.replicas = (
                remaining + (source_node_id,) if was_replica else remaining
            )
            keep_source = was_replica
        if not keep_source:
            dropped = self.nodes[source_node_id].drop(partition)
            if dropped is not None:
                # In-flight queries pinned to the old copy finish against it;
                # the store closes with the cluster, not under them.
                self._retired.append(dropped.store)
        return True

    def sync_replicas(self, partition: Optional[int] = None) -> int:
        """Cut fresh snapshot copies for stale replicas (epoch catch-up).

        Covers one partition or (default) all of them; returns how many
        replica copies were refreshed.  A replica is stale when its store
        epoch differs from its primary's — the same check
        :meth:`select_serving` uses to route reads away from it.
        """
        partitions = range(self.partition_count) if partition is None else (partition,)
        refreshed = 0
        for current in partitions:
            assignment = self.assignment(current)
            primary_epoch = self.nodes[assignment.primary].hosted(current).store.epoch
            for node_id in assignment.replicas:
                node = self.nodes[node_id]
                if node.hosts(current) and node.hosted(current).store.epoch == primary_epoch:
                    continue
                previous = node.drop(current)
                node.host(current, self._clone_partition(current, node_id))
                if previous is not None:
                    self._retired.append(previous.store)
                refreshed += 1
        return refreshed

    # ------------------------------------------------------------------
    # statistics and lifecycle
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, object]:
        """Topology + per-partition epochs (the cluster's inspection surface)."""
        placements = {}
        for partition in range(self.partition_count):
            assignment = self.assignment(partition)
            placements[partition] = {
                "primary": assignment.primary,
                "replicas": list(assignment.replicas),
                "epoch": self.primary_store(partition).epoch,
            }
        return {
            "nodes": {
                node_id: {"partitions": list(node.partitions())}
                for node_id, node in self.nodes.items()
            },
            "partitions": placements,
            "partition_epochs": self.store.partition_epochs(),
            "epoch": self.store.epoch,
            "replication": self.replication,
        }

    def close(self) -> None:
        """Shut the router down and close every hosted and retired store."""
        if self.router is not None:
            self.router.close()
        for node in self.nodes.values():
            for partition in node.partitions():
                dropped = node.drop(partition)
                if dropped is not None:
                    dropped.store.close()
        for store in self._retired:
            store.close()
        self._retired = []
        if self._owns_store_dir and self._store_dir is not None:
            shutil.rmtree(self._store_dir, ignore_errors=True)
            self._store_dir = None

    # ------------------------------------------------------------------
    def _ensure_store_dir(self) -> str:
        if self._store_dir is None:
            self._store_dir = tempfile.mkdtemp(prefix="repro-cluster-")
            self._owns_store_dir = True
        return self._store_dir

    def _new_partition_store(self, partition: int, node_id: str) -> FragmentStore:
        spec = self._node_store
        if callable(spec):
            return spec(node_id, partition)
        if spec == "memory":
            return InMemoryStore()
        if spec == "disk":
            filename = f"{node_id}-p{partition}-g{next(self._generation)}.sqlite"
            return DiskStore(os.path.join(self._ensure_store_dir(), filename))
        raise ValueError(
            f"unknown node store spec {spec!r}; expected 'memory', 'disk' or a "
            "(node_id, partition) -> FragmentStore factory"
        )

    def _clone_partition(self, partition: int, target_node_id: str) -> FragmentStore:
        """Snapshot the partition's primary and restore it into a fresh store.

        The existing backend-independent snapshot machinery does the heavy
        lifting: postings, sizes, graph and the partition's epoch clock all
        travel, so the clone is indistinguishable from the primary at cut
        time — including for the epoch-equality freshness check.
        """
        source = self.primary_store(partition)
        snapshot_path = os.path.join(
            self._ensure_store_dir(),
            f"snapshot-p{partition}-g{next(self._generation)}.json",
        )
        source.snapshot(snapshot_path)
        try:
            return load_snapshot(
                snapshot_path,
                store=self._new_partition_store(partition, target_node_id),
            )
        finally:
            try:
                os.remove(snapshot_path)
            except OSError:
                pass


class ClusterSearchService(SearchService):
    """A stock :class:`~repro.serving.SearchService` over a cluster.

    The "searcher" is the cluster's :class:`QueryRouter` and the "store" is
    the :class:`~repro.cluster.ClusterStore` facade, so admission, the
    versioned result cache, single-flight coalescing and epoch invalidation
    all run unchanged — cache stamps carry the router epoch, whose ticks
    are derived one-to-one from per-partition commits.  Closing the service
    closes the cluster (router pool, every partition store, managed files).
    """

    def __init__(self, cluster: SearchCluster, **kwargs) -> None:
        if cluster.router is None:
            raise ValueError("the cluster has no router; build it with SearchCluster.build")
        self.cluster = cluster
        super().__init__(cluster.router, session=cluster.router.session(), **kwargs)

    def close(self) -> None:
        """Close the serving layer, then the cluster underneath it."""
        super().close()
        self.cluster.close()
