"""Per-node failure detection for the serving cluster.

One :class:`NodeHealth` per :class:`~repro.cluster.SearchNode` tracks
consecutive read failures behind a three-state circuit breaker:

* **closed** — the node serves normally; each success resets the
  consecutive-failure counter, each failure increments it, and reaching
  ``failure_threshold`` opens the circuit;
* **open** — the node is presumed dead: candidate selection skips it, so
  no query wastes deadline budget probing it.  After ``reset_seconds`` the
  breaker transitions to half-open on the next availability check;
* **half-open** — the node is offered traffic again as a probe: the first
  success closes the circuit, the first failure re-opens it (restarting
  the reset timer).

The breaker learns only from *observed* outcomes — the router reports
every per-copy read success/failure — so it needs no side channel to the
fault plane: a killed node fails its first ``failure_threshold`` reads
(each failed over to a replica) and is then fenced off until its probe
window reopens.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

#: Breaker states (stringly-typed on purpose: they surface verbatim in
#: ``SearchCluster.statistics()["health"]`` and the bench payload).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class NodeHealth:
    """One node's failure counters and circuit breaker (thread-safe)."""

    def __init__(
        self,
        node_id: str,
        failure_threshold: int = 3,
        reset_seconds: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_seconds < 0:
            raise ValueError(f"reset_seconds must be >= 0, got {reset_seconds}")
        self.node_id = node_id
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._failures_total = 0
        self._successes_total = 0
        self._opens_total = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current breaker state (open lazily decays to half-open)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def available(self) -> bool:
        """Whether the node should be offered traffic right now.

        Closed and half-open say yes (half-open is the probe); open says
        no until ``reset_seconds`` have elapsed since it opened, at which
        point the breaker moves to half-open and answers yes once more.
        """
        with self._lock:
            self._maybe_half_open()
            return self._state != OPEN

    def record_success(self) -> None:
        """One successful read: resets the counter, closes a probe."""
        with self._lock:
            self._successes_total += 1
            self._consecutive_failures = 0
            self._state = CLOSED
            self._opened_at = None

    def record_failure(self) -> str:
        """One failed read; returns the resulting breaker state."""
        with self._lock:
            self._maybe_half_open()
            self._failures_total += 1
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, timer restarted.
                self._trip()
            else:
                self._consecutive_failures += 1
                if self._state == CLOSED and self._consecutive_failures >= self.failure_threshold:
                    self._trip()
            return self._state

    def _trip(self) -> None:
        if self._state != OPEN:
            self._opens_total += 1
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = max(self._consecutive_failures, self.failure_threshold)

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and self._opened_at is not None:
            if self._clock() - self._opened_at >= self.reset_seconds:
                self._state = HALF_OPEN

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """One statistics row (state, counters) for cluster inspection."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failures_total": self._failures_total,
                "successes_total": self._successes_total,
                "opens_total": self._opens_total,
            }
