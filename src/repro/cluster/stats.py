"""Epoch-validated global term statistics: the fan-out-elimination cache.

Every routed query used to pay two full fan-out rounds: one scatter to sum
per-keyword posting counts into global document frequencies (the IDF every
partition then scores with), one to open the per-partition streams.  The
DF round reads nothing but the block *directories* — data that changes only
when some query keyword's postings change, which is exactly what the
store-owned :class:`~repro.store.EpochClock` already stamps.  So the round
is cacheable with the very revalidation rule the serving
:class:`~repro.serving.cache.ResultCache` uses:

* fast path — the facade store epoch equals the entry's stamp: nothing
  anywhere changed, serve the cached statistics;
* slow path — the store moved: the entry is fresh iff the keyword's
  postings epoch does not exceed the stamp; a fresh entry is re-stamped to
  the current epoch so later lookups take the fast path again.

One :class:`TermStatsEntry` per canonical keyword carries the **global
document frequency** (the exact integer sum of per-partition posting
counts) and the **per-partition weight ceilings** — each partition's
directory-wide :attr:`~repro.store.blocks.KeywordBlocks.max_weight`, read
for free from the same ``posting_blocks_for_many`` call the DF round
already performs.  Keywords absent from the corpus are cached too
(*negative entries*: frequency 0, no ceilings), so misses on unseen
keywords stop costing a full scatter.

The ceilings feed :func:`partition_bounds`: an admissible per-partition
upper bound on any queue entry a partition's stream could ever produce,
computed with the same two-sided bound math as
:meth:`~repro.core.scoring.DashScorer.block_plan` (at directory rather
than block granularity — both bound expressions are monotone in the weight
ceiling, so the directory-wide ceiling caps every block's bound).  A page
assembled inside a partition scores the size-weighted *average* of its
member fragments' single-fragment scores, so the per-fragment bound covers
expanded pages too; ceilings can only ever be stale *high* (the store
contract behind ``block_plan``'s exactness), so the bounds stay admissible
— a partition whose bound is 0 provably holds no relevant fragment and is
never contacted at all, and the router's merge only materializes a
partition's stream once its bound reaches the global dequeue frontier.

Invalidation is belt-and-braces: revalidation alone is already correct
(every DF-changing write ticks the keyword's facade epoch), and
write-through invalidation riding
:meth:`~repro.cluster.ClusterStore.apply_mutations` (via the mutation
listeners the facade exposes) additionally drops affected entries the
moment a batch commits, keeping the cache small and the slow path rare.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.scoring import _BOUND_INFLATION
from repro.store.base import FragmentStore


class TermStatsEntry:
    """One keyword's cached global statistics (mutable stamp, like a cache
    entry of :class:`~repro.serving.cache.ResultCache`)."""

    __slots__ = ("keyword", "frequency", "ceilings", "epoch")

    def __init__(
        self,
        keyword: str,
        frequency: int,
        ceilings: Mapping[int, float],
        epoch: int,
    ) -> None:
        self.keyword = keyword
        #: Global document frequency: the exact sum of per-partition posting
        #: counts.  0 is a *negative entry* — the keyword is nowhere.
        self.frequency = frequency
        #: partition -> directory-wide weight ceiling (``max_weight`` of the
        #: partition's block directory).  Partitions without the keyword are
        #: simply absent (ceiling 0).
        self.ceilings = dict(ceilings)
        self.epoch = epoch


class TermStatsCache:
    """A thread-safe LRU of :class:`TermStatsEntry`, revalidated per lookup.

    ``store`` is the cluster facade (:class:`~repro.cluster.ClusterStore`)
    whose epoch clock stamps and revalidates entries — the same clock the
    serving result cache validates against, so the two caches share one
    freshness authority.
    """

    def __init__(self, store: FragmentStore, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"term-stats capacity must be positive, got {capacity}")
        self._store = store
        self.capacity = capacity
        self._entries: "OrderedDict[str, TermStatsEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stale_drops = 0
        self.invalidations = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def lookup(self, keywords: Sequence[str]) -> Optional[Dict[str, TermStatsEntry]]:
        """Every keyword's fresh entry, or ``None`` if any is missing/stale.

        All-or-nothing on purpose: a query with even one unknown keyword
        must scatter the DF read anyway (one batched directory read per
        partition covers every keyword at once), so a partial hit saves
        nothing.  Fresh entries are re-stamped to the current epoch.
        """
        current = self._store.epoch
        found: Dict[str, TermStatsEntry] = {}
        stale: List[str] = []
        with self._lock:
            for keyword in keywords:
                entry = self._entries.get(keyword)
                if entry is None:
                    self.misses += len(keywords)
                    return None
                found[keyword] = entry
        for keyword, entry in found.items():
            if entry.epoch != current:
                # Slow path: the store moved somewhere; the entry survives
                # iff this keyword's postings did not move past the stamp
                # (epochs only grow), and is then valid *at* ``current``.
                if self._store.keyword_epoch(keyword) > entry.epoch:
                    stale.append(keyword)
                    continue
                entry.epoch = current
        with self._lock:
            if stale:
                for keyword in stale:
                    if self._entries.get(keyword) is found[keyword]:
                        del self._entries[keyword]
                self.stale_drops += len(stale)
                self.misses += len(keywords)
                return None
            for keyword in keywords:
                if self._entries.get(keyword) is found[keyword]:
                    self._entries.move_to_end(keyword)
            self.hits += len(keywords)
        return found

    def record(
        self,
        entries: Iterable[Tuple[str, int, Mapping[int, float]]],
        epoch: int,
    ) -> None:
        """Store ``(keyword, global frequency, partition ceilings)`` rows.

        ``epoch`` is the facade epoch observed *before* the DF scatter ran
        — the standard read-then-stamp ordering: any mutation landing after
        the stamp bumps the keyword's epoch past it and revalidation drops
        the entry, so a racing write can at worst cause a spurious miss,
        never a stale hit.
        """
        with self._lock:
            for keyword, frequency, ceilings in entries:
                self._entries[keyword] = TermStatsEntry(
                    keyword, frequency, ceilings, epoch
                )
                self._entries.move_to_end(keyword)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_keywords(self, keywords: Iterable[str]) -> int:
        """Write-through invalidation: drop the named keywords' entries.

        Wired as a :class:`~repro.cluster.ClusterStore` mutation listener —
        the facade already derives every batch's affected keywords for its
        epoch tick, and this rides the same commit point.  Returns how many
        entries were dropped.
        """
        dropped = 0
        with self._lock:
            for keyword in keywords:
                if self._entries.pop(keyword, None) is not None:
                    dropped += 1
            self.invalidations += dropped
        return dropped

    def invalidate(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, keyword: object) -> bool:
        with self._lock:
            return keyword in self._entries

    def statistics(self) -> Dict[str, int]:
        """Monotonic counters plus the current occupancy."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "stale_drops": self.stale_drops,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
            }


def partition_bounds(
    keywords: Sequence[str],
    idf: Mapping[str, float],
    ceilings: Mapping[str, Mapping[int, float]],
    partitions: Iterable[int],
) -> Dict[int, float]:
    """An admissible upper bound per partition on any queue entry score.

    ``ceilings`` maps keyword -> partition -> directory-wide weight ceiling
    (see :class:`TermStatsEntry`); ``idf`` holds the *global* IDF values the
    partitions score with.  For each partition the bound is the maximum
    over its present keywords of the two-sided
    :meth:`~repro.core.scoring.DashScorer.block_plan` expression evaluated
    at the directory ceiling — both expressions are monotone non-decreasing
    in the ceiling, so this caps every block bound, hence every member
    fragment's exact score, hence (size-weighted-average argument) every
    assembled page's score the partition could enqueue.  Bounds inherit the
    stale-high-only guarantee of the summaries and carry the same safety
    inflation, so pruning on them can never change the result set.

    A partition with no query keyword present gets bound 0.0 — it holds no
    relevant fragment, so its stream could never emit anything.
    """
    bounds: Dict[int, float] = {}
    for partition in partitions:
        local = {
            keyword: ceilings.get(keyword, {}).get(partition, 0.0)
            for keyword in keywords
        }
        best = 0.0
        for keyword in keywords:
            ceiling = local[keyword]
            if ceiling <= 0.0:
                continue
            keyword_idf = idf.get(keyword, 0.0)
            other_max_idf = 0.0
            others_sum = 0.0
            for other in keywords:
                if other == keyword:
                    continue
                other_idf = idf.get(other, 0.0)
                if other_idf > other_max_idf:
                    other_max_idf = other_idf
                others_sum += local[other] * other_idf
            bound_split = max(
                other_max_idf, ceiling * keyword_idf + (1.0 - ceiling) * other_max_idf
            )
            bound_sum = ceiling * keyword_idf + others_sum
            bound = min(bound_split, bound_sum) * _BOUND_INFLATION
            if bound > best:
                best = bound
        bounds[partition] = best
    return bounds
