"""One simulated cluster node hosting partition stores and their searchers.

A :class:`SearchNode` owns a set of *partition copies* — each one a complete
:class:`~repro.store.FragmentStore` (any backend; ``DiskStore`` for per-node
durability) holding one consistent-hash partition of the corpus, wrapped in
the standard read stack (:class:`~repro.core.fragment_index.InvertedFragmentIndex`,
:class:`~repro.core.fragment_graph.FragmentGraph`,
:class:`~repro.core.search.TopKSearcher`).  The same node may host the
*primary* copy of one partition and *replica* copies of others; which copy
serves a given query is the router's call (:mod:`repro.cluster.router`).

The node's query surface is deliberately the stream layer, not whole
searches: :meth:`open_stream` returns a
:class:`~repro.core.search.SearchStream` the router advances in merge
order, pulling only as many partial results as the global top-k actually
needs.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.search import SearchStream, TopKSearcher
from repro.core.urls import UrlFormulator
from repro.db.query import ParameterizedPSJQuery
from repro.store.base import FragmentStore
from repro.webapp.request import QueryStringSpec


class HostedPartition:
    """One partition copy on one node: its store plus the read stack."""

    def __init__(
        self,
        partition: int,
        store: FragmentStore,
        query: ParameterizedPSJQuery,
        query_string_spec: QueryStringSpec,
        uri: str,
    ) -> None:
        self.partition = partition
        self.store = store
        self.index = InvertedFragmentIndex(store=store)
        self.graph = FragmentGraph(query, store=store)
        self.searcher = TopKSearcher(
            index=self.index,
            graph=self.graph,
            url_formulator=UrlFormulator(
                query=query,
                query_string_spec=query_string_spec,
                application_uri=uri,
            ),
        )


class SearchNode:
    """One cluster node: partition stores, their searchers, and the seams
    the router fans out over."""

    def __init__(
        self,
        node_id: str,
        query: ParameterizedPSJQuery,
        query_string_spec: QueryStringSpec,
        uri: str,
    ) -> None:
        self.node_id = node_id
        self._query = query
        self._query_string_spec = query_string_spec
        self._uri = uri
        self._lock = threading.Lock()
        self._partitions: Dict[int, HostedPartition] = {}

    # ------------------------------------------------------------------
    # hosting
    # ------------------------------------------------------------------
    def host(self, partition: int, store: FragmentStore) -> HostedPartition:
        """Attach (or atomically replace) one partition copy on this node.

        Replacement is how a replica catches up and how a rebalanced
        partition arrives: the new store is fully restored before the swap,
        and searches already running against the old copy keep their
        consistent view — the old store object stays alive until its last
        reader drops it (the cluster retires and closes it later).
        """
        hosted = HostedPartition(
            partition, store, self._query, self._query_string_spec, self._uri
        )
        with self._lock:
            self._partitions[partition] = hosted
        return hosted

    def drop(self, partition: int) -> Optional[HostedPartition]:
        """Detach one partition copy (returns it for the cluster to retire)."""
        with self._lock:
            return self._partitions.pop(partition, None)

    def hosted(self, partition: int) -> HostedPartition:
        """The live copy of ``partition`` on this node (KeyError when absent)."""
        with self._lock:
            return self._partitions[partition]

    def hosts(self, partition: int) -> bool:
        """Whether this node currently holds a copy of ``partition``."""
        with self._lock:
            return partition in self._partitions

    def partitions(self) -> Tuple[int, ...]:
        """Partitions this node currently holds a copy of, in id order."""
        with self._lock:
            return tuple(sorted(self._partitions))

    def stores(self) -> List[FragmentStore]:
        """Every store this node currently hosts (for lifecycle management)."""
        with self._lock:
            return [hosted.store for hosted in self._partitions.values()]

    # ------------------------------------------------------------------
    # the router's per-node query surface
    # ------------------------------------------------------------------
    def document_frequencies(
        self, partition: int, keywords: Sequence[str]
    ) -> Dict[str, int]:
        """This partition copy's exact per-keyword document frequencies.

        Served from the block directories (one batched, cached read — the
        same read the stream's scorer performs next), these are exact
        integers; the router sums them across partitions into the global
        DF, so every node scores with bit-identical global IDF.
        """
        hosted = self.hosted(partition)
        directories = hosted.store.posting_blocks_for_many(tuple(keywords))
        return {
            keyword: directories[keyword].posting_count for keyword in dict.fromkeys(keywords)
        }

    def open_stream(
        self,
        partition: int,
        keywords: Sequence[str],
        k: int,
        size_threshold: int,
        idf_overrides: Dict[str, float],
    ) -> SearchStream:
        """Open this partition copy's bound-ordered stream for one query."""
        return self.hosted(partition).searcher.stream(
            keywords, k, size_threshold, idf_overrides=idf_overrides
        )
