"""Simulated multi-node search cluster: partitioned scatter-gather serving.

The cluster package stacks on everything below it without forking any of
it.  A built corpus is split into consistent-hash partitions that never
cut a db-page chain (:class:`GroupPartitioner`), partitions are placed on
:class:`SearchNode`\\ s by a :class:`HashRing` (primary + replicas), and a
:class:`QueryRouter` answers queries by scatter-gather: global document
frequencies first (served from the epoch-validated :class:`TermStatsCache`
when warm, so steady-state queries pay one fan-out round instead of two),
then per-partition bound-ordered
:class:`~repro.core.search.SearchStream`\\ s merged in exact dequeue
order — results are byte-identical to a single-store run, partitions whose
admissible bound is zero are pruned before any stream opens, and streams
whose bounds never reach the global frontier are short-circuited.

:class:`ClusterStore` is the write/freshness facade (a real
:class:`~repro.store.FragmentStore` routing writes to partition primaries
and deriving a cluster-wide epoch clock), :class:`SearchCluster` owns the
topology (replica catch-up and live rebalancing via the snapshot
machinery), and :class:`ClusterSearchService` is a stock serving layer
over the router — see :meth:`repro.core.engine.DashEngine.cluster`.

Serving is fault-tolerant: per-node :class:`NodeHealth` circuit breakers
(fed by router-observed outcomes) fence off dying nodes, every
per-partition read fails over across fresh replicas under an optional
per-query deadline, dead primaries are auto-promoted, and queries that
lose every copy of a partition either raise a typed
:class:`~repro.serving.PartialResultError` or (``degraded_ok=True``)
return flagged, never-cached partial results.  Chaos is injected with
:class:`repro.faults.FaultPlane`.
"""

from repro.cluster.health import NodeHealth
from repro.cluster.node import HostedPartition, SearchNode
from repro.cluster.partitioning import GroupPartitioner, HashRing
from repro.cluster.router import (
    ClusterSearchService,
    PartitionAssignment,
    QueryRouter,
    RouterSession,
    SearchCluster,
)
from repro.cluster.stats import TermStatsCache, TermStatsEntry, partition_bounds
from repro.cluster.store import ClusterStore, populate_from_store

__all__ = [
    "ClusterSearchService",
    "ClusterStore",
    "GroupPartitioner",
    "HashRing",
    "HostedPartition",
    "NodeHealth",
    "PartitionAssignment",
    "QueryRouter",
    "RouterSession",
    "SearchCluster",
    "SearchNode",
    "TermStatsCache",
    "TermStatsEntry",
    "partition_bounds",
    "populate_from_store",
]
