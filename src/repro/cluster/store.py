"""The cluster's facade :class:`~repro.store.FragmentStore`.

:class:`ClusterStore` makes a partitioned cluster look like one store:

* **writes route** to the owning partition's *primary* store (decided by the
  :class:`~repro.cluster.GroupPartitioner`, so a db-page chain never
  straddles partitions) and then tick this facade's own
  :class:`~repro.store.EpochClock` — the *router clock* the serving layer
  stamps cache entries against.  The partition store's clock ticks first (its
  own write methods do), the facade's second, so by the time a cache stamp
  could observe the facade's new epoch the partition data is already
  committed — the same tick-after-write ordering every single store obeys.
  Per-partition clocks stay live underneath for replica freshness checks and
  catch-up (see :class:`~repro.cluster.SearchCluster`).
* **reads merge** across every partition primary: inverted lists concatenate
  and re-sort under the canonical ``(-occurrences, str(identifier))`` order
  (fragment identifiers are unique across partitions, so the merged order is
  total and identical to a single store's), counts sum, and per-fragment
  lookups route to the owner.

Because the facade honours the full store contract — including
``snapshot``/``apply_mutations`` and the epoch interface — the serving
layer's :class:`~repro.serving.SearchService`, its result cache and its
epoch invalidation run over a cluster *unchanged*; they cannot tell the
difference.  The scatter-gather hot path does **not** read through this
facade: the router opens per-partition search streams directly on the nodes
(:mod:`repro.cluster.router`).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Sequence, Set, Tuple

from repro.core.fragments import FragmentId
from repro.cluster.partitioning import GroupPartitioner
from repro.store.base import FragmentStore, StoreError
from repro.store.epochs import EpochClock
from repro.store.memory import posting_sort_key
from repro.store.mutations import (
    Mutation,
    RemoveFragment,
    ReplaceFragment,
    normalize_mutations,
)
from repro.text.inverted_index import Posting


class ClusterStore(FragmentStore):
    """One logical store over the cluster's partition primaries.

    ``primary_resolver`` returns the current primary store of a partition —
    the indirection (rather than a fixed store list) is what lets a
    rebalance swap a partition's backing store atomically underneath the
    facade while everything stacked on it keeps working.
    """

    def __init__(
        self,
        partitioner: GroupPartitioner,
        primary_resolver: Callable[[int], FragmentStore],
        clock: "EpochClock" = None,
    ) -> None:
        super().__init__(clock=clock)
        self._partitioner = partitioner
        self._primary = primary_resolver
        self._mutation_listeners: List[Callable[[Set[str]], None]] = []

    # ------------------------------------------------------------------
    # mutation listeners (write-through invalidation)
    # ------------------------------------------------------------------
    def add_mutation_listener(self, listener: Callable[[Set[str]], None]) -> None:
        """Call ``listener(affected_keywords)`` after each committed write.

        Fired *after* the facade clock ticks, so by the time a listener
        runs, epoch-based revalidation already sees the write — listeners
        are a write-through fast path (the router's
        :class:`~repro.cluster.stats.TermStatsCache` drops affected
        entries eagerly instead of waiting for a stale lookup), never a
        correctness requirement.
        """
        self._mutation_listeners.append(listener)

    def remove_mutation_listener(self, listener: Callable[[Set[str]], None]) -> None:
        """Detach a previously added listener (no-op when absent)."""
        try:
            self._mutation_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_mutation(self, affected_keywords: Set[str]) -> None:
        if not self._mutation_listeners or not affected_keywords:
            return
        for listener in tuple(self._mutation_listeners):
            listener(affected_keywords)

    # ------------------------------------------------------------------
    # partition plumbing
    # ------------------------------------------------------------------
    @property
    def partition_count(self) -> int:
        """Number of corpus partitions (fixed for the cluster's lifetime)."""
        return self._partitioner.partitions

    def partition_of(self, identifier: FragmentId) -> int:
        """The partition owning ``identifier`` (equality-group hash)."""
        return self._partitioner.partition_of(identifier)

    def partition_epochs(self) -> Dict[int, int]:
        """Each partition primary's current store-wide epoch.

        Cache stamps carry the facade epoch (one scalar, derived from the
        same per-partition commits); this view is what replica catch-up and
        the statistics surface report per partition.
        """
        return {
            partition: self._primary(partition).epoch
            for partition in range(self.partition_count)
        }

    def _owner(self, identifier: FragmentId) -> FragmentStore:
        return self._primary(self._partitioner.partition_of(identifier))

    def _primaries(self) -> List[FragmentStore]:
        return [self._primary(partition) for partition in range(self.partition_count)]

    @property
    def shard_count(self) -> int:
        """Partitions double as shards for the searcher's fan-out seams."""
        return self.partition_count

    def shard_of(self, identifier: FragmentId) -> int:
        """Same mapping as :meth:`partition_of` (the store-contract name)."""
        return self.partition_of(identifier)

    # ------------------------------------------------------------------
    # postings section — writes
    # ------------------------------------------------------------------
    def touch_fragment(self, identifier: FragmentId) -> None:
        identifier = tuple(identifier)
        self._owner(identifier).touch_fragment(identifier)
        self._epoch_clock.tick_fragment(identifier)

    def add_posting(self, keyword: str, identifier: FragmentId, occurrences: int) -> None:
        identifier = tuple(identifier)
        self._owner(identifier).add_posting(keyword, identifier, occurrences)
        self._epoch_clock.tick_posting(keyword, identifier)
        self._notify_mutation({keyword})

    def remove_fragment(self, identifier: FragmentId) -> None:
        identifier = tuple(identifier)
        owner = self._owner(identifier)
        # The facade must stamp the keywords whose inverted lists shrink,
        # and only the owner knows them — read them before they are gone.
        keywords = tuple(owner.fragment_term_frequencies(identifier))
        owner.remove_fragment(identifier)
        self._epoch_clock.tick_removal(identifier, keywords)
        self._notify_mutation(set(keywords))

    def finalize(self) -> None:
        for store in self._primaries():
            store.finalize()

    def apply_mutations(self, batch: Sequence[Mutation]) -> int:
        """Apply one batch, each op routed to its owning partition.

        Every partition applies its sub-batch with its native bulk form
        (ticking its own clock once), then the facade clock ticks **once**
        for the whole batch — exactly one router epoch per maintenance
        round, matching the single-store contract the serving cache's
        invalidation granularity is built on.
        """
        ops = normalize_mutations(batch)
        if not ops:
            return 0
        grouped: Dict[int, List[Mutation]] = {}
        for op in ops:
            grouped.setdefault(self.partition_of(op.identifier), []).append(op)
        affected_keywords: Set[str] = set()
        affected_fragments: Set[FragmentId] = set()
        applied = 0
        for partition, partition_ops in grouped.items():
            store = self._primary(partition)
            # Stamp the keywords the batch may detach: a replace/remove
            # drops the fragment's *old* postings, known only to the owner.
            replaced = [
                op.identifier
                for op in partition_ops
                if isinstance(op, (ReplaceFragment, RemoveFragment))
            ]
            if replaced:
                old_vectors = store.fragment_term_frequencies_for(replaced)
                for vector in old_vectors.values():
                    affected_keywords.update(vector)
            for op in partition_ops:
                affected_fragments.add(op.identifier)
                if isinstance(op, ReplaceFragment):
                    affected_keywords.update(
                        keyword for keyword, _occurrences in op.term_frequencies
                    )
            applied += store.apply_mutations(partition_ops)
        self._epoch_clock.tick_batch(affected_keywords, affected_fragments)
        self._notify_mutation(affected_keywords)
        return applied

    # ------------------------------------------------------------------
    # postings section — reads
    # ------------------------------------------------------------------
    def postings(self, keyword: str) -> Tuple[Posting, ...]:
        merged: List[Posting] = []
        for store in self._primaries():
            merged.extend(store.postings(keyword))
        merged.sort(key=posting_sort_key)
        return tuple(merged)

    def postings_for_many(self, keywords: Sequence[str]) -> Dict[str, Tuple[Posting, ...]]:
        unique = list(dict.fromkeys(keywords))
        gathered = [store.postings_for_many(unique) for store in self._primaries()]
        merged: Dict[str, Tuple[Posting, ...]] = {}
        for keyword in unique:
            combined: List[Posting] = []
            for part in gathered:
                combined.extend(part.get(keyword, ()))
            combined.sort(key=posting_sort_key)
            merged[keyword] = tuple(combined)
        return merged

    def fragment_frequency(self, keyword: str) -> int:
        return sum(store.fragment_frequency(keyword) for store in self._primaries())

    def document_frequencies(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for store in self._primaries():
            for keyword, frequency in store.document_frequencies().items():
                totals[keyword] = totals.get(keyword, 0) + frequency
        return totals

    def term_frequency(self, keyword: str, identifier: FragmentId) -> int:
        return self._owner(tuple(identifier)).term_frequency(keyword, tuple(identifier))

    def fragment_term_frequencies(self, identifier: FragmentId) -> Dict[str, int]:
        return self._owner(tuple(identifier)).fragment_term_frequencies(tuple(identifier))

    def fragment_term_frequencies_for(
        self, identifiers: Sequence[FragmentId]
    ) -> Dict[FragmentId, Dict[str, int]]:
        grouped = self._group_by_partition(identifiers)
        vectors: Dict[FragmentId, Dict[str, int]] = {}
        for partition, members in grouped.items():
            vectors.update(self._primary(partition).fragment_term_frequencies_for(members))
        return vectors

    def fragment_size(self, identifier: FragmentId) -> int:
        return self._owner(tuple(identifier)).fragment_size(tuple(identifier))

    def fragment_sizes(self) -> Dict[FragmentId, int]:
        sizes: Dict[FragmentId, int] = {}
        for store in self._primaries():
            sizes.update(store.fragment_sizes())
        return sizes

    def fragment_sizes_for(self, identifiers: Sequence[FragmentId]) -> Dict[FragmentId, int]:
        grouped = self._group_by_partition(identifiers)
        sizes: Dict[FragmentId, int] = {}
        for partition, members in grouped.items():
            sizes.update(self._primary(partition).fragment_sizes_for(members))
        return sizes

    def fragment_ids(self) -> Tuple[FragmentId, ...]:
        identifiers: List[FragmentId] = []
        for store in self._primaries():
            identifiers.extend(store.fragment_ids())
        return tuple(identifiers)

    def has_fragment(self, identifier: FragmentId) -> bool:
        return self._owner(tuple(identifier)).has_fragment(tuple(identifier))

    def fragment_count(self) -> int:
        return sum(store.fragment_count() for store in self._primaries())

    def vocabulary(self) -> Tuple[str, ...]:
        keywords: Set[str] = set()
        for store in self._primaries():
            keywords.update(store.vocabulary())
        return tuple(sorted(keywords))

    def vocabulary_size(self) -> int:
        keywords: Set[str] = set()
        for store in self._primaries():
            keywords.update(store.vocabulary())
        return len(keywords)

    def iter_items(self) -> Iterator[Tuple[str, Tuple[Posting, ...]]]:
        for keyword in self.vocabulary():
            yield keyword, self.postings(keyword)

    # ------------------------------------------------------------------
    # graph section
    # ------------------------------------------------------------------
    def add_node(self, identifier: FragmentId, keyword_count: int) -> None:
        identifier = tuple(identifier)
        self._owner(identifier).add_node(identifier, keyword_count)
        self._epoch_clock.tick_fragment(identifier)

    def remove_node(self, identifier: FragmentId) -> None:
        identifier = tuple(identifier)
        self._owner(identifier).remove_node(identifier)
        self._epoch_clock.tick_fragment(identifier)

    def has_node(self, identifier: FragmentId) -> bool:
        return self._owner(tuple(identifier)).has_node(tuple(identifier))

    def node_keyword_count(self, identifier: FragmentId) -> int:
        return self._owner(tuple(identifier)).node_keyword_count(tuple(identifier))

    def set_node_keyword_count(self, identifier: FragmentId, keyword_count: int) -> None:
        identifier = tuple(identifier)
        self._owner(identifier).set_node_keyword_count(identifier, keyword_count)
        self._epoch_clock.tick_fragment(identifier)

    def node_ids(self) -> Tuple[FragmentId, ...]:
        identifiers: List[FragmentId] = []
        for store in self._primaries():
            identifiers.extend(store.node_ids())
        return tuple(identifiers)

    def node_count(self) -> int:
        return sum(store.node_count() for store in self._primaries())

    def add_neighbor(self, identifier: FragmentId, neighbor: FragmentId) -> None:
        identifier, neighbor = tuple(identifier), tuple(neighbor)
        owning = self.partition_of(identifier)
        if self.partition_of(neighbor) != owning:
            # Equality-group partitioning guarantees adjacency never crosses
            # partitions; an edge that would is a partitioner bug, and
            # storing it would silently break search locality.
            raise StoreError(
                f"cross-partition edge {identifier!r} -> {neighbor!r}: adjacency "
                "must stay inside one equality group / partition"
            )
        self._primary(owning).add_neighbor(identifier, neighbor)
        self._epoch_clock.tick_fragment(identifier)

    def discard_neighbor(self, identifier: FragmentId, neighbor: FragmentId) -> None:
        identifier = tuple(identifier)
        self._owner(identifier).discard_neighbor(identifier, tuple(neighbor))
        self._epoch_clock.tick_fragment(identifier)

    def neighbors(self, identifier: FragmentId) -> Tuple[FragmentId, ...]:
        return self._owner(tuple(identifier)).neighbors(tuple(identifier))

    def edge_count(self) -> int:
        return sum(store.edge_count() for store in self._primaries())

    # ------------------------------------------------------------------
    def _group_by_partition(
        self, identifiers: Sequence[FragmentId]
    ) -> Dict[int, List[FragmentId]]:
        grouped: Dict[int, List[FragmentId]] = {}
        for identifier in dict.fromkeys(tuple(entry) for entry in identifiers):
            grouped.setdefault(self.partition_of(identifier), []).append(identifier)
        return grouped


def populate_from_store(cluster: ClusterStore, source: FragmentStore) -> None:
    """Replay a built single store into the cluster facade.

    Partition-restricted build: every posting, size entry, node and edge
    routes to its owning partition's primary through the facade's write
    methods, and the facade clock finally loads the *source* clock's state —
    so cache stamps taken against the source store stay comparable, exactly
    like a snapshot restore.  Partition stores keep the clocks their own
    replayed writes produced; replicas are cut from those afterwards.
    """
    source.finalize()
    for identifier in source.fragment_ids():
        cluster.touch_fragment(identifier)
    for keyword, postings in source.iter_items():
        for posting in postings:
            cluster.add_posting(keyword, posting.document_id, posting.term_frequency)
    cluster.finalize()
    for identifier in source.node_ids():
        cluster.add_node(identifier, source.node_keyword_count(identifier))
    for identifier in source.node_ids():
        for neighbor in source.neighbors(identifier):
            cluster.add_neighbor(identifier, neighbor)
    epoch, keyword_epochs, fragment_epochs = source.epochs.state()
    cluster.load_epochs(epoch, keyword_epochs, fragment_epochs, floor=source.epochs.floor)
