"""Legacy setup shim.

The environment this reproduction targets may have an older setuptools without
the ``wheel`` package, in which case PEP 517 editable installs fail with
``invalid command 'bdist_wheel'``.  Keeping a ``setup.py`` lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
classic develop install.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
