#!/usr/bin/env python
"""Serving quickstart: build an engine, serve concurrent queries, apply an
update, observe epoch-based invalidation.

Walks the serving layer end to end over the paper's running example:

1. build a Dash engine over fooddb (sharded store);
2. wrap it in a ``SearchService`` (``engine.serving(...)``) — query admission,
   versioned LRU result cache, thread-pooled batches;
3. serve a concurrent batch and show cold-vs-hot latencies;
4. deploy the ``SearchGateway`` on the simulated web server next to the
   ``Search`` application, so one host answers keyword queries *and* serves
   the suggested db-pages;
5. apply a database update through the ``IncrementalMaintainer`` and watch
   the cache drop exactly the queries the update touched.

Run with:  PYTHONPATH=src python examples/serving_quickstart.py
"""

from repro.core import DashEngine, IncrementalMaintainer
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.serving import SearchGateway
from repro.webapp import WebApplication, WebServer
from repro.webapp.request import QueryStringSpec


def main() -> None:
    # 1. Engine over fooddb, on the hash-partitioned store.
    database = build_fooddb()
    application = WebApplication(
        name="Search",
        uri="www.example.com/Search",
        query=fooddb_search_query(database),
        query_string_spec=QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max"))),
    )
    engine = DashEngine.build(application, database, store="sharded", shards=4)
    print(f"engine built: {engine.index.fragment_count} fragments, "
          f"{engine.store.shard_count} shards, store epoch {engine.store.epoch}")

    # 2. The serving layer: admission + versioned cache + worker pool.
    service = engine.serving(cache_size=256, workers=4, default_k=3, default_size_threshold=20)

    # 3. A concurrent batch, twice: the second pass is served from cache.
    batch = ["burger", "thai burger", "coffee", "noodle"]
    cold = service.search_many(batch)
    hot = service.search_many(batch)
    print("\ncold vs hot (same batch):")
    for request, cold_result, hot_result in zip(batch, cold, hot):
        print(f"  {request!r:16} cold {cold_result.elapsed_seconds * 1000:7.3f} ms   "
              f"hot {hot_result.elapsed_seconds * 1000:7.3f} ms  cached={hot_result.cached}")

    # 4. One host serves the search endpoint and the db-pages it points at.
    server = WebServer(database, host="www.example.com")
    server.deploy(application)
    server.deploy(SearchGateway(service))
    page = server.get("www.example.com/dbsearch?q=burger&k=2")
    print("\nGET www.example.com/dbsearch?q=burger&k=2")
    for line in page.text.splitlines():
        print(f"  {line}")
    best_url = page.text.splitlines()[0].split()[1]
    db_page = server.get(best_url)
    print(f"  dereferenced #1 -> {db_page.record_count} rows, "
          f"contains 'burger': {db_page.contains_keyword('burger')}")

    # 5. A database update invalidates exactly what it touched.
    maintainer = IncrementalMaintainer(engine.application.query, database,
                                       engine.index, engine.graph)
    cached_before = service.search("milkshake")
    print(f"\n'milkshake' before update: {len(cached_before.results)} results "
          f"(epoch {cached_before.epoch})")
    affected = maintainer.insert("comment", ("901", "001", "120", "Great milkshake", "07/12"))
    print(f"inserted a comment; affected fragments {affected}, epoch -> {maintainer.epoch}")

    refreshed = service.search("milkshake")
    print(f"'milkshake' after update : {len(refreshed.results)} results, "
          f"served from cache: {refreshed.cached}")
    for result in refreshed.results:
        print(f"  {result.url}  score={result.score:.4f}")
    # "coffee" lives on the updated (American, 10) fragment, so it would be
    # (correctly) dropped too; "noodle" only touches the Thai chain.
    untouched = service.search("noodle")
    print(f"'noodle' (untouched)     : served from cache: {untouched.cached}")

    statistics = service.statistics()
    print(f"\nservice statistics: {statistics['queries']} queries, "
          f"{statistics['cache']['hits']} hits, "
          f"{statistics['cache']['stale_drops']} stale drops, "
          f"{statistics['computed']} computed")
    service.close()


if __name__ == "__main__":
    main()
