#!/usr/bin/env python
"""Persistence quickstart: crawl once to disk, reopen fresh, serve queries.

Walks the persistent backend end to end over the paper's running example:

1. build a Dash engine over fooddb onto the on-disk store
   (``store="disk"`` — sqlite, standard library only) and close it, as a
   crawl-and-exit process would;
2. re-attach in a "fresh process" with ``DashEngine.open(path, ...)`` — no
   crawl runs, and the persisted epoch clock comes back with the data;
3. deploy a ``SearchGateway`` over the reopened engine and answer keyword
   queries on the simulated web server;
4. apply a database update through the ``IncrementalMaintainer`` — the swap
   is one crash-safe sqlite transaction — and watch the post-restart cache
   invalidate precisely;
5. snapshot the store into a backend-independent file and restore it into a
   plain in-memory store (dataset reuse without sqlite).

Run with:  PYTHONPATH=src python examples/persistence_quickstart.py
"""

import os
import tempfile

from repro.core import DashEngine, IncrementalMaintainer
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.serving import SearchGateway
from repro.store import FragmentStore
from repro.webapp import WebApplication, WebServer
from repro.webapp.request import QueryStringSpec


def make_application(database) -> WebApplication:
    return WebApplication(
        name="Search",
        uri="www.example.com/Search",
        query=fooddb_search_query(database),
        query_string_spec=QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max"))),
    )


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-persistence-")
    store_path = os.path.join(workdir, "fooddb.sqlite")

    # 1. Crawl once, onto disk, then exit the "crawler process".
    database = build_fooddb()
    application = make_application(database)
    engine = DashEngine.build(application, database, store="disk", store_path=store_path)
    built_epoch = engine.store.epoch
    print(f"crawled to {store_path}: {engine.index.fragment_count} fragments, "
          f"epoch {built_epoch}")
    engine.store.close()
    del engine

    # 2. A "fresh process": re-attach without re-crawling.  The database
    #    object is rebuilt too — only the sqlite file carried over.
    database = build_fooddb()
    application = make_application(database)
    engine = DashEngine.open(store_path, application, database)
    statistics = engine.statistics()
    print(f"reopened: algorithm={statistics['algorithm']!r}, "
          f"{statistics['fragments']} fragments, epoch {engine.store.epoch} "
          f"(persisted clock survived: {engine.store.epoch == built_epoch})")

    # 3. Serve through the gateway, exactly like a never-restarted host.
    service = engine.serving(cache_size=256, workers=2, default_k=3,
                             default_size_threshold=20)
    server = WebServer(database, host="www.example.com")
    server.deploy(application)
    server.deploy(SearchGateway(service))
    page = server.get("www.example.com/dbsearch?q=thai+burger&k=3")
    print("\nGET www.example.com/dbsearch?q=thai+burger&k=3")
    for line in page.text.splitlines():
        print(f"  {line}")

    # 4. Post-restart maintenance: one crash-safe transaction per fragment
    #    swap, and the reopened clock invalidates the cache precisely.
    warmed = service.search("burger")
    service.search("thai")  # warm the Thai chain's entry too
    maintainer = IncrementalMaintainer(engine.application.query, database,
                                       engine.index, engine.graph)
    affected = maintainer.insert(
        "restaurant", ("008", "Burger Basement", "American", 9, 4.9)
    )
    refreshed = service.search("burger")
    untouched = service.search("thai")
    print(f"\ninserted a restaurant; affected fragments {affected}")
    print(f"'burger' re-served from cache: {refreshed.cached} "
          f"(epoch {warmed.epoch} -> {refreshed.epoch})")
    print(f"'thai' (untouched chain) from cache: {untouched.cached}")

    # 5. Snapshots travel across backends: sqlite -> file -> in-memory.
    snapshot_path = os.path.join(workdir, "fooddb.snapshot")
    engine.store.snapshot(snapshot_path)
    restored = FragmentStore.from_snapshot(snapshot_path)  # default: in-memory
    print(f"\nsnapshot restored into {type(restored).__name__}: "
          f"{restored.fragment_count()} fragments, epoch {restored.epoch} "
          f"(matches sqlite store: {restored.epoch == engine.store.epoch})")

    service.close()
    engine.store.close()
    print(f"\nartifacts kept in {workdir}")


if __name__ == "__main__":
    main()
