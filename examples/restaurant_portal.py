#!/usr/bin/env python
"""Scenario: a restaurant-review portal compares Dash with prior approaches.

The paper motivates Dash with a database-driven restaurant site whose pages
cannot be reached by conventional crawling.  This example builds that site
over ``fooddb`` and contrasts, for the same keyword queries,

* the trial-query-string *surfacing* crawler (Section I),
* DISCOVER-style relational keyword search (Section II),
* the single-derived-relation (search-appliance) approach (Section II),
* the materialize-every-page approach (Section IV), and
* Dash's fragment-based engine,

reporting what each returns and what it cost to build.

Run with:  python examples/restaurant_portal.py
"""

from repro.analysis import ApplicationAnalyzer
from repro.baselines import (
    MaterializedPageSearch,
    RelationalKeywordSearch,
    SingleRelationSearch,
    SurfacingCrawler,
)
from repro.core import DashEngine
from repro.datasets.fooddb import FOODDB_SEARCH_SERVLET_SOURCE, build_fooddb
from repro.webapp import WebServer

KEYWORDS = ["burger", "coffee"]


def main() -> None:
    database = build_fooddb()
    analyzed = ApplicationAnalyzer(database).analyze(FOODDB_SEARCH_SERVLET_SOURCE, name="Search")
    application = analyzed.to_web_application(
        "www.example.com/Search", source=FOODDB_SEARCH_SERVLET_SOURCE
    )
    server = WebServer(database, host="www.example.com")
    server.deploy(application)

    print("=== 1. Deep-web surfacing (trial query strings against the live site) ===")
    crawler = SurfacingCrawler(server, application)
    report = crawler.crawl_with_values(
        {"c": ["American", "Thai", "French"], "l": [5, 10, 15, 20], "u": [5, 10, 15, 20]}
    )
    print(f"  submitted {report.trial_query_strings} trial query strings "
          f"({report.application_invocations} application invocations)")
    print(f"  empty pages: {report.empty_pages}, duplicate pages: {report.duplicate_pages}, "
          f"indexed pages: {report.indexed_pages}")
    for keyword in KEYWORDS:
        print(f"  top result for {keyword!r}: {crawler.search([keyword], k=1)}")

    print("\n=== 2. Relational keyword search (DISCOVER-style joined records) ===")
    relational = RelationalKeywordSearch(database)
    for keyword in KEYWORDS:
        results = relational.search([keyword], k=3)
        print(f"  {keyword!r}: {len(results)} joined result records")
        for result in results[:2]:
            print(f"     {result.text()[:90]}")

    print("\n=== 3. Single derived relation (search-appliance style) ===")
    single = SingleRelationSearch(analyzed.query, database)
    single.build()
    for keyword in KEYWORDS:
        records = single.search([keyword], k=3)
        print(f"  {keyword!r}: {len(records)} individual records (no grouping into pages)")

    print("\n=== 4. Materialize every db-page ===")
    materialized = MaterializedPageSearch(application, database)
    materialized.build()
    results = materialized.search(["burger"], k=10)
    print(f"  generated {materialized.report.pages_generated} pages "
          f"({materialized.report.total_page_keywords} indexed keyword occurrences)")
    print(f"  'burger' returns {len(results)} pages, "
          f"{materialized.redundancy_of_results(results):.0%} of which are covered by another result")

    print("\n=== 5. Dash (db-page fragments) ===")
    engine = DashEngine.build(application, database, algorithm="integrated")
    print(f"  indexed {engine.index.fragment_count} fragments "
          f"({sum(engine.index.fragment_sizes.values())} keyword occurrences)")
    for keyword in KEYWORDS:
        for result in engine.search([keyword], k=2, size_threshold=20):
            page = server.get(result.url)
            print(f"  {keyword!r}: {result.url}  ({page.record_count} rows, score {result.score:.3f})")


if __name__ == "__main__":
    main()
