#!/usr/bin/env python
"""Quickstart: the paper's running example, end to end.

Builds the ``fooddb`` database (Figure 2), statically analyses the ``Search``
servlet (Figure 3) to recover its parameterized PSJ query and query-string
mapping, crawls the database into db-page fragments with the integrated
MapReduce algorithm, and answers the keyword search of Example 7 — then
dereferences the suggested URLs against a simulated web server to show that
they really generate db-pages containing the keyword.

Run with:  python examples/quickstart.py
"""

from repro.analysis import ApplicationAnalyzer
from repro.core import DashEngine
from repro.datasets.fooddb import FOODDB_SEARCH_SERVLET_SOURCE, build_fooddb
from repro.webapp import WebServer


def main() -> None:
    # 1. The backend database and the web application's servlet source.
    database = build_fooddb()
    print(f"fooddb: {database.total_records()} records in {list(database.relation_names)}")

    # 2. Web application analysis (Section III): recover the parameterized
    #    query and the reverse query-string parsing logic from the source.
    analyzer = ApplicationAnalyzer(database)
    analyzed = analyzer.analyze(FOODDB_SEARCH_SERVLET_SOURCE, name="Search")
    print("\nRecovered application query:")
    print(f"  {analyzed.symbolic_sql}")
    print(f"  query-string fields: {dict(analyzed.query_string_spec.fields)}")

    application = analyzed.to_web_application(
        "www.example.com/Search", source=FOODDB_SEARCH_SERVLET_SOURCE
    )

    # 3. Database crawling + fragment indexing + fragment graph (Sections IV-VI).
    engine = DashEngine.build(application, database, algorithm="integrated")
    stats = engine.statistics()
    print("\nDash engine built:")
    print(f"  db-page fragments : {stats['fragments']}")
    print(f"  vocabulary        : {stats['vocabulary']} keywords")
    print(f"  fragment graph    : {stats['graph_edges']} edges")
    print(f"  fragment sizes    : {sorted(engine.index.fragment_sizes.items(), key=str)}")

    # 4. Top-k db-page search (Example 7: keyword 'burger', k=2, s=20).
    results = engine.search(["burger"], k=2, size_threshold=20)
    print("\nTop-2 db-pages for keyword 'burger' (s=20):")
    for rank, result in enumerate(results, start=1):
        print(f"  {rank}. {result.url}")
        print(f"     score={result.score:.4f}  fragments={result.fragments}  size={result.size}")

    # 5. Validate the suggested URLs against a live (simulated) web server.
    server = WebServer(database, host="www.example.com")
    server.deploy(application)
    print("\nDereferencing the suggested URLs:")
    for result in results:
        page = server.get(result.url)
        marker = "contains 'burger'" if page.contains_keyword("burger") else "MISSING KEYWORD"
        print(f"  {result.url} -> {page.record_count} result rows, {marker}")

    # 6. The serving store is pluggable: the same engine over a sharded
    #    backend (hash-partitioned, parallel lookup fan-out) returns exactly
    #    the same ranked URLs — `store=` is the only change.
    sharded_engine = DashEngine.build(
        application, database, algorithm="integrated", store="sharded", shards=4
    )
    sharded_results = sharded_engine.search(["burger"], k=2, size_threshold=20)
    stats = sharded_engine.statistics()
    print(f"\nSame search on {stats['store_backend']} ({stats['store_shards']} shards):")
    for rank, result in enumerate(sharded_results, start=1):
        print(f"  {rank}. {result.url}  score={result.score:.4f}")
    assert [r.url for r in sharded_results] == [r.url for r in results]


if __name__ == "__main__":
    main()
