#!/usr/bin/env python
"""Maintenance quickstart: build on disk, serve, stream mutations through the
asynchronous write path, observe epoch-precise cache invalidation.

Walks the write-path overhaul end to end over the paper's running example:

1. build a Dash engine over fooddb onto a persistent ``DiskStore`` file,
   holding the exclusive single-writer role (a second writer process would
   be rejected at the lock file);
2. wrap it in ``engine.serving(maintenance=True)`` — the usual cached,
   concurrent ``SearchService`` plus a ``MaintenanceService``: a dedicated
   writer thread that queues, coalesces and applies mutation batches, each
   batch one crash-safe sqlite transaction fenced against in-flight search
   computations;
3. warm the cache, then stream a burst of inserts and deletes through the
   queue (also via the gateway's ``op=insert``/``op=delete`` HTTP routes)
   and watch the burst coalesce into a handful of applied batches;
4. show epoch-precise invalidation: queries whose fragments the batches
   touched recompute, every untouched query keeps hitting the cache.

Run with:  PYTHONPATH=src python examples/maintenance_quickstart.py
"""

import os
import tempfile

from repro.core import DashEngine
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.datasets.workloads import zipf_mutation_stream
from repro.serving import SearchGateway
from repro.webapp import WebApplication, WebServer
from repro.webapp.request import QueryStringSpec


def main() -> None:
    # 1. Engine over fooddb, persisted to one sqlite file, writer role held.
    database = build_fooddb()
    application = WebApplication(
        name="Search",
        uri="www.example.com/Search",
        query=fooddb_search_query(database),
        query_string_spec=QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max"))),
    )
    path = os.path.join(tempfile.mkdtemp(prefix="repro-maintenance-"), "store.sqlite")
    engine = DashEngine.build(application, database, store="disk", store_path=path)
    print(f"engine built onto {path}")
    print(f"  {engine.index.fragment_count} fragments, store epoch {engine.store.epoch}")

    # 2. Read side + write side in one call: the MaintenanceService rides on
    #    the service as `.maintenance`, its gate fencing search computations.
    service = engine.serving(
        cache_size=256, workers=2, default_k=3, default_size_threshold=20,
        maintenance=True, maintenance_batch=16, maintenance_delay_seconds=0.01,
    )
    maintenance = service.maintenance

    # 3a. Warm the cache with a few queries.
    probes = ["burger", "thai", "coffee", "fries"]
    for probe in probes:
        service.search(probe)
    print(f"\ncache warmed with {len(probes)} queries "
          f"(entries: {service.statistics()['cache']['entries']})")

    # 3b. Stream a Zipf-skewed burst of inserts/deletes through the queue.
    #     Tickets return immediately; the writer thread coalesces the burst.
    stream = zipf_mutation_stream(database, "comment", 24, seed=5)
    tickets = [maintenance.submit(update) for update in stream]
    maintenance.flush()
    statistics = maintenance.statistics()
    print(f"\n{len(tickets)} queued updates applied as "
          f"{statistics['batches_applied']} batches "
          f"(mean batch size {statistics['mean_batch_size']:.1f}, "
          f"{statistics['fragments_touched']} fragments re-derived, "
          f"epoch now {statistics['epoch']})")
    applied = tickets[0].result()
    print(f"first ticket's batch: {applied.updates} updates, "
          f"affected {[''.join(map(str, f)) for f in applied.affected[:3]]}...")

    # 3c. The same write path over HTTP: mutation routes on the gateway.
    server = WebServer(database, host="www.example.com")
    server.deploy(application)
    server.deploy(SearchGateway(service))
    page = server.get(
        "www.example.com/dbsearch?op=insert&relation=comment"
        "&values=%5B%22901%22%2C%22006%22%2C%22120%22%2C%22spicy+thai+burger%22%2C%2209%2F12%22%5D"
    )
    print("\nGET /dbsearch?op=insert&relation=comment&values=[...]")
    for line in page.text.splitlines():
        print(f"  {line}")

    # 4. Epoch-precise invalidation: re-warm, then apply ONE targeted update
    #    (a Thai comment).  Only the queries whose consulted fragments it
    #    touched recompute; everything else keeps hitting the cache.
    probes = ["thai", "coffee", "fries", "regret"]
    for probe in probes:
        service.search(probe)
    ticket = maintenance.insert(
        "comment", ("902", "005", "120", "fragrant thai curry", "10/12")
    )
    applied = ticket.result()
    print(f"\none targeted insert applied (epoch {applied.epoch}, "
          f"affected {applied.affected})")
    print("post-update probes (cached = untouched entry kept serving):")
    for probe in probes:
        served = service.search(probe)
        print(f"  {probe!r:9} cached={served.cached!s:5} epoch={served.epoch}")
    served = service.search("burger")
    print(f"\ntop burger page now: {served.urls[0] if served.urls else '(none)'}")

    service.close()
    engine.store.close()
    print("\nwriter closed; the sqlite file (and its epochs) survive for the "
          "next process — open it read-only in others for multi-process serving")


if __name__ == "__main__":
    main()
