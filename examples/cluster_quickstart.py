#!/usr/bin/env python
"""Cluster quickstart: build an engine, serve it from a multi-node cluster,
rebalance a partition live, and search again.

Walks the cluster layer end to end over the paper's running example:

1. build a Dash engine over fooddb;
2. serve it from a simulated 3-node cluster (``engine.cluster(...)``) —
   consistent-hash partitions, one replica copy per partition, the standard
   serving layer (admission + versioned cache) on top of the scatter-gather
   ``QueryRouter``;
3. answer queries through the router and show the fan-out counters
   (byte-identical to single-store serving);
4. move one partition's primary to another node via the snapshot machinery
   while the rest of the cluster keeps serving;
5. search again — same results, new topology.

Run with:  PYTHONPATH=src python examples/cluster_quickstart.py
"""

from repro.core import DashEngine
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.webapp import WebApplication
from repro.webapp.request import QueryStringSpec


def main() -> None:
    # 1. Engine over fooddb (the single-store build the cluster partitions).
    database = build_fooddb()
    application = WebApplication(
        name="Search",
        uri="www.example.com/Search",
        query=fooddb_search_query(database),
        query_string_spec=QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max"))),
    )
    engine = DashEngine.build(application, database)
    print(f"engine built: {engine.index.fragment_count} fragments, "
          f"store epoch {engine.store.epoch}")

    # 2. A 3-node cluster, 2 copies per partition, served through the router.
    service = engine.cluster(nodes=3, replicas=2, workers=2,
                             default_k=3, default_size_threshold=20)
    cluster = service.cluster
    topology = cluster.statistics()
    print(f"\ncluster: {len(cluster.nodes)} nodes, "
          f"{cluster.partition_count} partitions, "
          f"{topology['replication']} copies each")
    for partition, placement in topology["partitions"].items():
        print(f"  partition {partition}: primary {placement['primary']}, "
              f"replicas {placement['replicas']}")

    # 3. Routed searches — byte-identical to single-store serving.
    for query in ("burger", "thai coffee"):
        served = service.search(query)
        print(f"\n{query!r} -> {len(served.results)} results")
        for result in served.results:
            print(f"  {result.score:8.4f}  {result.url}")
    fanout = service.statistics()["search"]
    print(f"\nfan-out so far: {fanout['nodes_queried']} node reads, "
          f"{fanout['partials_merged']} partials merged, "
          f"{fanout['partials_discarded']} discarded unranked, "
          f"{fanout['nodes_short_circuited']} streams short-circuited")

    # 4. Rebalance: move partition 0's primary to another node.  The move
    # rides the snapshot machinery; every other partition — and the old
    # copy, for in-flight queries — keeps serving throughout.
    moving = 0
    old_primary = cluster.assignment(moving).primary
    target = next(node for node in cluster.nodes if node != old_primary)
    cluster.rebalance(moving, target)
    print(f"\nrebalanced partition {moving}: {old_primary} -> "
          f"{cluster.assignment(moving).primary}")

    # 5. Same answers from the new topology.
    for query in ("burger", "thai coffee"):
        served = service.search(query)
        print(f"{query!r} after rebalance -> {len(served.results)} results "
              f"(cached={served.cached})")

    service.close()
    print("\ncluster closed")


if __name__ == "__main__":
    main()
