#!/usr/bin/env python
"""Build-pipeline quickstart: distributed batch build, then attach and serve.

Walks the batch crawl→index pipeline end to end over the paper's running
example plus a synthetic corpus:

1. build the fooddb index **distributed** — ``DashEngine.build_distributed``
   partitions the crawl frontier over map tasks, shuffles postings into
   keyword-partitioned sorted runs, bulk-loads one index shard per reduce
   partition, and merges the shards into one store — with the per-stage
   timings from the pipeline report;
2. prove the result is the same index the single-process crawl produces
   (identical ranked answers for a keyword query);
3. run the same pipeline at a larger scale over the seeded
   :class:`~repro.datasets.SyntheticCorpus`, onto disk, and re-attach the
   built sqlite file with ``DashEngine.open`` — the serving path does not
   know (or care) that a pipeline built the file;
4. inject a fault: kill a map worker on its first attempt and watch the
   retry rebuild the exact same index anyway.

Run with:  PYTHONPATH=src python examples/build_pipeline_quickstart.py
"""

import os
import tempfile

from repro.core import DashEngine
from repro.datasets import SyntheticCorpus
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.mapreduce import RetryPolicy, TaskFailure
from repro.webapp import WebApplication
from repro.webapp.request import QueryStringSpec


def make_application(database) -> WebApplication:
    return WebApplication(
        name="Search",
        uri="www.example.com/Search",
        query=fooddb_search_query(database),
        query_string_spec=QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max"))),
    )


def ranked(engine: DashEngine, keywords, k: int = 5):
    return [(result.url, round(result.score, 6))
            for result in engine.search(keywords, k=k)]


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-build-pipeline-")

    # 1. Distributed build over the fooddb crawl frontier.  The pipeline
    #    partitions whole fragments across map tasks and whole keywords
    #    across reduce partitions, so every shard is self-contained.
    database = build_fooddb()
    application = make_application(database)
    engine = DashEngine.build_distributed(
        application, database, map_tasks=2, num_reduce_tasks=2, workers=2
    )
    report = engine.build_report.pipeline
    print(f"distributed fooddb build: {report.fragments} fragments, "
          f"{report.postings} postings, {report.keywords} keywords")
    print(f"  stages (s): map={report.map_seconds:.3f} "
          f"reduce={report.reduce_seconds:.3f} load={report.load_seconds:.3f} "
          f"merge={report.merge_seconds:.3f}")

    # 2. Same answers as the classic single-process crawl.
    reference = DashEngine.build(application, database, algorithm="integrated",
                                 analyze_source=False)
    query = ["burger", "thai"]
    assert ranked(engine, query) == ranked(reference, query)
    print(f"\nparity with the single-process crawl on {query}:")
    for url, score in ranked(engine, query, k=3):
        print(f"  {score:.4f}  {url}")

    # 3. Scale up: a seeded synthetic corpus, built onto disk, then
    #    re-attached cold — the pipeline output is a normal store file.
    corpus = SyntheticCorpus(2000, seed=7)
    store_path = os.path.join(workdir, "synthetic.sqlite")
    built = DashEngine.build_distributed(
        application, database, source=corpus,
        map_tasks=4, num_reduce_tasks=4, workers=2,
        store="disk", store_path=store_path, analyze_source=False,
    )
    statistics = built.statistics()
    print(f"\nsynthetic build: {statistics['fragments']} fragments on disk, "
          f"algorithm={statistics['algorithm']!r}")
    built.store.close()

    reopened = DashEngine.open(store_path, application, database)
    print(f"reopened {os.path.basename(store_path)}: "
          f"{reopened.index.fragment_count} fragments, "
          f"top hit for 'burger': {reopened.search(['burger'], k=1)[0].url}")
    reopened.store.close()

    # 4. Fault injection: the first map attempt dies, the retry finishes the
    #    job, and the rebuilt index still matches the reference build.
    state = {"fired": False}

    def kill_first_map_attempt(phase: str, task_index: int, attempt: int) -> None:
        if phase == "map" and not state["fired"]:
            state["fired"] = True
            raise TaskFailure("injected: map worker killed mid-run")

    survivor = DashEngine.build_distributed(
        application, database, map_tasks=2, num_reduce_tasks=2, workers=1,
        retry_policy=RetryPolicy(max_attempts=3,
                                 failure_injector=kill_first_map_attempt),
    )
    retries = survivor.build_report.pipeline.retries
    assert ranked(survivor, query) == ranked(reference, query)
    print(f"\nkilled one map attempt; pipeline retried {retries} and the "
          f"index still matches the reference build")

    print(f"\nartifacts kept in {workdir}")


if __name__ == "__main__":
    main()
