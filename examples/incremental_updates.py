#!/usr/bin/env python
"""Scenario: keeping the fragment index fresh while the database changes.

Section VIII of the paper lists efficient fragment-index maintenance under
database updates as future work.  This example exercises the extension built
in :mod:`repro.core.incremental`: a review site keeps accepting new
restaurants and comments while Dash keeps serving searches, and the index is
patched in place instead of being rebuilt.

Run with:  python examples/incremental_updates.py
"""

from repro.analysis import ApplicationAnalyzer
from repro.core import DashEngine
from repro.core.incremental import IncrementalMaintainer
from repro.datasets.fooddb import FOODDB_SEARCH_SERVLET_SOURCE, build_fooddb
from repro.webapp import WebServer


def show(engine, server, keyword):
    results = engine.search([keyword], k=3, size_threshold=15)
    if not results:
        print(f"  {keyword!r}: no db-pages")
        return
    for result in results:
        page = server.get(result.url)
        print(f"  {keyword!r}: {result.url}  ({page.record_count} rows)")


def main() -> None:
    database = build_fooddb()
    analyzed = ApplicationAnalyzer(database).analyze(FOODDB_SEARCH_SERVLET_SOURCE, name="Search")
    application = analyzed.to_web_application(
        "www.example.com/Search", source=FOODDB_SEARCH_SERVLET_SOURCE
    )
    engine = DashEngine.build(application, database, algorithm="integrated")
    server = WebServer(database, host="www.example.com")
    server.deploy(engine.application)
    maintainer = IncrementalMaintainer(engine.application.query, database, engine.index, engine.graph)

    print("Initial state:")
    print(f"  fragments: {engine.index.fragment_count}")
    show(engine, server, "burger")
    show(engine, server, "ramen")

    print("\n-> a new restaurant and two comments arrive")
    maintainer.insert("restaurant", ("020", "Ramen Republic", "Japanese", 14, 4.7))
    maintainer.insert("customer", ("300", "Naomi"))
    maintainer.insert("comment", ("401", "020", "300", "Best ramen broth", "05/12"))
    maintainer.insert("comment", ("402", "020", "109", "Ramen worth the queue", "06/12"))
    print(f"  fragments now: {engine.index.fragment_count} "
          f"(touched so far: {maintainer.fragments_touched})")
    show(engine, server, "ramen")

    print("\n-> a stale comment is deleted")
    maintainer.delete("comment", lambda record: record["cid"] == "203")
    show(engine, server, "fries")

    print("\n-> the new restaurant closes down")
    maintainer.delete("comment", lambda record: record["rid"] == "020")
    maintainer.delete("restaurant", lambda record: record["rid"] == "020")
    print(f"  fragments now: {engine.index.fragment_count}")
    show(engine, server, "ramen")

    print(f"\nupdates applied: {maintainer.updates_applied}, "
          f"fragments touched: {maintainer.fragments_touched} "
          "(a full rebuild would have touched every fragment on every update)")


if __name__ == "__main__":
    main()
