#!/usr/bin/env python
"""Scenario: an e-commerce store exposes its order history through a web form.

This is the paper's evaluation setting (Section VII): the backend is a TPC-H
style database and the application query is Q2 of Table III — a customer /
orders / lineitem join filtered by customer key and quantity range.  The
example runs the whole Dash pipeline at laptop scale:

1. generate the TPC-H-like dataset,
2. synthesise the application's servlet source and statically analyse it,
3. crawl the database with both the stepwise and the integrated algorithms and
   compare their cost (the Figure 10 mechanism),
4. build the fragment graph (Table IV statistics), and
5. run hot / warm / cold keyword searches (the Figure 11 workload) and check
   the suggested URLs against the simulated web server.

Run with:  python examples/tpch_store_search.py
"""

from repro.analysis import ApplicationAnalyzer, make_servlet_source
from repro.bench.harness import calibrated_runtime
from repro.core import DashEngine
from repro.core.crawler import StepwiseCrawler
from repro.datasets.tpch import TPCH_QUERY_SQL, TpchScale, build_tpch
from repro.datasets.workloads import select_keyword_workloads
from repro.webapp import WebServer


def main() -> None:
    # A small-but-not-trivial store (scale the numbers up for a longer run).
    tier = TpchScale("store", customers=60, orders_per_customer=8,
                     lineitems_per_order=4, parts=150, quantity_values=10)
    database = build_tpch(tier)
    print(f"store database: {database.total_records()} records "
          f"({len(database.relation('lineitem'))} lineitems)")

    # The application: an order browser driven by Q2 of Table III.
    source = make_servlet_source(
        "OrderBrowser", [("cust", "r"), ("qmin", "min"), ("qmax", "max")], TPCH_QUERY_SQL["Q2"]
    )
    analyzed = ApplicationAnalyzer(database).analyze(source, name="OrderBrowser")
    application = analyzed.to_web_application("shop.example.com/OrderBrowser", source=source)
    print(f"analysed application query over {analyzed.query.operand_relations}")

    # Crawl with the integrated algorithm (and compare against stepwise).
    engine = DashEngine.build(
        application, database, algorithm="integrated", runtime=calibrated_runtime()
    )
    stepwise = StepwiseCrawler(engine.application.query, database,
                               runtime=calibrated_runtime()).crawl()
    crawl = engine.build_report.crawl
    print("\nDatabase crawling and fragment indexing (simulated 4-node cluster):")
    print(f"  integrated: {crawl.simulated_seconds():8.1f} simulated s   "
          f"stages {dict((k, round(v, 1)) for k, v in crawl.stage_seconds().items())}")
    print(f"  stepwise  : {stepwise.simulated_seconds():8.1f} simulated s   "
          f"stages {dict((k, round(v, 1)) for k, v in stepwise.stage_seconds().items())}")

    print("\nFragment index / graph (Table IV statistics):")
    print(f"  fragments              : {engine.index.fragment_count}")
    print(f"  avg keywords / fragment: {engine.index.average_keywords_per_fragment():.1f}")
    print(f"  graph edges            : {engine.graph.edge_count}")
    print(f"  graph build time       : {engine.build_report.graph.build_seconds * 1000:.1f} ms")

    # Keyword workloads by document frequency (Section VII-B).
    workloads = select_keyword_workloads(engine.index.document_frequencies(), group_size=5)
    server = WebServer(database, host="shop.example.com")
    server.deploy(engine.application)

    print("\nTop-k searches (k=5, s=100):")
    for temperature in ("hot", "warm", "cold"):
        keywords = list(workloads[temperature])[:2]
        for keyword in keywords:
            results = engine.search([keyword], k=5, size_threshold=100)
            verified = 0
            for result in results:
                if server.get(result.url).contains_keyword(keyword):
                    verified += 1
            timing = engine.searcher.last_statistics.elapsed_seconds * 1000
            print(f"  [{temperature:4s}] {keyword!r:18s}: {len(results)} db-pages in "
                  f"{timing:6.2f} ms, {verified}/{len(results)} URLs verified")


if __name__ == "__main__":
    main()
