"""Fail CI when any benchmark reported non-identical ranked URLs.

Every benchmark asserts ranked-URL parity while it runs *and* records the
verdict in its ``BENCH_*.json`` payload; this checker re-reads the emitted
files so a refactor that silently stops asserting (or stops running a
backend) still fails the smoke job.  Usage::

    python tools/check_bench_parity.py BENCH_store_backends.json \
        BENCH_serving.json BENCH_maintenance.json BENCH_cluster_serving.json \
        BENCH_build_pipeline.json BENCH_fault_tolerance.json

Two flag families are collected: ``parity_ok`` (every backend ranked
exactly like the seed path — for ``BENCH_cluster_serving.json`` one flag
per node-count and replica-count row, plus the merge, rebalance,
warm-stats-cache (cold *and* warm passes) and partition-pruning
sections, each certifying the routed results byte-identical to the
single-store reference; for ``BENCH_fault_tolerance.json`` one flag per
chaos-sweep point plus the cached-DF-survival survivor slice,
certifying recoverable chaos stayed byte-invisible) and
``block_parity_ok`` (the disk backend's delta+varint posting blocks
decoded back to the canonical posting lists, recorded per
``index_layout`` entry).  Exits non-zero when a file is
missing, holds no parity flags at all, or holds any flag that is not
``true`` — including a regressed decoded-block flag.
"""

from __future__ import annotations

import json
import sys
from typing import Any, List, Tuple


PARITY_KEYS = ("parity_ok", "block_parity_ok")


def collect_parity_flags(payload: Any, path: str = "$") -> List[Tuple[str, Any]]:
    """Every parity-flag entry (see ``PARITY_KEYS``) with its JSON path."""
    flags: List[Tuple[str, Any]] = []
    if isinstance(payload, dict):
        for key, value in payload.items():
            if key in PARITY_KEYS:
                flags.append((f"{path}.{key}", value))
            else:
                flags.extend(collect_parity_flags(value, f"{path}.{key}"))
    elif isinstance(payload, list):
        for position, value in enumerate(payload):
            flags.extend(collect_parity_flags(value, f"{path}[{position}]"))
    return flags


def check_file(filename: str) -> Tuple[List[str], int]:
    """``(problems, parity-flag count)`` for one benchmark payload."""
    try:
        with open(filename, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return [f"{filename}: missing (did the benchmark run?)"], 0
    except json.JSONDecodeError as error:
        return [f"{filename}: unparseable ({error})"], 0
    flags = collect_parity_flags(payload)
    if not flags:
        return [f"{filename}: no parity_ok flags recorded"], 0
    problems = [
        f"{filename}: {path} = {value!r}" for path, value in flags if value is not True
    ]
    return problems, len(flags)


def main(argv: List[str]) -> int:
    """Check every named file; print a verdict per file."""
    filenames = argv or [
        "BENCH_store_backends.json",
        "BENCH_serving.json",
        "BENCH_maintenance.json",
        "BENCH_cluster_serving.json",
        "BENCH_build_pipeline.json",
        "BENCH_fault_tolerance.json",
    ]
    problems: List[str] = []
    for filename in filenames:
        found, flag_count = check_file(filename)
        if found:
            problems.extend(found)
        else:
            print(f"ok: {filename} ({flag_count} parity flags, all true)")
    for problem in problems:
        print(f"PARITY FAILURE — {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
