"""Measure line coverage of ``src/repro`` under the tier-1 suite — stdlib only.

CI enforces the coverage floor with ``pytest-cov`` (see
``.github/workflows/ci.yml``), but that package is not part of the local
toolchain; this tool produces a comparable line-coverage number using only
the standard library, so the floor can be measured (and re-derived after a
refactor) on any box that can run the tests:

* the tier-1 suite runs under :class:`trace.Trace` (count mode, installed on
  every new thread via ``threading.settrace``),
* each module's *executable* line set comes from its compiled code objects
  (``co_lines`` over the whole nesting tree — the same substrate
  ``coverage.py`` builds on),
* coverage is ``executed / executable`` over every ``repro`` module.

Thread-heavy lines can be under-counted relative to ``pytest-cov`` (the
tracer attaches to threads at creation, not retroactively), so the measured
number is a conservative lower bound of what CI will see — which is the safe
direction for deriving a floor.  Usage::

    PYTHONPATH=src python tools/measure_coverage.py             # report
    PYTHONPATH=src python tools/measure_coverage.py --min 83.0  # enforce

Extra arguments after ``--`` are passed to pytest (default: ``-x -q tests``).
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import trace
import types
from typing import Dict, Set, Tuple


def executable_lines(path: str) -> Set[int]:
    """Line numbers that can execute, from the compiled code-object tree."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    lines: Set[int] = set()
    try:
        code = compile(source, path, "exec")
    except SyntaxError:
        return lines
    stack = [code]
    while stack:
        obj = stack.pop()
        for _start, _end, lineno in obj.co_lines():
            if lineno:
                lines.add(lineno)
        for const in obj.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
    return lines


def source_files(root: str) -> Dict[str, str]:
    """``{absolute path: repo-relative label}`` for every repro module."""
    files: Dict[str, str] = {}
    for directory, _subdirs, names in os.walk(root):
        for name in names:
            if name.endswith(".py"):
                path = os.path.abspath(os.path.join(directory, name))
                files[path] = os.path.relpath(path, os.path.dirname(root))
    return files


def run_suite_traced(pytest_args) -> trace.CoverageResults:
    import pytest

    tracer = trace.Trace(count=1, trace=0, ignoredirs=[sys.prefix, sys.exec_prefix])
    # Cover code running on worker threads too (serving/maintenance tests).
    threading.settrace(tracer.globaltrace)
    try:
        exit_code = tracer.runfunc(pytest.main, list(pytest_args))
    finally:
        threading.settrace(None)
    if exit_code not in (0,):
        raise SystemExit(f"tier-1 suite failed under tracing (exit {exit_code})")
    return tracer.results()


def measure(pytest_args) -> Tuple[float, Dict[str, Tuple[int, int]]]:
    src_root = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src", "repro"))
    files = source_files(src_root)
    results = run_suite_traced(pytest_args)
    executed: Dict[str, Set[int]] = {}
    for (filename, lineno), count in results.counts.items():
        if count > 0:
            executed.setdefault(os.path.abspath(filename), set()).add(lineno)
    per_file: Dict[str, Tuple[int, int]] = {}
    total_executable = 0
    total_executed = 0
    for path, label in sorted(files.items(), key=lambda item: item[1]):
        candidates = executable_lines(path)
        covered = len(candidates & executed.get(path, set()))
        per_file[label] = (covered, len(candidates))
        total_executable += len(candidates)
        total_executed += covered
    percent = 100.0 * total_executed / total_executable if total_executable else 0.0
    return percent, per_file


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min", type=float, default=None,
        help="fail (exit 1) when total coverage is below this percentage",
    )
    parser.add_argument(
        "--per-file", action="store_true", help="print the per-module breakdown"
    )
    parser.add_argument(
        "pytest_args", nargs="*", default=None,
        help="arguments passed to pytest (after --); default: -x -q tests",
    )
    options = parser.parse_args(argv)
    pytest_args = options.pytest_args or ["-x", "-q", "tests"]
    percent, per_file = measure(pytest_args)
    if options.per_file:
        for label, (covered, executable) in per_file.items():
            share = 100.0 * covered / executable if executable else 100.0
            print(f"{share:6.1f}%  {covered:5d}/{executable:<5d}  {label}")
    print(f"TOTAL line coverage (src/repro): {percent:.2f}%")
    if options.min is not None and percent < options.min:
        print(f"coverage {percent:.2f}% is below the floor {options.min:.2f}%",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
