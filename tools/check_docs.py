#!/usr/bin/env python
"""Documentation lint: resolvable links + docstrings on the public API.

Run from the repository root (CI does: ``PYTHONPATH=src python
tools/check_docs.py``).  Two checks:

1. every relative markdown link in README.md and docs/*.md points at a file
   or directory that exists (external http(s) links and pure anchors are
   skipped);
2. every name on the public API surface — the entry points a user meets in
   README/docs — carries a non-trivial docstring, so ``pydoc repro.store``
   and friends render a usable reference.

Exit code 0 when clean; prints one line per violation otherwise.
"""

from __future__ import annotations

import inspect
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Markdown files whose relative links must resolve.
DOC_FILES = ("README.md", "docs/architecture.md", "docs/benchmarks.md")

#: module path -> names that must be documented; a name may be
#: "Class.method".  Modules themselves must carry docstrings too.
PUBLIC_API = {
    "repro.store": [
        "FragmentStore",
        "FragmentStore.replace_fragment",
        "FragmentStore.apply_mutations",
        "FragmentStore.write_batch",
        "FragmentStore.snapshot",
        "FragmentStore.from_snapshot",
        "FragmentStore.sweep_epochs",
        "DiskStore.refresh_epochs",
        "DiskStore.write_batch",
        "InMemoryStore",
        "ShardedStore",
        "DiskStore",
        "EpochClock",
        "EpochClock.sweep",
        "EpochClock.load",
        "StoreError",
        "resolve_store",
    ],
    "repro.store.epochs": [],
    "repro.store.snapshot": ["write_snapshot", "load_snapshot"],
    "repro.core.engine": [
        "DashEngine",
        "DashEngine.build",
        "DashEngine.open",
        "DashEngine.search",
        "DashEngine.serving",
        "DashEngine.statistics",
    ],
    "repro.core.search": [
        "TopKSearcher",
        "TopKSearcher.search",
        "TopKSearcher.search_detailed",
        "SearchSession",
        "SearchResult",
    ],
    "repro.core.incremental": [
        "IncrementalMaintainer",
        "IncrementalMaintainer.insert",
        "IncrementalMaintainer.delete",
        "IncrementalMaintainer.apply_updates",
        "InsertRecord",
        "DeleteRecords",
    ],
    "repro.store.mutations": [
        "ReplaceFragment",
        "RemoveFragment",
        "TouchFragment",
        "replace_op",
        "coalesce_mutations",
    ],
    "repro.serving": [],
    "repro.serving.maintenance": [
        "MaintenanceService",
        "MaintenanceService.submit",
        "MaintenanceService.flush",
        "MaintenanceService.statistics",
        "AppliedBatch",
        "ReadWriteGate",
    ],
    "repro.serving.service": [
        "SearchService",
        "SearchService.search",
        "SearchService.search_many",
        "SearchService.warm_up",
        "SearchService.sweep_epochs",
        "SearchService.statistics",
    ],
    "repro.serving.cache": ["ResultCache", "ResultCache.oldest_stamp"],
    "repro.serving.gateway": ["SearchGateway"],
}

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_links() -> list:
    problems = []
    for doc in DOC_FILES:
        path = os.path.join(REPO_ROOT, doc)
        if not os.path.exists(path):
            problems.append(f"{doc}: file missing")
            continue
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        for target in LINK_PATTERN.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(REPO_ROOT, os.path.dirname(doc), target.split("#")[0])
            )
            if not os.path.exists(resolved):
                problems.append(f"{doc}: broken link -> {target}")
    return problems


def _documented(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


def check_docstrings() -> list:
    problems = []
    for module_path, names in PUBLIC_API.items():
        try:
            module = __import__(module_path, fromlist=["_"])
        except Exception as error:  # pragma: no cover - import failure is the finding
            problems.append(f"{module_path}: import failed ({error})")
            continue
        if not _documented(module):
            problems.append(f"{module_path}: module docstring missing")
        for name in names:
            obj = module
            try:
                for part in name.split("."):
                    obj = getattr(obj, part)
            except AttributeError:
                problems.append(f"{module_path}.{name}: name does not exist")
                continue
            if not _documented(obj):
                problems.append(f"{module_path}.{name}: docstring missing")
    return problems


def main() -> int:
    problems = check_links() + check_docstrings()
    for problem in problems:
        print(f"docs-lint: {problem}")
    if problems:
        print(f"docs-lint: {len(problems)} problem(s)")
        return 1
    print("docs-lint: links resolve, public API is documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
