"""cProfile harness for the top-k search read path.

Builds the synthetic fooddb-shaped corpus the store benchmarks use, runs a
mixed single-/multi-keyword query loop against the chosen backend, and
prints the top cumulative hot spots — the quickest way to see where a
backend's search time actually goes (seed materialization, size reads,
neighbour lookups, ...) before and after a change.

Usage::

    PYTHONPATH=src python tools/profile_search.py --backend disk --fragments 6000
    PYTHONPATH=src python tools/profile_search.py --backend sharded-4 --top 30
    PYTHONPATH=src python tools/profile_search.py --backend memory --output profile.txt

``--backend`` accepts ``seed`` (the pre-store baseline searcher), ``memory``,
``sharded-N`` and ``disk``.  Referenced from docs/benchmarks.md; CI runs it
on the smoke corpus and uploads the output as an artifact.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import os
import pstats
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from bench_store_backends import (  # noqa: E402  (path set up above)
    K,
    SIZE_THRESHOLDS,
    keyword_workload,
    searcher_for,
    synthetic_fragments,
)


def profile_backend(backend: str, fragments: int, repeats: int, top: int) -> str:
    """Profile ``repeats`` passes of the standard query mix; returns the report."""
    corpus = synthetic_fragments(fragments)
    searcher = searcher_for(backend, corpus)
    workload = keyword_workload(searcher.index)
    queries = [[keyword] for keyword in workload.values()]
    queries.append(list(workload.values()))  # one multi-keyword query
    for keywords in queries:  # warm caches so the profile shows the steady state
        searcher.search(keywords, k=K, size_threshold=SIZE_THRESHOLDS[0])

    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(repeats):
        for keywords in queries:
            for size_threshold in SIZE_THRESHOLDS:
                searcher.search(keywords, k=K, size_threshold=size_threshold)
    profiler.disable()

    store = getattr(getattr(searcher, "index", None), "store", None)
    if store is not None:
        store.close()  # release the disk backend's connections / read pool

    buffer = io.StringIO()
    statistics = pstats.Stats(profiler, stream=buffer)
    statistics.sort_stats("cumulative").print_stats(top)
    header = (
        f"backend={backend} fragments={fragments} repeats={repeats} "
        f"queries/pass={len(queries) * len(SIZE_THRESHOLDS)}\n"
    )
    try:
        search_statistics = searcher.last_statistics
        header += (
            f"last search: seeds={search_statistics.seed_fragments} "
            f"scored={search_statistics.seeds_scored} "
            f"pruned_dequeues={search_statistics.pruned_dequeues} "
            f"pruned_expansions={search_statistics.pruned_expansions}\n"
        )
    except AttributeError:
        pass  # the seed replica carries no statistics
    return header + buffer.getvalue()


def main(argv=None) -> int:
    """Parse arguments, profile one backend, print (or write) the report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        default="disk",
        help="seed | memory | sharded-N | disk (default: disk)",
    )
    parser.add_argument("--fragments", type=int, default=6000, help="corpus size (default 6000)")
    parser.add_argument("--repeats", type=int, default=5, help="query-mix passes (default 5)")
    parser.add_argument("--top", type=int, default=20, help="hot spots to print (default 20)")
    parser.add_argument("--output", default=None, help="write the report here instead of stdout")
    arguments = parser.parse_args(argv)

    report = profile_backend(
        arguments.backend, arguments.fragments, arguments.repeats, arguments.top
    )
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {arguments.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
