"""cProfile harness for the top-k search read path.

Builds the synthetic fooddb-shaped corpus the store benchmarks use, runs a
mixed single-/multi-keyword query loop against the chosen backend, and
prints the top cumulative hot spots — the quickest way to see where a
backend's search time actually goes (seed materialization, size reads,
neighbour lookups, ...) before and after a change.

Usage::

    PYTHONPATH=src python tools/profile_search.py --backend disk --fragments 6000
    PYTHONPATH=src python tools/profile_search.py --backend sharded-4 --top 30
    PYTHONPATH=src python tools/profile_search.py --backend memory --output profile.txt
    PYTHONPATH=src python tools/profile_search.py --backend disk --no-early-termination
    PYTHONPATH=src python tools/profile_search.py --compare memory,disk
    PYTHONPATH=src python tools/profile_search.py --cluster nodes=4,replicas=2

``--backend`` accepts ``seed`` (the pre-store baseline searcher), ``memory``,
``sharded-N`` and ``disk``.  ``--no-early-termination`` profiles the
exhaustive oracle path instead of the block-max bounded one.
``--compare a,b,...`` profiles every listed backend twice — bounded and
exhaustive — in one run, so block-decode hot spots (``decode_block``,
``posting_blocks_for_many``) can be read side by side against the full-scan
path.  ``--cluster nodes=N,replicas=R`` profiles the
:class:`~repro.cluster.QueryRouter` hot paths (term-stats cache lookups,
bound-aware pruning, sentinel merge) with the same corpus and query mix as
the single-store backends — the warm-up pass fills the term-stats cache, so
the profile shows the one-fan-out-round steady state.  Referenced from
docs/benchmarks.md; CI runs it on the smoke corpus and uploads the output
as an artifact.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import os
import pstats
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from bench_store_backends import (  # noqa: E402  (path set up above)
    K,
    QUERY,
    SIZE_THRESHOLDS,
    SPEC,
    URI,
    build_backend,
    keyword_workload,
    searcher_for,
    synthetic_fragments,
)


def profile_backend(
    backend: str, fragments: int, repeats: int, top: int, early_termination: bool = True
) -> str:
    """Profile ``repeats`` passes of the standard query mix; returns the report."""
    corpus = synthetic_fragments(fragments)
    searcher = searcher_for(backend, corpus, early_termination=early_termination)
    workload = keyword_workload(searcher.index)
    queries = [[keyword] for keyword in workload.values()]
    queries.append(list(workload.values()))  # one multi-keyword query
    for keywords in queries:  # warm caches so the profile shows the steady state
        searcher.search(keywords, k=K, size_threshold=SIZE_THRESHOLDS[0])

    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(repeats):
        for keywords in queries:
            for size_threshold in SIZE_THRESHOLDS:
                searcher.search(keywords, k=K, size_threshold=size_threshold)
    profiler.disable()

    store = getattr(getattr(searcher, "index", None), "store", None)
    if store is not None:
        store.close()  # release the disk backend's connections / read pool

    buffer = io.StringIO()
    statistics = pstats.Stats(profiler, stream=buffer)
    statistics.sort_stats("cumulative").print_stats(top)
    header = (
        f"backend={backend} fragments={fragments} repeats={repeats} "
        f"early_termination={early_termination} "
        f"queries/pass={len(queries) * len(SIZE_THRESHOLDS)}\n"
    )
    try:
        search_statistics = searcher.last_statistics
        header += (
            f"last search: seeds={search_statistics.seed_fragments} "
            f"scored={search_statistics.seeds_scored} "
            f"pruned_dequeues={search_statistics.pruned_dequeues} "
            f"pruned_expansions={search_statistics.pruned_expansions} "
            f"blocks_skipped={search_statistics.blocks_skipped} "
            f"blocks_decoded={search_statistics.blocks_decoded} "
            f"postings_decoded={search_statistics.postings_decoded}\n"
        )
    except AttributeError:
        pass  # the seed replica carries no statistics
    return header + buffer.getvalue()


def profile_cluster(spec: str, fragments: int, repeats: int, top: int) -> str:
    """Profile the routed (cluster) read path with a warm term-stats cache.

    ``spec`` is ``nodes=N,replicas=R`` (both optional, defaults 4 and 1).
    The warm-up pass both exercises the cold DF scatter and fills the
    epoch-validated term-stats cache, so the profiled loop is the
    steady-state single-fan-out-round path the router serves hot traffic
    with.
    """
    from repro.cluster import SearchCluster
    from repro.store import InMemoryStore

    options = dict(
        part.split("=", 1) for part in spec.split(",") if part.strip()
    )
    nodes = int(options.get("nodes", "4"))
    replicas = int(options.get("replicas", "1"))
    corpus = synthetic_fragments(fragments)
    source_store = InMemoryStore()
    index, _graph = build_backend(corpus, source_store)
    cluster = SearchCluster.build(
        QUERY, SPEC, URI, source_store, nodes=nodes, replicas=replicas
    )
    router = cluster.router
    workload = keyword_workload(index)
    queries = [[keyword] for keyword in workload.values()]
    queries.append(list(workload.values()))  # one multi-keyword query
    for keywords in queries:  # warm the term-stats cache (and page caches)
        router.search(keywords, k=K, size_threshold=SIZE_THRESHOLDS[0])

    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(repeats):
        for keywords in queries:
            for size_threshold in SIZE_THRESHOLDS:
                router.search(keywords, k=K, size_threshold=size_threshold)
    profiler.disable()

    lifetime = router.lifetime_statistics()
    cache = router.term_stats.statistics()
    cluster.close()
    source_store.close()

    buffer = io.StringIO()
    statistics = pstats.Stats(profiler, stream=buffer)
    statistics.sort_stats("cumulative").print_stats(top)
    header = (
        f"cluster nodes={nodes} replicas={replicas} fragments={fragments} "
        f"repeats={repeats} queries/pass={len(queries) * len(SIZE_THRESHOLDS)}\n"
        f"lifetime: searches={lifetime['searches']:.0f} "
        f"fanout_submits={lifetime['fanout_submits']:.0f} "
        f"df_cache_hits={lifetime['df_cache_hits']:.0f} "
        f"df_cache_misses={lifetime['df_cache_misses']:.0f} "
        f"partitions_pruned={lifetime['partitions_pruned']:.0f} "
        f"discard_ratio={lifetime['discard_ratio']:.2f}\n"
        f"term-stats cache: hits={cache['hits']} misses={cache['misses']} "
        f"entries={cache['entries']}\n"
    )
    return header + buffer.getvalue()


def main(argv=None) -> int:
    """Parse arguments, profile one backend, print (or write) the report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        default="disk",
        help="seed | memory | sharded-N | disk (default: disk)",
    )
    parser.add_argument("--fragments", type=int, default=6000, help="corpus size (default 6000)")
    parser.add_argument("--repeats", type=int, default=5, help="query-mix passes (default 5)")
    parser.add_argument("--top", type=int, default=20, help="hot spots to print (default 20)")
    parser.add_argument("--output", default=None, help="write the report here instead of stdout")
    parser.add_argument(
        "--no-early-termination",
        action="store_true",
        help="profile the exhaustive (bound-free) search path instead",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BACKENDS",
        help="comma-separated backends; profiles each one bounded AND "
        "exhaustive in a single run (overrides --backend)",
    )
    parser.add_argument(
        "--cluster",
        default=None,
        metavar="SPEC",
        help="profile the routed cluster read path instead, e.g. "
        "nodes=4,replicas=2 (overrides --backend/--compare)",
    )
    arguments = parser.parse_args(argv)

    if arguments.cluster:
        report = profile_cluster(
            arguments.cluster, arguments.fragments, arguments.repeats, arguments.top
        )
    elif arguments.compare:
        sections = []
        for backend in [name.strip() for name in arguments.compare.split(",") if name.strip()]:
            for early_termination in (True, False):
                sections.append(
                    profile_backend(
                        backend,
                        arguments.fragments,
                        arguments.repeats,
                        arguments.top,
                        early_termination=early_termination,
                    )
                )
        report = ("=" * 78 + "\n").join(sections)
    else:
        report = profile_backend(
            arguments.backend,
            arguments.fragments,
            arguments.repeats,
            arguments.top,
            early_termination=not arguments.no_early_termination,
        )
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {arguments.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
